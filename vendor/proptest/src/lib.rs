//! Offline mini `proptest`.
//!
//! A small, fully deterministic property-testing engine exposing the subset
//! of the real proptest API this workspace uses: the `proptest!` macro,
//! range/`any`/`Just`/tuple strategies, `collection::vec`, the
//! `prop_map`/`prop_filter`/`prop_filter_map` combinators, `prop_oneof!`,
//! and the `prop_assert*` macros. No shrinking: a failing case panics with
//! its inputs' debug representation instead.
//!
//! Cases are generated from a SplitMix64 stream seeded by the test's name,
//! so a failure reproduces bit-identically on every run — the same
//! determinism contract as the rest of the workspace.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Cases generated per `proptest!` test.
pub const NUM_CASES: u32 = 64;

/// Everything a test needs in one import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each property function for [`NUM_CASES`] deterministic cases.
///
/// Accepted form (one or more per invocation):
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn prop(x in 0u64..10, v in proptest::collection::vec(any::<u8>(), 0..16)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $( $arg:pat_param in $strat:expr ),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                // A tuple of strategies is itself a strategy for a tuple.
                let __strategies = ( $( $strat, )+ );
                for __case in 0..$crate::NUM_CASES {
                    let __values =
                        $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                    let __case_debug = format!("{:?}", &__values);
                    #[allow(unused_mut)]
                    let ( $( $arg, )+ ) = __values;
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body })
                    );
                    if let Err(panic) = __result {
                        let msg = panic
                            .downcast_ref::<String>()
                            .cloned()
                            .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1,
                            $crate::NUM_CASES,
                            msg,
                            __case_debug
                        );
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("prop_assert!({}) failed", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!("prop_assert!({}) failed: {}", stringify!($cond), format_args!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            panic!("prop_assert_eq! failed: {left:?} != {right:?}");
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            panic!("prop_assert_eq! failed: {left:?} != {right:?}: {}", format_args!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            panic!("prop_assert_ne! failed: both sides are {left:?}");
        }
    }};
}

/// Skips the current case when an assumption does not hold. (This engine
/// has no rejection bookkeeping; an unmet assumption simply passes the
/// case.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Picks uniformly between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(
            vec![$(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+]
        )
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(
            vec![$($crate::strategy::Strategy::boxed($strat)),+]
        )
    };
}
