//! The [`Strategy`] trait, primitive strategies, and combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest there is no shrinking: `generate` draws one
/// value per case directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying the draw otherwise.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Maps through a fallible `f`, retrying the draw on `None`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Draws beyond this many filter rejections abort the test.
const MAX_REJECTS: usize = 10_000;

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..MAX_REJECTS {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected too many values: {}", self.reason);
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..MAX_REJECTS {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected too many values: {}", self.reason);
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Type-erased strategy, cheaply cloneable.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Rc::clone(&self.inner),
        }
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Equal-weight union.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Self::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted union.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or all weights are zero.
    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Self {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_below(self.total_weight);
        for (weight, strat) in &self.options {
            if pick < *weight as u64 {
                return strat.generate(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weights exhausted");
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.next_below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.next_below(span) as i128) as $t
                }
            }
        )*
    };
}

int_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64, isize);

// u64/u128 spans can overflow the i128 arithmetic above; handle directly.
impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_below(self.end - self.start)
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {
        $(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (self.end - self.start) * rng.next_f64() as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    self.start() + (self.end() - self.start()) * rng.next_f64() as $t
                }
            }
        )*
    };
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*
    };
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..200 {
            let x = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let u = (5u64..6).generate(&mut rng);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn filter_map_retries() {
        let mut rng = TestRng::from_seed(2);
        let even = (0u64..100).prop_filter_map("even", |x| (x % 2 == 0).then_some(x));
        for _ in 0..50 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn union_draws_every_option() {
        let mut rng = TestRng::from_seed(3);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..64 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
