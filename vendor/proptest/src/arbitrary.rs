//! `any::<T>()` — the full-domain strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// Builds the full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Generates values by calling a function on the RNG.
#[derive(Debug, Clone, Copy)]
pub struct FnStrategy<T>(fn(&mut TestRng) -> T);

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),* $(,)?) => {
        $(
            impl Arbitrary for $t {
                type Strategy = FnStrategy<$t>;
                fn arbitrary() -> Self::Strategy {
                    FnStrategy(|rng| rng.next_u64() as $t)
                }
            }
        )*
    };
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = FnStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        FnStrategy(|rng| rng.next_u64() & 1 == 1)
    }
}

impl Arbitrary for f64 {
    type Strategy = FnStrategy<f64>;
    fn arbitrary() -> Self::Strategy {
        // Raw bit pattern: covers NaN, infinities, subnormals. Consumers
        // comparing round-trips must compare via to_bits().
        FnStrategy(|rng| f64::from_bits(rng.next_u64()))
    }
}

impl Arbitrary for f32 {
    type Strategy = FnStrategy<f32>;
    fn arbitrary() -> Self::Strategy {
        FnStrategy(|rng| f32::from_bits(rng.next_u64() as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn any_u8_covers_range() {
        let mut rng = TestRng::from_seed(7);
        let strat = any::<u8>();
        let mut lo = u8::MAX;
        let mut hi = u8::MIN;
        for _ in 0..512 {
            let v = strat.generate(&mut rng);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 16 && hi > 239, "poor spread: [{lo}, {hi}]");
    }
}
