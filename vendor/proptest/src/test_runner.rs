//! Deterministic RNG for case generation.

/// SplitMix64 generator seeded from the test name, so every run of a given
/// property generates the identical case sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from an arbitrary string (FNV-1a hash of the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: hash }
    }

    /// Seeds from a raw value.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("prop_x");
        let mut b = TestRng::deterministic("prop_x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_diverge() {
        let mut a = TestRng::deterministic("prop_x");
        let mut b = TestRng::deterministic("prop_y");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
