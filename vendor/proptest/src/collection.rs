//! Collection strategies (`collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: an exact size or a size range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        Self {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        Self {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + rng.next_below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy with length drawn from `size` (exact `usize` or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size_is_honoured() {
        let mut rng = TestRng::from_seed(11);
        let strat = vec(0u64..10, 5usize);
        for _ in 0..20 {
            assert_eq!(strat.generate(&mut rng).len(), 5);
        }
    }

    #[test]
    fn ranged_size_stays_in_bounds() {
        let mut rng = TestRng::from_seed(12);
        let strat = vec(0u64..10, 2..7);
        let mut seen_min = usize::MAX;
        let mut seen_max = 0;
        for _ in 0..100 {
            let len = strat.generate(&mut rng).len();
            assert!((2..7).contains(&len));
            seen_min = seen_min.min(len);
            seen_max = seen_max.max(len);
        }
        assert_eq!((seen_min, seen_max), (2, 6));
    }
}
