//! Offline stand-in for the `serde` crate.
//!
//! This workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! as API surface but never drives an actual serializer (there is no
//! `serde_json`/`bincode` in the dependency tree, and the container builds
//! with no crates.io access). The traits here are therefore markers: the
//! derive macros in `serde_derive` emit empty impls, which keeps every
//! annotated type source-compatible with the real serde on the day a real
//! serializer is vendored in.

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker counterpart of `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    (),
    bool,
    char,
    String,
    u8,
    u16,
    u32,
    u64,
    u128,
    usize,
    i8,
    i16,
    i32,
    i64,
    i128,
    isize,
    f32,
    f64,
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}
impl<T: Serialize, U: Serialize> Serialize for (T, U) {}
impl<'de, T: Deserialize<'de>, U: Deserialize<'de>> Deserialize<'de> for (T, U) {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize + ?Sized> Serialize for &T {}
