//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` API that `fei-net`'s codec and
//! `fei-fl`'s threaded runtime use: a cheaply cloneable immutable [`Bytes`],
//! a growable [`BytesMut`], and the cursor-style [`Buf`]/[`BufMut`] traits
//! with big-endian integer and little-endian float accessors.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply cloneable immutable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source. Multi-byte integers are big-endian
/// unless the method name says otherwise, matching the real crate.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, consuming them.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past the end");
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink. Multi-byte integers are
/// big-endian unless the method name says otherwise.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_accessors() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(42);
        buf.put_f64_le(1.5);
        let frozen = buf.freeze();
        let mut cursor = &frozen[..];
        assert_eq!(cursor.remaining(), 21);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), 42);
        assert_eq!(cursor.get_f64_le(), 1.5);
        assert!(!cursor.has_remaining());
    }

    #[test]
    fn bytes_clone_shares_storage() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(&a[..], &b[..]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32();
    }
}
