//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std primitives behind parking_lot's panic-free API: `lock()`
//! returns the guard directly and — like the real crate — never poisons, so
//! a panicking worker thread cannot wedge the coordinator's stats mutex.

use std::sync::{self, TryLockError};

/// Mutex whose `lock` neither returns `Result` nor poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// RwLock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("holder dies with the lock held");
        })
        .join();
        // parking_lot semantics: no poisoning, the next lock just works.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
