//! Derive macros for the offline `serde` stand-in.
//!
//! The companion `serde` crate defines `Serialize`/`Deserialize` as marker
//! traits, so deriving them only needs an empty impl block. Parsing is done
//! directly on the token stream (no `syn`/`quote` — the build is fully
//! offline): we extract the type name and its generic parameter list, strip
//! bounds and defaults for the type-argument position, and keep the full
//! parameter list (with bounds) for the impl-generics position.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, false)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, true)
}

fn marker_impl(input: TokenStream, deserialize: bool) -> TokenStream {
    let (name, params) = parse_item(input);
    let param_decls: Vec<String> = params.iter().map(|p| p.decl.clone()).collect();
    let param_args: Vec<String> = params.iter().map(|p| p.name.clone()).collect();

    let (impl_generics, trait_path) = if deserialize {
        let mut decls = vec!["'de".to_string()];
        decls.extend(param_decls);
        (
            format!("<{}>", decls.join(", ")),
            "::serde::Deserialize<'de>".to_string(),
        )
    } else if param_decls.is_empty() {
        (String::new(), "::serde::Serialize".to_string())
    } else {
        (
            format!("<{}>", param_decls.join(", ")),
            "::serde::Serialize".to_string(),
        )
    };
    let type_args = if param_args.is_empty() {
        String::new()
    } else {
        format!("<{}>", param_args.join(", "))
    };

    format!("impl{impl_generics} {trait_path} for {name}{type_args} {{}}")
        .parse()
        .expect("generated impl is valid Rust")
}

struct Param {
    /// Declaration with bounds, defaults stripped (e.g. `T: Clone`, `'a`,
    /// `const N: usize`).
    decl: String,
    /// Bare name for the type-argument position (e.g. `T`, `'a`, `N`).
    name: String,
}

/// Extracts the item name and generic parameters from a struct/enum
/// definition token stream.
fn parse_item(input: TokenStream) -> (String, Vec<Param>) {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility until the `struct`/`enum` keyword.
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // Consume the bracketed attribute body.
                let _ = tokens.next();
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" || s == "union" {
                    break;
                }
                // `pub`, `pub(crate)` etc. — visibility groups are consumed
                // by the loop as they come.
            }
            _ => {}
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after struct/enum keyword, got {other:?}"),
    };

    // Generic parameter list, if any.
    let mut params = Vec::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            tokens.next();
            let mut depth = 1usize;
            let mut current: Vec<TokenTree> = Vec::new();
            for tt in tokens.by_ref() {
                match &tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => {
                        depth += 1;
                        current.push(tt);
                    }
                    TokenTree::Punct(p) if p.as_char() == '>' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                        current.push(tt);
                    }
                    TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                        if let Some(param) = parse_param(&current) {
                            params.push(param);
                        }
                        current.clear();
                    }
                    _ => current.push(tt),
                }
            }
            if let Some(param) = parse_param(&current) {
                params.push(param);
            }
        }
    }
    (name, params)
}

/// Parses one generic parameter's tokens into its declaration and bare name.
fn parse_param(tokens: &[TokenTree]) -> Option<Param> {
    if tokens.is_empty() {
        return None;
    }
    // Strip a trailing `= default`.
    let end = tokens
        .iter()
        .position(|tt| matches!(tt, TokenTree::Punct(p) if p.as_char() == '='))
        .unwrap_or(tokens.len());
    let tokens = &tokens[..end];
    // Round-trip through a TokenStream so lifetimes render as `'a`, not
    // `' a`.
    let decl = tokens.iter().cloned().collect::<TokenStream>().to_string();

    // Bare name: lifetime (`'` + ident), `const` + ident, or first ident.
    let name = match tokens {
        [TokenTree::Punct(p), TokenTree::Ident(id), ..] if p.as_char() == '\'' => {
            format!("'{id}")
        }
        [TokenTree::Ident(kw), TokenTree::Ident(id), ..] if kw.to_string() == "const" => {
            id.to_string()
        }
        _ => tokens.iter().find_map(|tt| match tt {
            TokenTree::Ident(id) => Some(id.to_string()),
            _ => None,
        })?,
    };
    Some(Param { decl, name })
}
