//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel` with the MPMC surface the threaded FedAvg
//! runtime uses — `unbounded`, cloneable `Sender`/`Receiver`, `recv`,
//! `recv_timeout`, `try_recv` — implemented over `std::sync::mpsc` with the
//! consumer side shared behind a mutex.

pub mod channel {
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like the real crossbeam: Debug does not require T: Debug.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Nothing arrived within the deadline; senders may still exist.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// Cloneable producer half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues a message; fails only when every receiver is dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    /// Cloneable consumer half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Receiver<T> {
        fn guard(&self) -> std::sync::MutexGuard<'_, mpsc::Receiver<T>> {
            match self.inner.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }

        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.guard().recv().map_err(|_| RecvError)
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.guard().recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.guard().try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender { inner: tx },
            Receiver {
                inner: Arc::new(Mutex::new(rx)),
            },
        )
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            tx.send(41u32).unwrap();
            tx.clone().send(42).unwrap();
            assert_eq!(rx.recv(), Ok(41));
            assert_eq!(rx.clone().recv(), Ok(42));
        }

        #[test]
        fn timeout_reports_empty_channel() {
            let (tx, rx) = unbounded::<u8>();
            let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
            drop(tx);
            let err = rx.recv_timeout(Duration::from_millis(5)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Disconnected);
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
