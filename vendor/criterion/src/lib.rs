//! Offline mini `criterion`.
//!
//! A thin wall-clock benchmark harness exposing the subset of the criterion
//! API this workspace's benches use: `Criterion`, `benchmark_group` /
//! `bench_with_input` / `bench_function`, `Bencher::iter`, `BenchmarkId`,
//! `Throughput::Elements`, and the `criterion_group!` / `criterion_main!`
//! macros. No statistics, plots, or baselines — each benchmark is timed
//! with a short calibration pass followed by a fixed measurement batch and
//! the mean per-iteration time is printed.

use std::fmt;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can `use criterion::black_box` if they prefer.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times one routine.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that takes roughly 50 ms.
        let mut n: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..n {
                std_black_box(routine());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(10) || n >= 1 << 20 {
                let per_iter = took.as_secs_f64() / n as f64;
                let target = (0.05 / per_iter.max(1e-9)).clamp(1.0, 1e7) as u64;
                let start = Instant::now();
                for _ in 0..target {
                    std_black_box(routine());
                }
                self.iters = target;
                self.elapsed = start.elapsed();
                return;
            }
            n = n.saturating_mul(4);
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.iters == 0 {
            println!("{name:<40} (not measured)");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        let time = format_seconds(per_iter);
        match throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / per_iter;
                println!("{name:<40} {time:>12}/iter  {rate:>14.0} elem/s");
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / per_iter;
                println!("{name:<40} {time:>12}/iter  {rate:>14.0} B/s");
            }
            None => println!("{name:<40} {time:>12}/iter"),
        }
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.name), self.throughput);
        self
    }

    /// Benchmarks a routine with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkIdOrName>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into().0), self.throughput);
        self
    }

    /// Ends the group (prints a separator).
    pub fn finish(self) {
        println!();
    }
}

/// Accepts either a `&str` name or a [`BenchmarkId`].
pub struct BenchmarkIdOrName(String);

impl From<&str> for BenchmarkIdOrName {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkIdOrName {
    fn from(s: String) -> Self {
        Self(s)
    }
}

impl From<BenchmarkId> for BenchmarkIdOrName {
    fn from(id: BenchmarkId) -> Self {
        Self(id.name)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone routine.
    pub fn bench_function<F>(&mut self, name: impl Into<BenchmarkIdOrName>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&name.into().0, None);
        self
    }
}

/// Bundles benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::default();
        b.iter(|| (0..100u64).sum::<u64>());
        assert!(b.iters > 0);
        assert!(b.elapsed > Duration::ZERO);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("acs", 40).name, "acs/40");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }
}
