//! Quickstart: plan an energy-optimal federated training run.
//!
//! Builds the paper's energy model, a convergence bound, and asks the EE-FEI
//! planner for the `(K*, E*, T*)` that minimizes total energy at a target
//! accuracy — then sanity-checks the plan against brute force.
//!
//! Run: `cargo run --release --example quickstart`

use ee_fei::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Energy model: how many joules each step of a round costs.
    //    `paper_default` uses the paper's Table-I fit (c0 = 7.79e-5,
    //    c1 = 3.34e-3), NB-IoT data collection, and a WiFi model upload,
    //    with 3 000 samples per edge server.
    let energy = RoundEnergyModel::paper_default();
    println!(
        "energy model: B0 = {:.3} J/epoch, B1 = {:.3} J/round",
        energy.b0(),
        energy.b1()
    );

    // 2. Convergence bound: how fast FedAvg closes the loss gap
    //    (Eq. 10's constants; fit your own from training runs with
    //    `fei_core::calibration::fit_bound_constants`).
    let bound = ConvergenceBound::new(1.0, 0.05, 1e-4)?;

    // 3. Plan: minimize ê(K, E) = T*(K,E) · K · (B0·E + B1) over a fleet of
    //    20 edge servers, for a target loss gap of 0.1.
    let planner = EeFeiPlanner::new(energy, bound, 0.1, 20)?;
    let plan = planner.plan()?;

    println!(
        "EE-FEI plan: select K = {} servers, run E = {} local epochs, T = {} rounds",
        plan.solution.k, plan.solution.e, plan.solution.t
    );
    println!(
        "predicted energy: {:.1} J vs {:.1} J for the naive K=1, E=1 schedule",
        plan.solution.energy, plan.baseline_energy
    );
    println!("predicted savings: {:.1}%", plan.savings_fraction * 100.0);

    // 4. Trust, but verify: exhaustive grid search must agree.
    let grid = GridSearch::default().solve(&planner.objective())?;
    assert_eq!((grid.k, grid.e), (plan.solution.k, plan.solution.e));
    println!(
        "grid search agrees after {} evaluations (ACS needed {} iterations)",
        grid.evaluated, plan.solution.iterations
    );
    Ok(())
}
