//! Coordinator protocol cluster: a fleet of participant state machines
//! talking to the coordinator over a deterministic, lossy wire.
//!
//! Spins up the fei-proto cluster — one coordinator, five heartbeating
//! participants, one heartbeat-muted straggler — first on a quiet wire,
//! then on a hostile one that drops, duplicates, reorders, and corrupts
//! frames. Both runs close every round (commit or abort), never aggregate
//! an expired client's update, and bill their control traffic as energy.
//!
//! Run: `cargo run --release --example coordinator_cluster`

use ee_fei::prelude::*;

fn fleet(chaos: ChaosConfig) -> ClusterConfig {
    let mut participants: Vec<ParticipantConfig> =
        (0..5).map(|c| ParticipantConfig::new(c, 3)).collect();
    // Client 5 never heartbeats: its lease lapses every round, so it probes
    // the safety invariant — an expired client must never be aggregated.
    participants.push(ParticipantConfig {
        mute_heartbeats: true,
        ..ParticipantConfig::new(5, 3)
    });
    ClusterConfig {
        coordinator: CoordinatorConfig {
            k: 3,
            over_select: 1,
            quorum: 2,
            epochs: 5,
            heartbeat_interval: 5,
            heartbeat_timeout: 20,
            round_deadline: 40,
        },
        participants,
        uplink: ChaosConfig { seed: 101, ..chaos },
        downlink: ChaosConfig { seed: 202, ..chaos },
        target_rounds: 8,
        max_ticks: 10_000,
        global_payload: vec![0xAB; 64],
        crashes: Vec::new(),
    }
}

fn report(name: &str, r: &ClusterReport) {
    println!("\n{name}:");
    for v in &r.round_log {
        let verdict = if v.committed {
            format!("committed {:?}", v.accepted)
        } else {
            "aborted".to_string()
        };
        println!(
            "  round {:>2} closed at tick {:>4}: {verdict}",
            v.round, v.closed_at
        );
    }
    println!(
        "  {} committed / {} aborted in {} ticks; {} frames rejected ({} from expired clients)",
        r.committed, r.aborted, r.ticks, r.coordinator.rejected, r.coordinator.expired_rejections
    );
    println!(
        "  control plane: {} bytes up, {} bytes down",
        r.control_bytes_up, r.control_bytes_down
    );
    assert!(r.liveness_ok(), "a round neither committed nor aborted");
    assert!(r.safety_ok(), "an expired client's update was aggregated");
    println!("  liveness ✓ (every round closed)  safety ✓ (no expired update aggregated)");
}

fn main() {
    println!(
        "coordinator protocol cluster: 5 live + 1 heartbeat-muted participant, K=3+1, quorum 2"
    );

    let quiet = Cluster::new(fleet(ChaosConfig::quiet(0))).run();
    report("quiet wire", &quiet);

    let hostile = Cluster::new(fleet(ChaosConfig {
        drop_prob: 0.12,
        dup_prob: 0.10,
        reorder_prob: 0.12,
        corrupt_prob: 0.06,
        seed: 0,
    }))
    .run();
    report(
        "hostile wire (12% drop, 10% dup, 12% reorder, 6% corrupt)",
        &hostile,
    );

    // The campaign driver sweeps a seed matrix and bills control traffic.
    let campaign = ChaosCampaign::new(ChaosCampaignConfig::default_matrix(vec![1, 2, 3])).run();
    println!(
        "\nchaos campaign over 3 seeds: {} committed, {} aborted, control energy {:.1} mJ",
        campaign.total_committed(),
        campaign.total_aborted(),
        campaign.ledger.control_joules() * 1e3
    );
    assert!(campaign.liveness_ok() && campaign.safety_ok());
    println!("matrix liveness ✓  matrix safety ✓");
}
