//! Exploring the paper's IID caveat: how data heterogeneity changes the
//! energy-optimal federation.
//!
//! The paper concludes `K* = 1` *because* its prototype's data is IID
//! ("the gradients calculated using datasets at different edge servers
//! should show similar statistic features"). This example dials
//! heterogeneity with a Dirichlet split and watches two things move:
//!
//! 1. the measured rounds-to-target `T` at small `K` (heterogeneity punishes
//!    single-client rounds);
//! 2. the calibrated gradient-variance constant `A₁`, which is exactly the
//!    term that pushes the closed-form `K*` (Eq. 15) above 1.
//!
//! Run: `cargo run --release --example noniid_exploration`

use ee_fei::core::calibration::fit_bound_constants;
use ee_fei::prelude::*;
use ee_fei::testbed::experiment::gap_observations;

const TARGET: f64 = 0.90;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>16} {:>8} {:>8} {:>8} {:>12} {:>8}",
        "split", "T(K=1)", "T(K=5)", "T(K=20)", "fitted A1", "K*(Eq15)"
    );

    for (label, partition) in [
        ("IID", PartitionStrategy::Iid),
        (
            "Dirichlet(1.0)",
            PartitionStrategy::Dirichlet { alpha: 1.0 },
        ),
        (
            "Dirichlet(0.3)",
            PartitionStrategy::Dirichlet { alpha: 0.3 },
        ),
        (
            "Dirichlet(0.1)",
            PartitionStrategy::Dirichlet { alpha: 0.1 },
        ),
    ] {
        let exp = FlExperiment::prepare(FlExperimentConfig {
            partition,
            ..FlExperimentConfig::paper_like()
        });

        // Measured rounds to the target at three fleet fractions.
        let (_, t1) = exp.run_to_accuracy(1, 8, TARGET, 400);
        let (_, t5) = exp.run_to_accuracy(5, 8, TARGET, 300);
        let (_, t20) = exp.run_to_accuracy(20, 8, TARGET, 200);

        // Fixed-length runs for calibration (early-stopped histories bias
        // the regression toward the large-gap transient).
        let h1 = exp.run_rounds(1, 8, 120);
        let h5 = exp.run_rounds(5, 8, 100);
        let h20 = exp.run_rounds(20, 8, 80);
        let h1e = exp.run_rounds(1, 1, 200);

        // Calibrate the bound on these three runs to expose A1.
        let union = exp.training_union();
        let mut reference = LogisticRegression::zeros(union.dim(), union.num_classes());
        LocalTrainer::new(SgdConfig::new(0.02, 1.0, None)).train(&mut reference, &union, 600, 0);
        let f_star = reference.loss(&union) - 0.01;

        let mut obs = Vec::new();
        for (k, e, h) in [
            (1usize, 8usize, &h1),
            (5, 8, &h5),
            (20, 8, &h20),
            (1, 1, &h1e),
        ] {
            obs.extend(gap_observations(h, e, k, f_star, 2));
        }
        let (a1_str, k_star_str) = match fit_bound_constants(&obs) {
            Ok(bound) => {
                // Closed-form K* (Eq. 15) at E = 8 for a representative
                // epsilon: the gap observed when the IID run hits the target.
                let epsilon = 0.6;
                let energy = RoundEnergyModel::paper_default();
                let objective = EnergyObjective::new(bound, energy.b0(), energy.b1(), epsilon, 20);
                let k_star = objective
                    .ok()
                    .and_then(|o| o.k_star(8.0))
                    .map_or("-".to_string(), |k| format!("{k:.2}"));
                (format!("{:.3}", bound.a1()), k_star)
            }
            Err(_) => ("-".into(), "-".into()),
        };

        let fmt = |t: Option<usize>| t.map_or("-".to_string(), |t| t.to_string());
        println!(
            "{label:>16} {:>8} {:>8} {:>8} {a1_str:>12} {k_star_str:>8}",
            fmt(t1),
            fmt(t5),
            fmt(t20),
        );
    }

    println!(
        "\nreading: as alpha falls (more skew), T(K=1) deteriorates fastest and the\n\
         fitted A1 grows — through Eq. 15 (K* = 2A1/(eps - A2(E-1))) exactly the\n\
         mechanism that lifts the optimal K above the paper's IID answer of 1."
    );
    Ok(())
}
