//! A smart-campus scenario: the full EE-FEI loop on a simulated deployment.
//!
//! Twenty edge gateways across a campus each aggregate camera/sensor data
//! (here: the synthetic MNIST-shaped workload) and collaboratively train a
//! shared classifier. The operator wants a 92 %-accurate model for the
//! least battery drain. This example runs the *whole* pipeline on the
//! simulated testbed:
//!
//! 1. train a few probe configurations with real FedAvg;
//! 2. calibrate the convergence bound from those runs;
//! 3. let ACS pick `(K*, E*, T*)`;
//! 4. execute both the naive and the optimized schedule on the testbed and
//!    compare measured energy.
//!
//! Run: `cargo run --release --example smart_campus`

use ee_fei::core::calibration::fit_bound_constants;
use ee_fei::prelude::*;
use ee_fei::testbed::experiment::gap_observations;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A smaller campus than the paper's prototype, to keep this example
    // snappy: 10 gateways, ~3k total samples.
    let campaign = FlExperimentConfig {
        num_devices: 10,
        ..FlExperimentConfig::paper_like()
    };
    let exp = FlExperiment::prepare(campaign);
    println!(
        "campus fleet: {} gateways x {} samples, test set {}",
        exp.config().num_devices,
        exp.samples_per_device(),
        exp.test_set().len()
    );

    // --- 1. probe runs ------------------------------------------------
    println!("\nprobing convergence with 4 configurations…");
    let probes = [
        (1usize, 1usize, 300usize),
        (1, 10, 80),
        (5, 5, 80),
        (10, 20, 40),
    ];
    let runs: Vec<(usize, usize, TrainingHistory)> = probes
        .iter()
        .map(|&(k, e, rounds)| {
            let h = exp.run_rounds(k, e, rounds);
            println!(
                "  K={k:2} E={e:2}: {} rounds, final accuracy {:.3}",
                h.len(),
                h.accuracy_curve().last().map(|&(_, a)| a).unwrap_or(0.0)
            );
            (k, e, h)
        })
        .collect();

    // --- 2. calibrate the bound ---------------------------------------
    // F(ω*) from a centralized reference fit.
    let union = exp.training_union();
    let mut reference = LogisticRegression::zeros(union.dim(), union.num_classes());
    LocalTrainer::new(SgdConfig::new(0.02, 1.0, None)).train(&mut reference, &union, 600, 0);
    let f_star = reference.loss(&union) - 0.01;

    let mut observations = Vec::new();
    for (k, e, h) in &runs {
        observations.extend(gap_observations(h, *e, *k, f_star, 2));
    }
    let bound = fit_bound_constants(&observations)?;
    println!(
        "\ncalibrated bound: A0={:.2} A1={:.3} A2={:.5} (from {} gap observations)",
        bound.a0(),
        bound.a1(),
        bound.a2(),
        observations.len()
    );

    // Accuracy target -> loss-gap target, using the probes' crossings.
    let epsilon = runs
        .iter()
        .filter_map(|(_, _, h)| {
            let t = h.rounds_to_accuracy(0.92)?;
            h.loss_curve()
                .iter()
                .find(|&&(r, _)| r + 1 == t)
                .map(|&(_, l)| l - f_star)
        })
        .reduce(f64::max)
        .unwrap_or(0.5);
    println!("accuracy 92% translates to a loss-gap target epsilon = {epsilon:.3}");

    // --- 3. optimize ----------------------------------------------------
    let testbed = Testbed::new(
        TestbedConfig {
            num_devices: 10,
            ..Default::default()
        },
        RaspberryPi::paper_calibrated(),
    );
    let planner = EeFeiPlanner::new(testbed.energy_model(), bound, epsilon, 10)?;
    let plan = planner.plan()?;
    println!(
        "\nEE-FEI plan: K*={} E*={} T*={} (predicted {:.0} J, {:.0}% below naive)",
        plan.solution.k,
        plan.solution.e,
        plan.solution.t,
        plan.solution.energy,
        plan.savings_fraction * 100.0
    );

    // --- 4. validate and refine on the simulated hardware --------------
    // The calibrated bound gets the *shape* of the energy landscape right
    // but (as the paper's Figs. 5-6 show) its absolute round counts carry a
    // bound/trace gap. So we do what the paper does for its black
    // asterisks: measure the plan's neighbourhood and commit to the best
    // observed point.
    println!("\nvalidating on the simulated testbed…");
    let measure = |k: usize, e: usize| -> Option<(usize, f64)> {
        let (_, t) = exp.run_to_accuracy(k, e, 0.92, 600);
        t.map(|t| (t, testbed.run(k, e, t).total_joules()))
    };
    let (t_naive, naive) = measure(1, 1).ok_or("naive schedule missed the target")?;
    println!("  naive  (K=1, E=1):   T={t_naive:3} rounds, {naive:7.1} J measured");

    let mut best = (plan.solution.k, plan.solution.e, f64::INFINITY, 0usize);
    for k in [1, plan.solution.k] {
        for e in [plan.solution.e, plan.solution.e * 2, plan.solution.e * 4] {
            if let Some((t, joules)) = measure(k, e) {
                println!("  probe  (K={k}, E={e:2}):  T={t:3} rounds, {joules:7.1} J measured");
                if joules < best.2 {
                    best = (k, e, joules, t);
                }
            }
        }
    }
    let (k, e, joules, t) = best;
    println!(
        "\ncommitted schedule: K={k}, E={e}, T={t} -> {joules:.1} J, {:.1}% below naive",
        (1.0 - joules / naive) * 100.0
    );
    Ok(())
}
