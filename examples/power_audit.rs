//! Power-trace audit: reproduce the paper's Fig.-3 measurement chain.
//!
//! Builds a ground-truth power timeline for an edge server over three
//! global rounds, samples it with the simulated 1 kHz USB meter, recovers
//! the per-step mean powers, and verifies the metered energy integral
//! against the exact one.
//!
//! Run: `cargo run --release --example power_audit`

use ee_fei::power::per_state_mean_power;
use ee_fei::prelude::*;
use ee_fei::testbed::Testbed;

fn main() {
    let testbed = Testbed::paper_prototype();
    let (timeline, trace) = testbed.fig3_trace(40, 3);

    println!(
        "timeline: {} segments over {:.3} s",
        timeline.segments().len(),
        timeline.total_duration().as_secs_f64()
    );
    for seg in timeline.segments().iter().take(4) {
        println!(
            "  {:<12} {:>8.4} s @ {:.3} W",
            format!("{:?}", seg.state),
            seg.duration.as_secs_f64(),
            testbed.pi().profile().power(seg.state)
        );
    }

    println!("\nmeter: {} samples at 1 kHz", trace.len());
    let means = per_state_mean_power(&trace, &timeline);
    println!("per-step mean power recovered from the noisy trace:");
    for state in PowerState::ALL {
        if let Some(mean) = means.get(&state) {
            println!(
                "  {:<12} measured {mean:.3} W (plateau {:.3} W)",
                format!("{state:?}"),
                testbed.pi().profile().power(state)
            );
        }
    }

    let exact = timeline.energy_joules(testbed.pi().profile());
    let metered = trace.energy_joules();
    println!(
        "\nenergy: exact {exact:.3} J, metered {metered:.3} J ({:+.2}% error)",
        (metered - exact) / exact * 100.0
    );

    // Energy attribution per step, the quantity EE-FEI optimizes.
    println!("\nexact energy attribution:");
    for state in PowerState::ALL {
        let joules = timeline.energy_in_state_joules(testbed.pi().profile(), state);
        println!("  {:<12} {joules:8.3} J", format!("{state:?}"));
    }
}
