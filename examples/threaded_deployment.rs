//! Threaded FedAvg deployment: edge servers as OS threads with serialized
//! model transport.
//!
//! Runs the same federation twice — once in-process, once with every edge
//! server on its own thread exchanging byte frames over channels — and shows
//! they produce bit-identical models while the threaded run reports real
//! transport volumes.
//!
//! Run: `cargo run --release --example threaded_deployment`

use ee_fei::prelude::*;

fn main() {
    // A 6-server federation on a small synthetic workload.
    let gen = SyntheticMnist::new(SyntheticMnistConfig::default());
    let train = gen.generate(1_200, 0);
    let test = gen.generate(400, 1);
    let clients = Partition::iid(train.len(), 6, &mut DetRng::new(42)).apply(&train);

    let config = FedAvgConfig {
        clients_per_round: 3,
        local_epochs: 5,
        sgd: SgdConfig::new(0.05, 0.999, None),
        ..Default::default()
    };

    println!("running 10 rounds in-process…");
    let mut serial = FedAvg::new(config.clone(), clients.clone(), test.clone());
    let serial_history = serial.run_until(StopCondition::rounds(10));

    println!("running 10 rounds with one thread per edge server…");
    let mut threaded = ThreadedFedAvg::new(config, clients, test);
    let threaded_history = threaded.run_until(StopCondition::rounds(10));

    // Same selection, same training, same aggregation -> same model.
    assert_eq!(serial.global_model(), threaded.global_model());
    println!("models are bit-identical across engines ✓");

    let eval = serial_history
        .last()
        .and_then(|r| r.test_eval)
        .expect("evaluated");
    println!(
        "after 10 rounds: test accuracy {:.3}, loss {:.3}",
        eval.accuracy, eval.loss
    );
    assert_eq!(
        serial_history.accuracy_curve(),
        threaded_history.accuracy_curve()
    );

    let stats = threaded.transport_stats();
    println!(
        "transport: {} training jobs, {:.1} kB downlink, {:.1} kB uplink",
        stats.jobs,
        stats.bytes_down as f64 / 1e3,
        stats.bytes_up as f64 / 1e3
    );
    let payload = serial.global_model().payload_bytes();
    println!(
        "(each of the {} jobs moved one {}-byte model in each direction, plus framing)",
        stats.jobs, payload
    );
}
