//! A dense labelled classification dataset.

use serde::{Deserialize, Serialize};

/// A dense dataset: `len` samples of dimension `dim`, each with a class label
/// in `0..num_classes`.
///
/// Features are stored flat in row-major order so training can stream over
/// them without pointer chasing.
///
/// # Example
///
/// ```
/// use fei_data::Dataset;
///
/// let ds = Dataset::from_parts(2, vec![0.0, 1.0, 1.0, 0.0], vec![0, 1], 2);
/// assert_eq!(ds.len(), 2);
/// assert_eq!(ds.sample(1), &[1.0, 0.0]);
/// assert_eq!(ds.label(1), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    dim: usize,
    num_classes: usize,
    features: Vec<f64>,
    labels: Vec<usize>,
}

impl Dataset {
    /// Builds a dataset from flat row-major features and per-sample labels.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`, `num_classes == 0`, the feature buffer is not a
    /// multiple of `dim`, the label count does not match the sample count, or
    /// any label is out of range.
    pub fn from_parts(
        dim: usize,
        features: Vec<f64>,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Self {
        assert!(dim > 0, "dimension must be non-zero");
        assert!(num_classes > 0, "need at least one class");
        assert_eq!(
            features.len() % dim,
            0,
            "feature buffer must be a multiple of dim"
        );
        assert_eq!(
            features.len() / dim,
            labels.len(),
            "labels must match sample count"
        );
        assert!(
            labels.iter().all(|&l| l < num_classes),
            "labels must be < num_classes"
        );
        Self {
            dim,
            num_classes,
            features,
            labels,
        }
    }

    /// Creates an empty dataset with the given shape, to be `push`ed into.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `num_classes == 0`.
    pub fn empty(dim: usize, num_classes: usize) -> Self {
        Self::from_parts(dim, Vec::new(), Vec::new(), num_classes)
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if the feature length or label is inconsistent with the shape.
    pub fn push(&mut self, features: &[f64], label: usize) {
        assert_eq!(features.len(), self.dim, "sample has wrong dimension");
        assert!(label < self.num_classes, "label {label} out of range");
        self.features.extend_from_slice(features);
        self.labels.push(label);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimension of each sample.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Features of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn sample(&self, i: usize) -> &[f64] {
        assert!(i < self.len(), "sample index {i} out of bounds");
        &self.features[i * self.dim..(i + 1) * self.dim]
    }

    /// Label of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The flat row-major feature buffer (`len × dim`): sample `i` occupies
    /// `[i * dim, (i + 1) * dim)`. Lets batch kernels that visit a
    /// consecutive run of samples borrow one contiguous block instead of
    /// gathering per-sample rows.
    pub fn features_flat(&self) -> &[f64] {
        &self.features
    }

    /// Iterator over `(features, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], usize)> + '_ {
        (0..self.len()).map(move |i| (self.sample(i), self.label(i)))
    }

    /// A new dataset containing the samples at `indices` (in that order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::empty(self.dim, self.num_classes);
        for &i in indices {
            out.push(self.sample(i), self.label(i));
        }
        out
    }

    /// Splits into a head of `head_len` samples and the remaining tail.
    ///
    /// # Panics
    ///
    /// Panics if `head_len > self.len()`.
    pub fn split_at(&self, head_len: usize) -> (Dataset, Dataset) {
        assert!(head_len <= self.len(), "split beyond dataset length");
        let head: Vec<usize> = (0..head_len).collect();
        let tail: Vec<usize> = (head_len..self.len()).collect();
        (self.subset(&head), self.subset(&tail))
    }

    /// Per-class sample counts (length `num_classes`).
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::from_parts(2, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0], vec![0, 1, 0], 2)
    }

    #[test]
    fn shape_accessors() {
        let ds = tiny();
        assert_eq!(ds.len(), 3);
        assert!(!ds.is_empty());
        assert_eq!(ds.dim(), 2);
        assert_eq!(ds.num_classes(), 2);
        assert_eq!(ds.sample(2), &[4.0, 5.0]);
        assert_eq!(ds.label(2), 0);
        assert_eq!(ds.labels(), &[0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn rejects_ragged_features() {
        let _ = Dataset::from_parts(2, vec![1.0, 2.0, 3.0], vec![0], 1);
    }

    #[test]
    #[should_panic(expected = "labels must match")]
    fn rejects_label_count_mismatch() {
        let _ = Dataset::from_parts(1, vec![1.0, 2.0], vec![0], 1);
    }

    #[test]
    #[should_panic(expected = "num_classes")]
    fn rejects_out_of_range_label() {
        let _ = Dataset::from_parts(1, vec![1.0], vec![5], 2);
    }

    #[test]
    fn push_appends() {
        let mut ds = Dataset::empty(2, 3);
        assert!(ds.is_empty());
        ds.push(&[1.0, 2.0], 2);
        assert_eq!(ds.len(), 1);
        assert_eq!(ds.sample(0), &[1.0, 2.0]);
        assert_eq!(ds.label(0), 2);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn push_rejects_wrong_dim() {
        Dataset::empty(2, 3).push(&[1.0], 0);
    }

    #[test]
    fn iter_yields_all_pairs() {
        let ds = tiny();
        let pairs: Vec<(usize, usize)> = ds.iter().map(|(f, l)| (f.len(), l)).collect();
        assert_eq!(pairs, vec![(2, 0), (2, 1), (2, 0)]);
    }

    #[test]
    fn subset_selects_and_orders() {
        let ds = tiny();
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.sample(0), &[4.0, 5.0]);
        assert_eq!(sub.sample(1), &[0.0, 1.0]);
    }

    #[test]
    fn split_at_partitions() {
        let ds = tiny();
        let (head, tail) = ds.split_at(1);
        assert_eq!(head.len(), 1);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail.sample(0), &[2.0, 3.0]);
    }

    #[test]
    fn split_at_edges() {
        let ds = tiny();
        let (h, t) = ds.split_at(0);
        assert!(h.is_empty());
        assert_eq!(t.len(), 3);
        let (h, t) = ds.split_at(3);
        assert_eq!(h.len(), 3);
        assert!(t.is_empty());
    }

    #[test]
    fn class_histogram_counts() {
        assert_eq!(tiny().class_histogram(), vec![2, 1]);
    }
}
