//! Datasets and data movement for EE-FEI.
//!
//! The paper trains multinomial logistic regression on MNIST, uniformly
//! spread over 20 edge servers (3 000 samples each), with the IoT network
//! uploading samples to its edge server. We have no MNIST here, so this crate
//! provides:
//!
//! * [`dataset::Dataset`] — a dense labelled dataset;
//! * [`synthetic::SyntheticMnist`] — a generator of MNIST-shaped (784-dim,
//!   10-class) data whose logistic-regression accuracy ceiling is tuned to
//!   the paper's ~92 % (see DESIGN.md, substitution table);
//! * [`partition::Partition`] — IID and label-sharded non-IID federated
//!   splits;
//! * [`stream::IotStream`] — the IoT-side description of a round's data
//!   upload (sample sizes in bytes and arrival schedule) consumed by the
//!   network/energy models.

#![forbid(unsafe_code)]

pub mod dataset;
pub mod partition;
pub mod persist;
pub mod stream;
pub mod synthetic;

pub use dataset::Dataset;
pub use partition::Partition;
pub use persist::PersistError;
pub use stream::IotStream;
pub use synthetic::{SyntheticMnist, SyntheticMnistConfig};
