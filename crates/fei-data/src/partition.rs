//! Federated dataset partitioning.
//!
//! The paper's prototype spreads 60 000 training samples uniformly over
//! `N = 20` edge servers (3 000 each) — the IID case that drives its `K* = 1`
//! conclusion. The label-sharded non-IID partitioner implements the classic
//! FedAvg pathological split so the effect of heterogeneity on the optimal
//! `(K, E)` can be explored beyond the paper.

use fei_sim::DetRng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// An assignment of dataset indices to clients.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    assignments: Vec<Vec<usize>>,
}

impl Partition {
    /// IID partition: shuffles all indices and deals them out as evenly as
    /// possible (the first `len % num_clients` clients receive one extra).
    ///
    /// # Panics
    ///
    /// Panics if `num_clients == 0`.
    pub fn iid(dataset_len: usize, num_clients: usize, rng: &mut DetRng) -> Self {
        assert!(num_clients > 0, "need at least one client");
        let mut indices: Vec<usize> = (0..dataset_len).collect();
        rng.shuffle(&mut indices);
        let base = dataset_len / num_clients;
        let extra = dataset_len % num_clients;
        let mut assignments = Vec::with_capacity(num_clients);
        let mut cursor = 0;
        for c in 0..num_clients {
            let take = base + usize::from(c < extra);
            assignments.push(indices[cursor..cursor + take].to_vec());
            cursor += take;
        }
        Self { assignments }
    }

    /// Pathological non-IID partition: sorts indices by label, cuts them into
    /// `num_clients * shards_per_client` contiguous shards, and deals each
    /// client `shards_per_client` random shards. With few shards per client
    /// each edge server sees only a couple of classes.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients == 0`, `shards_per_client == 0`, or there are
    /// fewer samples than shards.
    pub fn by_label_shards(
        dataset: &Dataset,
        num_clients: usize,
        shards_per_client: usize,
        rng: &mut DetRng,
    ) -> Self {
        assert!(num_clients > 0, "need at least one client");
        assert!(shards_per_client > 0, "need at least one shard per client");
        let num_shards = num_clients * shards_per_client;
        assert!(
            dataset.len() >= num_shards,
            "need at least {num_shards} samples, have {}",
            dataset.len()
        );

        let mut by_label: Vec<usize> = (0..dataset.len()).collect();
        by_label.sort_by_key(|&i| dataset.label(i));

        let shard_len = dataset.len() / num_shards;
        let mut shard_ids: Vec<usize> = (0..num_shards).collect();
        rng.shuffle(&mut shard_ids);

        let mut assignments = vec![Vec::new(); num_clients];
        for (pos, &shard) in shard_ids.iter().enumerate() {
            let client = pos / shards_per_client;
            let start = shard * shard_len;
            // The last shard absorbs the remainder.
            let end = if shard == num_shards - 1 {
                dataset.len()
            } else {
                start + shard_len
            };
            assignments[client].extend_from_slice(&by_label[start..end]);
        }
        Self { assignments }
    }

    /// Dirichlet non-IID partition: for each class, class-member indices are
    /// split across clients with proportions drawn from a symmetric
    /// `Dirichlet(alpha)`. Small `alpha` (e.g. 0.1) produces heavily skewed
    /// clients; large `alpha` approaches IID. This is the standard
    /// heterogeneity dial of the FL literature, used here to explore how the
    /// paper's `K* = 1` conclusion shifts away from the IID setting.
    ///
    /// Clients left empty by the draw are topped up with one sample stolen
    /// from the largest client, so every client can train.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients == 0`, `alpha <= 0`, or the dataset has fewer
    /// samples than clients.
    pub fn dirichlet(dataset: &Dataset, num_clients: usize, alpha: f64, rng: &mut DetRng) -> Self {
        assert!(num_clients > 0, "need at least one client");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        assert!(
            dataset.len() >= num_clients,
            "need at least {num_clients} samples, have {}",
            dataset.len()
        );

        // Group indices per class, shuffled so cuts are random.
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes()];
        for i in 0..dataset.len() {
            per_class[dataset.label(i)].push(i);
        }
        for class in &mut per_class {
            rng.shuffle(class);
        }

        let mut assignments = vec![Vec::new(); num_clients];
        for class in per_class {
            if class.is_empty() {
                continue;
            }
            // Symmetric Dirichlet(alpha) via normalized Gamma(alpha, 1)
            // draws (Marsaglia-Tsang needs alpha >= 1; boost small alpha via
            // Gamma(alpha) = Gamma(alpha + 1) * U^{1/alpha}).
            let weights: Vec<f64> = (0..num_clients).map(|_| gamma_sample(alpha, rng)).collect();
            let total: f64 = weights.iter().sum();
            // Convert proportions to cut points over the class indices.
            let mut cursor = 0usize;
            for (client, w) in weights.iter().enumerate() {
                let take = if client + 1 == num_clients {
                    class.len() - cursor
                } else {
                    ((w / total) * class.len() as f64).round() as usize
                };
                let take = take.min(class.len() - cursor);
                assignments[client].extend_from_slice(&class[cursor..cursor + take]);
                cursor += take;
            }
        }

        // Top up any empty client from the largest one.
        while let Some(empty) = assignments.iter().position(Vec::is_empty) {
            let largest = (0..num_clients)
                .max_by_key(|&c| assignments[c].len())
                .expect("invariant: num_clients > 0 was validated at entry");
            let moved = assignments[largest]
                .pop()
                .expect("invariant: with samples >= clients the largest client is non-empty");
            assignments[empty].push(moved);
        }
        Self { assignments }
    }

    /// Number of clients in the partition.
    pub fn num_clients(&self) -> usize {
        self.assignments.len()
    }

    /// The indices assigned to `client`.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn client_indices(&self, client: usize) -> &[usize] {
        &self.assignments[client]
    }

    /// Materializes one [`Dataset`] per client.
    pub fn apply(&self, dataset: &Dataset) -> Vec<Dataset> {
        self.assignments
            .iter()
            .map(|idx| dataset.subset(idx))
            .collect()
    }

    /// Total number of assigned samples across all clients.
    pub fn total_assigned(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }
}

/// One `Gamma(alpha, 1)` draw (Marsaglia-Tsang squeeze, with the small-alpha
/// boost `Gamma(a) = Gamma(a + 1) * U^{1/a}`).
fn gamma_sample(alpha: f64, rng: &mut DetRng) -> f64 {
    if alpha < 1.0 {
        let boost = rng.next_f64().max(f64::MIN_POSITIVE).powf(1.0 / alpha);
        return gamma_sample(alpha + 1.0, rng) * boost;
    }
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = rng.gaussian();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticMnist, SyntheticMnistConfig};

    fn dataset(n: usize) -> Dataset {
        SyntheticMnist::new(SyntheticMnistConfig::default()).generate(n, 0)
    }

    #[test]
    fn iid_covers_everything_exactly_once() {
        let mut rng = DetRng::new(1);
        let p = Partition::iid(100, 7, &mut rng);
        assert_eq!(p.num_clients(), 7);
        assert_eq!(p.total_assigned(), 100);
        let mut all: Vec<usize> = (0..7).flat_map(|c| p.client_indices(c).to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn iid_balances_sizes() {
        let mut rng = DetRng::new(2);
        let p = Partition::iid(100, 7, &mut rng);
        let sizes: Vec<usize> = (0..7).map(|c| p.client_indices(c).len()).collect();
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
        // Paper setting: 60 000 over 20 -> exactly 3 000 each.
        let p = Partition::iid(60_000, 20, &mut rng);
        assert!((0..20).all(|c| p.client_indices(c).len() == 3_000));
    }

    #[test]
    fn iid_is_deterministic_per_seed() {
        let a = Partition::iid(50, 5, &mut DetRng::new(9));
        let b = Partition::iid(50, 5, &mut DetRng::new(9));
        let c = Partition::iid(50, 5, &mut DetRng::new(10));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn shard_partition_covers_everything() {
        let ds = dataset(400);
        let mut rng = DetRng::new(3);
        let p = Partition::by_label_shards(&ds, 10, 2, &mut rng);
        assert_eq!(p.total_assigned(), 400);
        let mut all: Vec<usize> = (0..10).flat_map(|c| p.client_indices(c).to_vec()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 400);
    }

    #[test]
    fn shard_partition_is_label_skewed() {
        let ds = dataset(2_000);
        let mut rng = DetRng::new(4);
        let p = Partition::by_label_shards(&ds, 10, 2, &mut rng);
        let parts = p.apply(&ds);
        // With 2 shards per client out of 20, each client should see far
        // fewer than all 10 classes.
        let avg_classes: f64 = parts
            .iter()
            .map(|d| d.class_histogram().iter().filter(|&&c| c > 0).count() as f64)
            .sum::<f64>()
            / 10.0;
        assert!(
            avg_classes < 6.0,
            "average classes per client {avg_classes}"
        );
    }

    #[test]
    fn apply_materializes_subsets() {
        let ds = dataset(30);
        let p = Partition::iid(30, 3, &mut DetRng::new(5));
        let parts = p.apply(&ds);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Dataset::len).sum::<usize>(), 30);
        // Spot-check one sample round-trips.
        let idx = p.client_indices(1)[0];
        assert_eq!(parts[1].sample(0), ds.sample(idx));
    }

    #[test]
    fn dirichlet_covers_everything_exactly_once() {
        let ds = dataset(600);
        let p = Partition::dirichlet(&ds, 8, 0.3, &mut DetRng::new(11));
        assert_eq!(p.total_assigned(), 600);
        let mut all: Vec<usize> = (0..8).flat_map(|c| p.client_indices(c).to_vec()).collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 600);
        assert!((0..8).all(|c| !p.client_indices(c).is_empty()));
    }

    #[test]
    fn dirichlet_small_alpha_is_more_skewed_than_large() {
        let ds = dataset(2_000);
        let skew = |alpha: f64| -> f64 {
            let p = Partition::dirichlet(&ds, 10, alpha, &mut DetRng::new(5));
            let parts = p.apply(&ds);
            // Mean per-client max class share: 0.1 = uniform, 1.0 = single class.
            parts
                .iter()
                .map(|d| {
                    let hist = d.class_histogram();
                    let max = *hist.iter().max().unwrap() as f64;
                    max / d.len() as f64
                })
                .sum::<f64>()
                / 10.0
        };
        let sharp = skew(0.1);
        let smooth = skew(100.0);
        assert!(
            sharp > smooth + 0.1,
            "alpha=0.1 skew {sharp} should exceed alpha=100 skew {smooth}"
        );
        // Very large alpha approaches the IID per-class share.
        assert!(smooth < 0.25, "alpha=100 skew {smooth}");
    }

    #[test]
    fn dirichlet_is_deterministic_per_seed() {
        let ds = dataset(300);
        let a = Partition::dirichlet(&ds, 5, 0.5, &mut DetRng::new(3));
        let b = Partition::dirichlet(&ds, 5, 0.5, &mut DetRng::new(3));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn dirichlet_rejects_bad_alpha() {
        let ds = dataset(50);
        let _ = Partition::dirichlet(&ds, 5, 0.0, &mut DetRng::new(0));
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn iid_rejects_zero_clients() {
        let _ = Partition::iid(10, 0, &mut DetRng::new(0));
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn shards_reject_tiny_dataset() {
        let ds = dataset(5);
        let _ = Partition::by_label_shards(&ds, 10, 2, &mut DetRng::new(0));
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Every IID partition is a permutation partition: covers all
        /// indices exactly once with balanced sizes.
        #[test]
        fn iid_partition_invariants(
            seed in any::<u64>(),
            len in 1usize..500,
            clients in 1usize..21,
        ) {
            let p = Partition::iid(len, clients, &mut DetRng::new(seed));
            prop_assert_eq!(p.num_clients(), clients);
            prop_assert_eq!(p.total_assigned(), len);
            let mut all: Vec<usize> = (0..clients)
                .flat_map(|c| p.client_indices(c).to_vec())
                .collect();
            all.sort_unstable();
            prop_assert_eq!(all, (0..len).collect::<Vec<_>>());
            let sizes: Vec<usize> = (0..clients).map(|c| p.client_indices(c).len()).collect();
            let spread = sizes.iter().max().unwrap() - sizes.iter().min().unwrap();
            prop_assert!(spread <= 1);
        }
    }
}
