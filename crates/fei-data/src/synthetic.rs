//! MNIST-shaped synthetic data.
//!
//! The paper's evaluation trains multinomial logistic regression on MNIST
//! (784-dimensional pixels, 10 classes, ~92 % LR accuracy ceiling). This
//! module substitutes a generator with the same interface characteristics:
//!
//! * each class has a fixed "digit-like" prototype image — a handful of
//!   Gaussian intensity blobs on the 28 × 28 grid;
//! * samples are the prototype plus per-pixel Gaussian noise, clipped to the
//!   `[0, 1]` pixel range;
//! * a small label-flip probability caps the achievable test accuracy. With
//!   flip probability `p` (flipping to a uniformly random *other* class) the
//!   Bayes ceiling is `1 - p`, so the default `p = 0.08` pins the ceiling
//!   near the paper's 92 %.
//!
//! Because every MNIST-dependent figure in the paper (Fig. 4–6) only consumes
//! the loss/accuracy-versus-round curves of the LR model, matching the curve
//! ceiling and smoothness is what preserves downstream behaviour.

use fei_sim::DetRng;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;

/// Width and height of the synthetic images (matches MNIST's 28 × 28).
pub const IMAGE_SIDE: usize = 28;
/// Feature dimension (`IMAGE_SIDE`², the paper's 784-entry input).
pub const IMAGE_DIM: usize = IMAGE_SIDE * IMAGE_SIDE;
/// Number of classes (digits 0–9).
pub const NUM_CLASSES: usize = 10;

/// Configuration for [`SyntheticMnist`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticMnistConfig {
    /// Per-pixel Gaussian noise standard deviation added to the prototype.
    pub pixel_noise_std: f64,
    /// Probability that a sample's label is replaced by a uniformly random
    /// *different* class; caps test accuracy near `1 - label_flip_prob`.
    pub label_flip_prob: f64,
    /// Number of Gaussian intensity blobs per class prototype.
    pub blobs_per_class: usize,
    /// Seed controlling prototypes and all sampling.
    pub seed: u64,
}

impl Default for SyntheticMnistConfig {
    fn default() -> Self {
        Self {
            pixel_noise_std: 0.35,
            label_flip_prob: 0.08,
            blobs_per_class: 4,
            seed: 0x5EED_F00D,
        }
    }
}

/// Generator of MNIST-shaped synthetic classification data.
///
/// # Example
///
/// ```
/// use fei_data::{SyntheticMnist, SyntheticMnistConfig};
///
/// let gen = SyntheticMnist::new(SyntheticMnistConfig::default());
/// let train = gen.generate(100, 1);
/// assert_eq!(train.len(), 100);
/// assert_eq!(train.dim(), 784);
/// assert_eq!(train.num_classes(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticMnist {
    config: SyntheticMnistConfig,
    /// `NUM_CLASSES` prototype images, each `IMAGE_DIM` pixels in `[0, 1]`.
    prototypes: Vec<Vec<f64>>,
}

impl SyntheticMnist {
    /// Builds the generator, deriving the class prototypes from the seed.
    ///
    /// # Panics
    ///
    /// Panics if `pixel_noise_std < 0`, `label_flip_prob` is outside
    /// `[0, 1]`, or `blobs_per_class == 0`.
    pub fn new(config: SyntheticMnistConfig) -> Self {
        assert!(
            config.pixel_noise_std >= 0.0,
            "noise std must be non-negative"
        );
        assert!(
            (0.0..=1.0).contains(&config.label_flip_prob),
            "label flip probability must be in [0, 1]"
        );
        assert!(
            config.blobs_per_class > 0,
            "need at least one blob per class"
        );
        let mut proto_rng = DetRng::new(config.seed).fork(0xD161);
        let prototypes = (0..NUM_CLASSES)
            .map(|_| Self::make_prototype(&mut proto_rng, config.blobs_per_class))
            .collect();
        Self { config, prototypes }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &SyntheticMnistConfig {
        &self.config
    }

    /// The noiseless prototype image for `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= NUM_CLASSES`.
    pub fn prototype(&self, class: usize) -> &[f64] {
        &self.prototypes[class]
    }

    /// Generates `n` labelled samples. Different `stream` ids give
    /// independent draws from the same distribution (e.g. stream 0 for
    /// training data, stream 1 for test data).
    pub fn generate(&self, n: usize, stream: u64) -> Dataset {
        let mut rng = DetRng::new(self.config.seed).fork(0x5A17 + stream);
        let mut ds = Dataset::empty(IMAGE_DIM, NUM_CLASSES);
        let mut pixels = vec![0.0f64; IMAGE_DIM];
        for _ in 0..n {
            let true_class = rng.next_below(NUM_CLASSES as u64) as usize;
            let proto = &self.prototypes[true_class];
            for (p, &base) in pixels.iter_mut().zip(proto) {
                *p = (base + rng.gaussian_with(0.0, self.config.pixel_noise_std)).clamp(0.0, 1.0);
            }
            let label = if rng.next_f64() < self.config.label_flip_prob {
                // Uniform among the other classes.
                let shift = 1 + rng.next_below(NUM_CLASSES as u64 - 1) as usize;
                (true_class + shift) % NUM_CLASSES
            } else {
                true_class
            };
            ds.push(&pixels, label);
        }
        ds
    }

    /// Generates the paper's experimental split: 60 000 training and 10 000
    /// test samples — scaled by `scale` (e.g. `scale = 0.01` for a 600/100
    /// smoke split).
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    pub fn generate_paper_split(&self, scale: f64) -> (Dataset, Dataset) {
        assert!(scale > 0.0, "scale must be positive");
        let train = self.generate((60_000.0 * scale).round() as usize, 0);
        let test = self.generate((10_000.0 * scale).round() as usize, 1);
        (train, test)
    }

    fn make_prototype(rng: &mut DetRng, blobs: usize) -> Vec<f64> {
        let mut img = vec![0.0f64; IMAGE_DIM];
        for _ in 0..blobs {
            // Blob centers stay away from the border, like pen strokes.
            let cx = rng.uniform(6.0, (IMAGE_SIDE - 6) as f64);
            let cy = rng.uniform(6.0, (IMAGE_SIDE - 6) as f64);
            let sigma = rng.uniform(1.5, 3.5);
            let amp = rng.uniform(0.6, 1.0);
            for y in 0..IMAGE_SIDE {
                for x in 0..IMAGE_SIDE {
                    let d2 = (x as f64 - cx).powi(2) + (y as f64 - cy).powi(2);
                    img[y * IMAGE_SIDE + x] += amp * (-d2 / (2.0 * sigma * sigma)).exp();
                }
            }
        }
        for p in &mut img {
            *p = p.clamp(0.0, 1.0);
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_gen() -> SyntheticMnist {
        SyntheticMnist::new(SyntheticMnistConfig::default())
    }

    #[test]
    fn shapes_match_mnist() {
        let ds = small_gen().generate(50, 0);
        assert_eq!(ds.len(), 50);
        assert_eq!(ds.dim(), 784);
        assert_eq!(ds.num_classes(), 10);
    }

    #[test]
    fn pixels_stay_in_unit_interval() {
        let ds = small_gen().generate(20, 0);
        for (features, _) in ds.iter() {
            assert!(features.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_gen().generate(30, 0);
        let b = small_gen().generate(30, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn streams_are_independent() {
        let gen = small_gen();
        assert_ne!(gen.generate(30, 0), gen.generate(30, 1));
    }

    #[test]
    fn different_seeds_give_different_prototypes() {
        let a = SyntheticMnist::new(SyntheticMnistConfig {
            seed: 1,
            ..Default::default()
        });
        let b = SyntheticMnist::new(SyntheticMnistConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.prototype(0), b.prototype(0));
    }

    #[test]
    fn prototypes_are_distinct_across_classes() {
        let gen = small_gen();
        for c in 1..NUM_CLASSES {
            let diff: f64 = gen
                .prototype(0)
                .iter()
                .zip(gen.prototype(c))
                .map(|(a, b)| (a - b).abs())
                .sum();
            assert!(diff > 1.0, "classes 0 and {c} are nearly identical");
        }
    }

    #[test]
    fn labels_cover_all_classes() {
        let ds = small_gen().generate(2_000, 0);
        let hist = ds.class_histogram();
        assert!(
            hist.iter().all(|&c| c > 100),
            "unbalanced histogram {hist:?}"
        );
    }

    #[test]
    fn label_flip_rate_is_plausible() {
        // With flip prob 0 every sample's label equals its generating class;
        // we can't observe the true class directly, but flipping changes the
        // dataset, so compare flip=0 vs flip=0.5 labelling on the same stream.
        let base = SyntheticMnist::new(SyntheticMnistConfig {
            label_flip_prob: 0.0,
            ..Default::default()
        });
        let flipped = SyntheticMnist::new(SyntheticMnistConfig {
            label_flip_prob: 0.5,
            ..Default::default()
        });
        let a = base.generate(500, 0);
        let b = flipped.generate(500, 0);
        // The flipped generator consumes extra RNG draws, so datasets diverge;
        // just verify both are valid and differently labelled somewhere.
        assert_ne!(a.labels(), b.labels());
    }

    #[test]
    fn paper_split_sizes() {
        let (train, test) = small_gen().generate_paper_split(0.01);
        assert_eq!(train.len(), 600);
        assert_eq!(test.len(), 100);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn paper_split_rejects_zero_scale() {
        let _ = small_gen().generate_paper_split(0.0);
    }

    #[test]
    #[should_panic(expected = "flip probability")]
    fn config_validation() {
        let _ = SyntheticMnist::new(SyntheticMnistConfig {
            label_flip_prob: 1.5,
            ..Default::default()
        });
    }
}
