//! IoT-side data-upload modelling.
//!
//! Step (1) of every global round in the paper is *data collection*: IoT
//! devices upload `n_k` fixed-size samples to their edge server. The energy
//! model (Eq. 4) reduces this to `e_I = rho_k * n_k`; the testbed also needs
//! the byte volume and an arrival schedule to place the upload on the
//! simulated network. NB-IoT's published per-byte transmit energy
//! (7.74 mW·s/byte, quoted in the paper) is the default.

use fei_sim::{DetRng, SimDuration};
use serde::{Deserialize, Serialize};

/// NB-IoT uplink energy per byte, in joules (7.74 mW·s per byte; §IV-A).
pub const NB_IOT_JOULES_PER_BYTE: f64 = 7.74e-3;

/// Byte size of one sample: a 28 × 28 single-byte image plus a label byte.
pub const DEFAULT_SAMPLE_BYTES: usize = 28 * 28 + 1;

/// Description of one round's IoT data upload to a single edge server.
///
/// # Example
///
/// ```
/// use fei_data::IotStream;
///
/// let stream = IotStream::new(3_000, 785, 10);
/// assert_eq!(stream.total_bytes(), 3_000 * 785);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IotStream {
    samples_per_round: usize,
    bytes_per_sample: usize,
    device_count: usize,
}

impl IotStream {
    /// Creates a stream of `samples_per_round` samples of
    /// `bytes_per_sample` bytes, produced collectively by `device_count`
    /// IoT devices.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sample == 0` or `device_count == 0`.
    pub fn new(samples_per_round: usize, bytes_per_sample: usize, device_count: usize) -> Self {
        assert!(bytes_per_sample > 0, "samples must have non-zero size");
        assert!(device_count > 0, "need at least one IoT device");
        Self {
            samples_per_round,
            bytes_per_sample,
            device_count,
        }
    }

    /// Stream with the paper's defaults: 785-byte samples from 10 devices.
    pub fn with_defaults(samples_per_round: usize) -> Self {
        Self::new(samples_per_round, DEFAULT_SAMPLE_BYTES, 10)
    }

    /// Samples uploaded per round (`n_k`).
    pub fn samples_per_round(&self) -> usize {
        self.samples_per_round
    }

    /// Size of each sample in bytes.
    pub fn bytes_per_sample(&self) -> usize {
        self.bytes_per_sample
    }

    /// Number of IoT devices feeding this edge server.
    pub fn device_count(&self) -> usize {
        self.device_count
    }

    /// Total bytes uploaded per round.
    pub fn total_bytes(&self) -> usize {
        self.samples_per_round * self.bytes_per_sample
    }

    /// Per-sample upload energy `rho` in joules given a per-byte cost.
    pub fn rho_joules(&self, joules_per_byte: f64) -> f64 {
        self.bytes_per_sample as f64 * joules_per_byte
    }

    /// Round upload energy `e_I = rho * n_k` (Eq. 4) in joules.
    pub fn upload_energy_joules(&self, joules_per_byte: f64) -> f64 {
        self.rho_joules(joules_per_byte) * self.samples_per_round as f64
    }

    /// Draws per-sample arrival offsets for one collection window.
    ///
    /// Devices report asynchronously; we model sample arrivals as uniform
    /// over the window, sorted — the standard order-statistics view of a
    /// Poisson process conditioned on its count.
    pub fn arrival_offsets(&self, window: SimDuration, rng: &mut DetRng) -> Vec<SimDuration> {
        let mut offsets: Vec<SimDuration> = (0..self.samples_per_round)
            .map(|_| window.mul_f64(rng.next_f64()))
            .collect();
        offsets.sort_unstable();
        offsets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting() {
        let s = IotStream::new(100, 785, 4);
        assert_eq!(s.samples_per_round(), 100);
        assert_eq!(s.bytes_per_sample(), 785);
        assert_eq!(s.device_count(), 4);
        assert_eq!(s.total_bytes(), 78_500);
    }

    #[test]
    fn defaults_match_paper_sample_shape() {
        let s = IotStream::with_defaults(3_000);
        assert_eq!(s.bytes_per_sample(), 785);
        assert_eq!(s.total_bytes(), 3_000 * 785);
    }

    #[test]
    fn energy_follows_eq4() {
        let s = IotStream::new(10, 100, 1);
        let rho = s.rho_joules(NB_IOT_JOULES_PER_BYTE);
        assert!((rho - 0.774).abs() < 1e-12);
        assert!((s.upload_energy_joules(NB_IOT_JOULES_PER_BYTE) - 7.74).abs() < 1e-12);
    }

    #[test]
    fn energy_scales_linearly_in_samples() {
        let a = IotStream::new(10, 50, 1).upload_energy_joules(1e-3);
        let b = IotStream::new(20, 50, 1).upload_energy_joules(1e-3);
        assert!((b - 2.0 * a).abs() < 1e-12);
    }

    #[test]
    fn zero_samples_zero_energy() {
        let s = IotStream::new(0, 100, 1);
        assert_eq!(s.total_bytes(), 0);
        assert_eq!(s.upload_energy_joules(NB_IOT_JOULES_PER_BYTE), 0.0);
    }

    #[test]
    fn arrivals_are_sorted_and_within_window() {
        let s = IotStream::new(200, 100, 5);
        let window = SimDuration::from_secs(2);
        let mut rng = DetRng::new(7);
        let arr = s.arrival_offsets(window, &mut rng);
        assert_eq!(arr.len(), 200);
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.iter().all(|&a| a <= window));
    }

    #[test]
    #[should_panic(expected = "non-zero size")]
    fn rejects_zero_byte_samples() {
        let _ = IotStream::new(1, 0, 1);
    }

    #[test]
    #[should_panic(expected = "IoT device")]
    fn rejects_zero_devices() {
        let _ = IotStream::new(1, 1, 0);
    }
}
