//! Binary persistence for datasets.
//!
//! The workspace deliberately carries no serde *format* crate, so datasets
//! get a small self-describing binary layout (little-endian, checksummed via
//! a length-and-sum trailer). Used to cache generated synthetic corpora
//! between experiment runs and to ship datasets to other tools.
//!
//! Layout:
//!
//! ```text
//! magic   "FEID" (4 bytes)
//! version u16
//! dim, num_classes, len   u32 each
//! features len*dim f64 (LE)
//! labels   len u32 (LE)
//! checksum u64: wrapping byte sum of everything before it
//! ```

use std::error::Error;
use std::fmt;

use crate::dataset::Dataset;

const MAGIC: &[u8; 4] = b"FEID";
const VERSION: u16 = 1;

/// Errors from [`Dataset::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Buffer too short for the declared contents.
    Truncated,
    /// The magic prefix or version did not match.
    BadHeader,
    /// The checksum did not match the payload.
    ChecksumMismatch,
    /// Header fields describe an invalid dataset (zero dim, label overflow).
    Malformed {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "dataset buffer is truncated"),
            PersistError::BadHeader => write!(f, "bad dataset magic or version"),
            PersistError::ChecksumMismatch => write!(f, "dataset checksum mismatch"),
            PersistError::Malformed { detail } => write!(f, "malformed dataset: {detail}"),
        }
    }
}

impl Error for PersistError {}

fn checksum(bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(0u64, |acc, &b| acc.wrapping_add(b as u64))
}

impl Dataset {
    /// Serializes the dataset to the self-describing binary layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(18 + self.len() * (self.dim() * 8 + 4) + 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.dim() as u32).to_le_bytes());
        out.extend_from_slice(&(self.num_classes() as u32).to_le_bytes());
        out.extend_from_slice(&(self.len() as u32).to_le_bytes());
        for i in 0..self.len() {
            for &x in self.sample(i) {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        for &l in self.labels() {
            out.extend_from_slice(&(l as u32).to_le_bytes());
        }
        let sum = checksum(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Deserializes a dataset produced by [`Dataset::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`PersistError`] on truncation, header mismatch, checksum
    /// failure, or inconsistent header fields.
    pub fn from_bytes(bytes: &[u8]) -> Result<Dataset, PersistError> {
        if bytes.len() < 18 + 8 {
            return Err(PersistError::Truncated);
        }
        if &bytes[0..4] != MAGIC {
            return Err(PersistError::BadHeader);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != VERSION {
            return Err(PersistError::BadHeader);
        }
        let read_u32 = |o: usize| {
            u32::from_le_bytes(
                bytes[o..o + 4]
                    .try_into()
                    .expect("invariant: a 4-byte slice converts to [u8; 4]"),
            )
        };
        let dim = read_u32(6) as usize;
        let num_classes = read_u32(10) as usize;
        let len = read_u32(14) as usize;
        if dim == 0 || num_classes == 0 {
            return Err(PersistError::Malformed {
                detail: "zero dim or classes".into(),
            });
        }

        let features_bytes = len
            .checked_mul(dim)
            .and_then(|n| n.checked_mul(8))
            .ok_or(PersistError::Truncated)?;
        let total = 18 + features_bytes + len * 4 + 8;
        if bytes.len() != total {
            return Err(PersistError::Truncated);
        }

        let declared = u64::from_le_bytes(
            bytes[total - 8..]
                .try_into()
                .expect("invariant: bytes.len() == total was checked above"),
        );
        if declared != checksum(&bytes[..total - 8]) {
            return Err(PersistError::ChecksumMismatch);
        }

        let mut features = Vec::with_capacity(len * dim);
        let mut offset = 18;
        for _ in 0..len * dim {
            features.push(f64::from_le_bytes(
                bytes[offset..offset + 8]
                    .try_into()
                    .expect("invariant: an 8-byte slice converts to [u8; 8]"),
            ));
            offset += 8;
        }
        let mut labels = Vec::with_capacity(len);
        for _ in 0..len {
            let l = read_u32(offset) as usize;
            if l >= num_classes {
                return Err(PersistError::Malformed {
                    detail: format!("label {l} >= {num_classes} classes"),
                });
            }
            labels.push(l);
            offset += 4;
        }
        Ok(Dataset::from_parts(dim, features, labels, num_classes))
    }
}

#[cfg(test)]
mod tests {
    use crate::synthetic::{SyntheticMnist, SyntheticMnistConfig};

    use super::*;

    fn sample() -> Dataset {
        SyntheticMnist::new(SyntheticMnistConfig::default()).generate(25, 0)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ds = sample();
        let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn round_trip_tiny_dataset() {
        let ds = Dataset::from_parts(1, vec![0.25, -1.5], vec![0, 2], 3);
        assert_eq!(Dataset::from_bytes(&ds.to_bytes()).unwrap(), ds);
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample().to_bytes();
        assert_eq!(
            Dataset::from_bytes(&bytes[..10]),
            Err(PersistError::Truncated)
        );
        assert_eq!(
            Dataset::from_bytes(&bytes[..bytes.len() - 1]),
            Err(PersistError::Truncated)
        );
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert_eq!(
            Dataset::from_bytes(&bytes),
            Err(PersistError::ChecksumMismatch)
        );
    }

    #[test]
    fn bad_magic_and_version_detected() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert_eq!(Dataset::from_bytes(&bytes), Err(PersistError::BadHeader));
        let mut bytes = sample().to_bytes();
        bytes[4] = 99;
        assert_eq!(Dataset::from_bytes(&bytes), Err(PersistError::BadHeader));
    }

    #[test]
    fn bad_label_detected() {
        // Hand-craft: valid container, label out of range. Build a 1-sample
        // dataset then bump its label bytes past num_classes, fixing the
        // checksum.
        let ds = Dataset::from_parts(1, vec![1.0], vec![0], 2);
        let mut bytes = ds.to_bytes();
        let label_offset = 18 + 8;
        bytes[label_offset] = 7; // label 7 >= 2 classes
        let len = bytes.len();
        let sum = super::checksum(&bytes[..len - 8]);
        bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Dataset::from_bytes(&bytes),
            Err(PersistError::Malformed { .. })
        ));
    }

    #[test]
    fn errors_display() {
        assert!(!PersistError::Truncated.to_string().is_empty());
        assert!(PersistError::Malformed { detail: "x".into() }
            .to_string()
            .contains('x'));
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        #[test]
        fn arbitrary_datasets_round_trip(
            dim in 1usize..8,
            classes in 2usize..6,
            rows in proptest::collection::vec(
                (proptest::collection::vec(-1e6f64..1e6, 8), 0usize..6),
                0..16,
            ),
        ) {
            let mut ds = Dataset::empty(dim, classes);
            for (features, label) in rows {
                ds.push(&features[..dim], label % classes);
            }
            let back = Dataset::from_bytes(&ds.to_bytes()).unwrap();
            prop_assert_eq!(ds, back);
        }
    }
}
