//! Framed binary codec for FL messages.
//!
//! The threaded FedAvg runtime in `fei-fl` ships model parameters between
//! edge servers and the coordinator as byte frames — the same serialization
//! work a real deployment would do, so its cost shows up in benches. A frame
//! is:
//!
//! ```text
//! magic    (2 bytes, 0xFE 0x1A)
//! type     (1 byte, caller-defined tag)
//! length   (4 bytes, big-endian payload length)
//! payload  (length bytes)
//! checksum (4 bytes, big-endian; CRC32/IEEE over type ‖ length ‖ payload)
//! ```
//!
//! The checksum covers the type and length fields as well as the payload, so
//! a single corrupted byte anywhere after the magic is detected. Earlier
//! revisions used an additive byte sum over the payload alone; that sum is
//! blind to reordered bytes (exactly what the corrupt-upload fault injector
//! produces), so v2 frames reject legacy-checksum frames outright — see the
//! `legacy_byte_sum_frames_are_rejected` unit test.
//!
//! Model-parameter *payloads* carried inside `MSG_*` frames use the wire
//! format v2 of [`crate::wire`]: a 7-byte versioned payload header (version,
//! encoding tag, flags, weight count) followed by the encoded weights.

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Frame magic bytes.
const MAGIC: [u8; 2] = [0xFE, 0x1A];
/// Fixed overhead: magic + type + length + checksum.
pub const FRAME_OVERHEAD: usize = 2 + 1 + 4 + 4;

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// generated at compile time so the codec stays dependency-free.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut n: u32 = 0;
    while n < 256 {
        let mut crc = n;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[n as usize] = crc;
        n += 1;
    }
    table
};

/// Converts a payload length to the wire's big-endian `u32` length field.
///
/// Frames carry 32-bit lengths; a payload that does not fit is a
/// programming error upstream (model payloads are megabytes, not
/// gigabytes), and a truncated length field would desynchronize the
/// stream for every later frame — so the conversion asserts the bound
/// instead of wrapping.
pub fn len_u32(len: usize) -> u32 {
    u32::try_from(len).expect("invariant: wire payload lengths fit the u32 length field")
}

/// Streaming CRC32/IEEE over multiple byte regions.
#[derive(Debug, Clone, Copy)]
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Self(0xFFFF_FFFF)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        for &b in bytes {
            crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// A decoded frame: a type tag and the payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Caller-defined message type tag.
    pub msg_type: u8,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Errors from [`decode_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than a complete frame.
    Truncated {
        /// Bytes needed for the shortest complete interpretation.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The magic prefix did not match.
    BadMagic,
    /// The checksum did not match the payload.
    ChecksumMismatch,
    /// A wire-v2 payload declared a version this codec does not speak.
    UnsupportedVersion {
        /// The version byte found.
        got: u8,
    },
    /// A wire-v2 payload carried an unassigned encoding tag.
    UnknownEncoding {
        /// The encoding tag found.
        tag: u8,
    },
    /// A wire-v2 payload set flag bits this codec does not define.
    BadFlags {
        /// The flags byte found.
        flags: u8,
    },
    /// A delta-encoded payload arrived without a matching global base.
    DeltaBaseMismatch {
        /// Weight count declared by the payload.
        count: usize,
        /// Length of the base the decoder had, if any.
        base_len: Option<usize>,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(f, "truncated frame: need {needed} bytes, have {available}")
            }
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
            CodecError::UnsupportedVersion { got } => {
                write!(f, "unsupported wire payload version {got}")
            }
            CodecError::UnknownEncoding { tag } => {
                write!(f, "unknown wire encoding tag {tag}")
            }
            CodecError::BadFlags { flags } => {
                write!(f, "undefined wire flag bits 0b{flags:08b}")
            }
            CodecError::DeltaBaseMismatch { count, base_len } => match base_len {
                Some(len) => write!(
                    f,
                    "delta payload of {count} weights against a {len}-weight base"
                ),
                None => write!(f, "delta payload of {count} weights without a base"),
            },
        }
    }
}

impl Error for CodecError {}

/// Frame checksum: CRC32 over the type byte, the big-endian length field,
/// and the payload. Covering the header fields means a corrupted type or
/// length byte fails the checksum instead of silently re-routing or
/// re-sizing the frame.
fn checksum(msg_type: u8, payload: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(&[msg_type]);
    crc.update(&len_u32(payload.len()).to_be_bytes());
    crc.update(payload);
    crc.finish()
}

/// Encodes a frame.
///
/// # Example
///
/// ```
/// use fei_net::{encode_frame, decode_frame};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let wire = encode_frame(7, b"hello");
/// let (frame, consumed) = decode_frame(&wire)?;
/// assert_eq!(frame.msg_type, 7);
/// assert_eq!(&frame.payload[..], b"hello");
/// assert_eq!(consumed, wire.len());
/// # Ok(())
/// # }
/// ```
pub fn encode_frame(msg_type: u8, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(FRAME_OVERHEAD + payload.len());
    buf.put_slice(&MAGIC);
    buf.put_u8(msg_type);
    buf.put_u32(len_u32(payload.len()));
    buf.put_slice(payload);
    buf.put_u32(checksum(msg_type, payload));
    buf.freeze()
}

/// Encodes a frame by appending to a caller-owned buffer — the zero-copy
/// twin of [`encode_frame`]. A reused `out` (cleared by the caller) performs
/// no heap allocation once its capacity covers the frame.
pub fn encode_frame_into(msg_type: u8, payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(msg_type);
    out.extend_from_slice(&len_u32(payload.len()).to_be_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum(msg_type, payload).to_be_bytes());
}

/// Decodes one frame from the start of `bytes`, returning the frame and the
/// number of bytes consumed.
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] when `bytes` does not yet hold a whole
/// frame (streaming callers should read more and retry),
/// [`CodecError::BadMagic`] on a corrupt prefix, and
/// [`CodecError::ChecksumMismatch`] on payload corruption.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), CodecError> {
    if bytes.len() < 7 {
        return Err(CodecError::Truncated {
            needed: FRAME_OVERHEAD,
            available: bytes.len(),
        });
    }
    if bytes[0..2] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let msg_type = bytes[2];
    let mut len_bytes = &bytes[3..7];
    let len = len_bytes.get_u32() as usize;
    let total = FRAME_OVERHEAD + len;
    if bytes.len() < total {
        return Err(CodecError::Truncated {
            needed: total,
            available: bytes.len(),
        });
    }
    let payload = &bytes[7..7 + len];
    let mut csum_bytes = &bytes[7 + len..total];
    let declared = csum_bytes.get_u32();
    if declared != checksum(msg_type, payload) {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok((
        Frame {
            msg_type,
            payload: Bytes::copy_from_slice(payload),
        },
        total,
    ))
}

/// Serializes a slice of `f64` (model parameters) to little-endian bytes.
pub fn encode_f64s(values: &[f64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(values.len() * 8);
    for &v in values {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Serializes `f64`s by appending to a caller-owned buffer — the zero-copy
/// twin of [`encode_f64s`]. No heap allocation once `out` has capacity.
pub fn encode_f64s_into(values: &[f64], out: &mut Vec<u8>) {
    out.reserve(values.len() * 8);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Deserializes little-endian `f64` bytes into a caller-owned buffer — the
/// zero-copy twin of [`decode_f64s`]. `out` is cleared first.
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] if the length is not a multiple of 8.
pub fn decode_f64s_into(bytes: &[u8], out: &mut Vec<f64>) -> Result<(), CodecError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(CodecError::Truncated {
            needed: bytes.len().div_ceil(8) * 8,
            available: bytes.len(),
        });
    }
    out.clear();
    out.reserve(bytes.len() / 8);
    for chunk in bytes.chunks_exact(8) {
        let mut le = [0u8; 8];
        le.copy_from_slice(chunk);
        out.push(f64::from_le_bytes(le));
    }
    Ok(())
}

/// Deserializes little-endian `f64` bytes produced by [`encode_f64s`].
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] if the length is not a multiple of 8.
pub fn decode_f64s(bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(CodecError::Truncated {
            needed: bytes.len().div_ceil(8) * 8,
            available: bytes.len(),
        });
    }
    let mut cursor = bytes;
    let mut out = Vec::with_capacity(bytes.len() / 8);
    while cursor.has_remaining() {
        out.push(cursor.get_f64_le());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_empty_payload() {
        let wire = encode_frame(0, b"");
        let (frame, consumed) = decode_frame(&wire).unwrap();
        assert_eq!(frame.msg_type, 0);
        assert!(frame.payload.is_empty());
        assert_eq!(consumed, FRAME_OVERHEAD);
    }

    #[test]
    fn round_trip_with_trailing_garbage() {
        let mut wire = encode_frame(3, b"abc").to_vec();
        wire.extend_from_slice(b"garbage");
        let (frame, consumed) = decode_frame(&wire).unwrap();
        assert_eq!(&frame.payload[..], b"abc");
        assert_eq!(consumed, FRAME_OVERHEAD + 3);
    }

    #[test]
    fn truncated_header_reports_needed() {
        let err = decode_frame(&[0xFE]).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { available: 1, .. }));
    }

    #[test]
    fn truncated_payload_reports_needed() {
        let wire = encode_frame(1, b"hello world");
        let err = decode_frame(&wire[..wire.len() - 3]).unwrap_err();
        match err {
            CodecError::Truncated { needed, available } => {
                assert_eq!(needed, wire.len());
                assert_eq!(available, wire.len() - 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut wire = encode_frame(1, b"x").to_vec();
        wire[0] = 0x00;
        assert_eq!(decode_frame(&wire).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn corrupted_payload_detected() {
        let mut wire = encode_frame(1, b"xyz").to_vec();
        wire[8] ^= 0xFF;
        assert_eq!(
            decode_frame(&wire).unwrap_err(),
            CodecError::ChecksumMismatch
        );
    }

    #[test]
    fn f64_round_trip() {
        let values = vec![0.0, -1.5, std::f64::consts::PI, f64::MAX, f64::MIN_POSITIVE];
        let bytes = encode_f64s(&values);
        assert_eq!(decode_f64s(&bytes).unwrap(), values);
    }

    #[test]
    fn f64_rejects_ragged_length() {
        assert!(matches!(
            decode_f64s(&[0u8; 9]),
            Err(CodecError::Truncated {
                needed: 16,
                available: 9
            })
        ));
    }

    /// Legacy-checksum test vectors: frames produced by the v1 codec, whose
    /// trailing word was an additive byte sum of the payload alone. The
    /// additive sum cannot detect reordered bytes (the corrupt-upload fault
    /// injector produces exactly that), so the CRC32 codec must reject
    /// these frames rather than accept them.
    const LEGACY_HELLO: [u8; 16] = [
        0xFE, 0x1A, // magic
        0x07, // type 7
        0x00, 0x00, 0x00, 0x05, // length 5
        b'h', b'e', b'l', b'l', b'o', // payload
        0x00, 0x00, 0x02, 0x14, // additive byte sum = 532
    ];
    const LEGACY_EMPTY: [u8; 11] = [
        0xFE, 0x1A, // magic
        0x00, // type 0
        0x00, 0x00, 0x00, 0x00, // length 0
        0x00, 0x00, 0x00, 0x00, // additive byte sum of nothing = 0
    ];

    #[test]
    fn legacy_byte_sum_frames_are_rejected() {
        assert_eq!(
            decode_frame(&LEGACY_HELLO).unwrap_err(),
            CodecError::ChecksumMismatch
        );
        assert_eq!(
            decode_frame(&LEGACY_EMPTY).unwrap_err(),
            CodecError::ChecksumMismatch
        );
        // Sanity: the same logical frames re-encoded by the CRC32 codec
        // decode fine and differ from the legacy bytes only in the checksum.
        let hello = encode_frame(7, b"hello");
        assert_eq!(&hello[..12], &LEGACY_HELLO[..12]);
        assert!(decode_frame(&hello).is_ok());
    }

    #[test]
    fn crc_detects_reordered_payload_bytes() {
        // "ab" and "ba" have equal byte sums — the failure mode that
        // motivated CRC32. Swapping bytes must now fail the checksum.
        let mut wire = encode_frame(1, b"ab").to_vec();
        wire.swap(7, 8);
        assert_eq!(
            decode_frame(&wire).unwrap_err(),
            CodecError::ChecksumMismatch
        );
    }

    #[test]
    fn corrupted_type_or_length_detected() {
        // The CRC covers type and length: flipping either must fail.
        let mut wire = encode_frame(1, b"xyz").to_vec();
        wire[2] ^= 0x01; // type byte
        assert_eq!(
            decode_frame(&wire).unwrap_err(),
            CodecError::ChecksumMismatch
        );
        let mut wire = encode_frame(1, b"xyz").to_vec();
        wire[6] -= 1; // length 3 -> 2: CRC input changes, mismatch
        assert_eq!(
            decode_frame(&wire).unwrap_err(),
            CodecError::ChecksumMismatch
        );
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // The canonical IEEE check value: CRC32("123456789") = 0xCBF43926.
        let mut crc = Crc32::new();
        crc.update(b"123456789");
        assert_eq!(crc.finish(), 0xCBF4_3926);
    }

    #[test]
    fn encode_frame_into_matches_encode_frame() {
        let mut out = Vec::new();
        encode_frame_into(9, b"payload", &mut out);
        assert_eq!(&out[..], &encode_frame(9, b"payload")[..]);
        // Appends rather than overwrites.
        encode_frame_into(9, b"payload", &mut out);
        assert_eq!(out.len(), 2 * (FRAME_OVERHEAD + 7));
    }

    #[test]
    fn f64s_into_round_trip_without_stealing_capacity() {
        let values = vec![0.25, -3.5, f64::MAX];
        let mut bytes = Vec::new();
        encode_f64s_into(&values, &mut bytes);
        assert_eq!(&bytes[..], &encode_f64s(&values)[..]);
        let mut back = Vec::new();
        decode_f64s_into(&bytes, &mut back).unwrap();
        assert_eq!(back, values);
        assert!(matches!(
            decode_f64s_into(&bytes[..5], &mut back),
            Err(CodecError::Truncated { .. })
        ));
    }

    #[test]
    fn errors_display() {
        assert!(!CodecError::BadMagic.to_string().is_empty());
        assert!(CodecError::Truncated {
            needed: 5,
            available: 2
        }
        .to_string()
        .contains('5'));
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        #[test]
        fn any_payload_round_trips(
            msg_type in any::<u8>(),
            payload in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let wire = encode_frame(msg_type, &payload);
            let (frame, consumed) = decode_frame(&wire).unwrap();
            prop_assert_eq!(frame.msg_type, msg_type);
            prop_assert_eq!(&frame.payload[..], &payload[..]);
            prop_assert_eq!(consumed, wire.len());
        }

        #[test]
        fn single_bit_flip_in_payload_is_detected(
            payload in proptest::collection::vec(any::<u8>(), 1..256),
            byte_sel in any::<u16>(),
            bit in 0usize..8,
        ) {
            let mut wire = encode_frame(5, &payload).to_vec();
            let idx = 7 + byte_sel as usize % payload.len();
            wire[idx] ^= 1 << bit;
            prop_assert_eq!(decode_frame(&wire).unwrap_err(), CodecError::ChecksumMismatch);
        }

        #[test]
        fn any_f64_slice_round_trips(values in proptest::collection::vec(any::<f64>(), 0..128)) {
            let bytes = encode_f64s(&values);
            let back = decode_f64s(&bytes).unwrap();
            prop_assert_eq!(back.len(), values.len());
            for (a, b) in values.iter().zip(&back) {
                prop_assert!(a.to_bits() == b.to_bits());
            }
        }
    }
}
