//! Framed binary codec for FL messages.
//!
//! The threaded FedAvg runtime in `fei-fl` ships model parameters between
//! edge servers and the coordinator as byte frames — the same serialization
//! work a real deployment would do, so its cost shows up in benches. A frame
//! is:
//!
//! ```text
//! magic  (2 bytes, 0xFE 0x1A)
//! type   (1 byte, caller-defined tag)
//! length (4 bytes, big-endian payload length)
//! payload（length bytes)
//! checksum (4 bytes, big-endian; byte sum of payload)
//! ```

use std::error::Error;
use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Frame magic bytes.
const MAGIC: [u8; 2] = [0xFE, 0x1A];
/// Fixed overhead: magic + type + length + checksum.
pub const FRAME_OVERHEAD: usize = 2 + 1 + 4 + 4;

/// A decoded frame: a type tag and the payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Caller-defined message type tag.
    pub msg_type: u8,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Errors from [`decode_frame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than a complete frame.
    Truncated {
        /// Bytes needed for the shortest complete interpretation.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// The magic prefix did not match.
    BadMagic,
    /// The checksum did not match the payload.
    ChecksumMismatch,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, available } => {
                write!(f, "truncated frame: need {needed} bytes, have {available}")
            }
            CodecError::BadMagic => write!(f, "bad frame magic"),
            CodecError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
        }
    }
}

impl Error for CodecError {}

fn checksum(payload: &[u8]) -> u32 {
    payload
        .iter()
        .fold(0u32, |acc, &b| acc.wrapping_add(b as u32))
}

/// Encodes a frame.
///
/// # Example
///
/// ```
/// use fei_net::{encode_frame, decode_frame};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let wire = encode_frame(7, b"hello");
/// let (frame, consumed) = decode_frame(&wire)?;
/// assert_eq!(frame.msg_type, 7);
/// assert_eq!(&frame.payload[..], b"hello");
/// assert_eq!(consumed, wire.len());
/// # Ok(())
/// # }
/// ```
pub fn encode_frame(msg_type: u8, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(FRAME_OVERHEAD + payload.len());
    buf.put_slice(&MAGIC);
    buf.put_u8(msg_type);
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    buf.put_u32(checksum(payload));
    buf.freeze()
}

/// Decodes one frame from the start of `bytes`, returning the frame and the
/// number of bytes consumed.
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] when `bytes` does not yet hold a whole
/// frame (streaming callers should read more and retry),
/// [`CodecError::BadMagic`] on a corrupt prefix, and
/// [`CodecError::ChecksumMismatch`] on payload corruption.
pub fn decode_frame(bytes: &[u8]) -> Result<(Frame, usize), CodecError> {
    if bytes.len() < 7 {
        return Err(CodecError::Truncated {
            needed: FRAME_OVERHEAD,
            available: bytes.len(),
        });
    }
    if bytes[0..2] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let msg_type = bytes[2];
    let mut len_bytes = &bytes[3..7];
    let len = len_bytes.get_u32() as usize;
    let total = FRAME_OVERHEAD + len;
    if bytes.len() < total {
        return Err(CodecError::Truncated {
            needed: total,
            available: bytes.len(),
        });
    }
    let payload = &bytes[7..7 + len];
    let mut csum_bytes = &bytes[7 + len..total];
    let declared = csum_bytes.get_u32();
    if declared != checksum(payload) {
        return Err(CodecError::ChecksumMismatch);
    }
    Ok((
        Frame {
            msg_type,
            payload: Bytes::copy_from_slice(payload),
        },
        total,
    ))
}

/// Serializes a slice of `f64` (model parameters) to little-endian bytes.
pub fn encode_f64s(values: &[f64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(values.len() * 8);
    for &v in values {
        buf.put_f64_le(v);
    }
    buf.freeze()
}

/// Deserializes little-endian `f64` bytes produced by [`encode_f64s`].
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] if the length is not a multiple of 8.
pub fn decode_f64s(bytes: &[u8]) -> Result<Vec<f64>, CodecError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(CodecError::Truncated {
            needed: bytes.len().div_ceil(8) * 8,
            available: bytes.len(),
        });
    }
    let mut cursor = bytes;
    let mut out = Vec::with_capacity(bytes.len() / 8);
    while cursor.has_remaining() {
        out.push(cursor.get_f64_le());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_empty_payload() {
        let wire = encode_frame(0, b"");
        let (frame, consumed) = decode_frame(&wire).unwrap();
        assert_eq!(frame.msg_type, 0);
        assert!(frame.payload.is_empty());
        assert_eq!(consumed, FRAME_OVERHEAD);
    }

    #[test]
    fn round_trip_with_trailing_garbage() {
        let mut wire = encode_frame(3, b"abc").to_vec();
        wire.extend_from_slice(b"garbage");
        let (frame, consumed) = decode_frame(&wire).unwrap();
        assert_eq!(&frame.payload[..], b"abc");
        assert_eq!(consumed, FRAME_OVERHEAD + 3);
    }

    #[test]
    fn truncated_header_reports_needed() {
        let err = decode_frame(&[0xFE]).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { available: 1, .. }));
    }

    #[test]
    fn truncated_payload_reports_needed() {
        let wire = encode_frame(1, b"hello world");
        let err = decode_frame(&wire[..wire.len() - 3]).unwrap_err();
        match err {
            CodecError::Truncated { needed, available } => {
                assert_eq!(needed, wire.len());
                assert_eq!(available, wire.len() - 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_magic_detected() {
        let mut wire = encode_frame(1, b"x").to_vec();
        wire[0] = 0x00;
        assert_eq!(decode_frame(&wire).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn corrupted_payload_detected() {
        let mut wire = encode_frame(1, b"xyz").to_vec();
        wire[8] ^= 0xFF;
        assert_eq!(
            decode_frame(&wire).unwrap_err(),
            CodecError::ChecksumMismatch
        );
    }

    #[test]
    fn f64_round_trip() {
        let values = vec![0.0, -1.5, std::f64::consts::PI, f64::MAX, f64::MIN_POSITIVE];
        let bytes = encode_f64s(&values);
        assert_eq!(decode_f64s(&bytes).unwrap(), values);
    }

    #[test]
    fn f64_rejects_ragged_length() {
        assert!(matches!(
            decode_f64s(&[0u8; 9]),
            Err(CodecError::Truncated {
                needed: 16,
                available: 9
            })
        ));
    }

    #[test]
    fn errors_display() {
        assert!(!CodecError::BadMagic.to_string().is_empty());
        assert!(CodecError::Truncated {
            needed: 5,
            available: 2
        }
        .to_string()
        .contains('5'));
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        #[test]
        fn any_payload_round_trips(
            msg_type in any::<u8>(),
            payload in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let wire = encode_frame(msg_type, &payload);
            let (frame, consumed) = decode_frame(&wire).unwrap();
            prop_assert_eq!(frame.msg_type, msg_type);
            prop_assert_eq!(&frame.payload[..], &payload[..]);
            prop_assert_eq!(consumed, wire.len());
        }

        #[test]
        fn single_bit_flip_in_payload_is_detected(
            payload in proptest::collection::vec(any::<u8>(), 1..256),
            byte_sel in any::<u16>(),
            bit in 0usize..8,
        ) {
            let mut wire = encode_frame(5, &payload).to_vec();
            let idx = 7 + byte_sel as usize % payload.len();
            wire[idx] ^= 1 << bit;
            prop_assert_eq!(decode_frame(&wire).unwrap_err(), CodecError::ChecksumMismatch);
        }

        #[test]
        fn any_f64_slice_round_trips(values in proptest::collection::vec(any::<f64>(), 0..128)) {
            let bytes = encode_f64s(&values);
            let back = decode_f64s(&bytes).unwrap();
            prop_assert_eq!(back.len(), values.len());
            for (a, b) in values.iter().zip(&back) {
                prop_assert!(a.to_bits() == b.to_bits());
            }
        }
    }
}
