//! Wire format v2: versioned, compressed model-parameter payloads.
//!
//! PR 4 made local training fast enough that round time and round energy are
//! dominated by model transport, and the paper's upload energy `e_U` (the
//! `B1 = ρ·n + e_U` term of Eq. 12) scales with exactly the bytes this
//! module emits. A v2 payload is:
//!
//! ```text
//! version  (1 byte, = 2)
//! encoding (1 byte: 0 = F64, 1 = F32, 2 = Q8)
//! flags    (1 byte: bit 0 = delta-vs-global)
//! count    (4 bytes, big-endian weight count)
//! body     (encoding-dependent, see below)
//! ```
//!
//! Bodies:
//!
//! * [`Encoding::F64`] — 8 bytes per weight, little-endian. Bit-exact: the
//!   default tier reproduces the uncompressed path bit-for-bit (pinned by
//!   `tests/golden/headline_numerics.json`).
//! * [`Encoding::F32`] — 4 bytes per weight, little-endian `f32` casts.
//! * [`Encoding::Q8`] — per 256-weight block, an `f32` scale and `f32`
//!   offset followed by one affine-quantized 8-bit code per weight
//!   (`w ≈ offset + scale · q`). Quantization rounds half-to-even, so the
//!   tier is deterministic across hosts.
//!
//! With the delta flag set, the encoded vector is `w_local − w_global`
//! against a caller-supplied base; decode adds the base back. Small-magnitude
//! deltas occupy a far narrower dynamic range than absolute weights, so the
//! lossy tiers quantize them with much less error.
//!
//! All encode/decode goes through a caller-owned [`WireScratch`] that counts
//! its own buffer-growth events (the [`fei_ml::GradScratch`] discipline):
//! once warm, the hot path performs **zero heap allocations**, the property
//! `BENCH_compression.json` records.
//!
//! [`fei_ml::GradScratch`]: https://docs.rs/fei-ml

use serde::{Deserialize, Serialize};

use crate::codec::CodecError;

/// Current payload format version.
pub const WIRE_VERSION: u8 = 2;

/// Bytes of the fixed payload header (version, encoding, flags, count).
pub const WIRE_HEADER: usize = 1 + 1 + 1 + 4;

/// Weights per Q8 quantization block.
pub const Q8_BLOCK: usize = 256;

/// Per-block Q8 overhead: an `f32` scale plus an `f32` offset.
const Q8_BLOCK_OVERHEAD: usize = 4 + 4;

/// Delta-vs-global flag bit.
const FLAG_DELTA: u8 = 0b0000_0001;

/// How model weights are encoded on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Encoding {
    /// Lossless 8-byte little-endian `f64`s — byte-identical semantics to
    /// the v1 path, and the default.
    #[default]
    F64,
    /// 4-byte little-endian `f32` casts (one rounding per weight).
    F32,
    /// Per-block affine 8-bit quantization: ~1.03 bytes per weight.
    Q8,
}

impl Encoding {
    /// The 1-byte tag stored in the payload header.
    pub fn tag(self) -> u8 {
        match self {
            Encoding::F64 => 0,
            Encoding::F32 => 1,
            Encoding::Q8 => 2,
        }
    }

    /// Parses a header tag.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnknownEncoding`] for an unassigned tag.
    pub fn from_tag(tag: u8) -> Result<Self, CodecError> {
        match tag {
            0 => Ok(Encoding::F64),
            1 => Ok(Encoding::F32),
            2 => Ok(Encoding::Q8),
            other => Err(CodecError::UnknownEncoding { tag: other }),
        }
    }

    /// Body bytes for `count` weights under this encoding.
    pub fn body_len(self, count: usize) -> usize {
        match self {
            Encoding::F64 => count * 8,
            Encoding::F32 => count * 4,
            Encoding::Q8 => count + count.div_ceil(Q8_BLOCK) * Q8_BLOCK_OVERHEAD,
        }
    }

    /// Stable lowercase name, for reports and sweep CLIs.
    pub fn name(self) -> &'static str {
        match self {
            Encoding::F64 => "f64",
            Encoding::F32 => "f32",
            Encoding::Q8 => "q8",
        }
    }
}

/// Transport configuration: which encoding ships model updates, and whether
/// they are encoded as deltas against the round's global model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct WireConfig {
    /// Weight encoding tier.
    #[serde(default)]
    pub encoding: Encoding,
    /// Encode `w_local − w_global` instead of absolute weights. Requires a
    /// shared base vector on both sides (the coordinator's current global
    /// model, which every worker holds after the lossless downlink).
    #[serde(default)]
    pub delta: bool,
}

impl WireConfig {
    /// The lossless default: absolute `f64` weights.
    pub fn lossless() -> Self {
        Self::default()
    }

    /// Total payload bytes (header + body) for `count` weights.
    pub fn payload_len(self, count: usize) -> usize {
        WIRE_HEADER + self.encoding.body_len(count)
    }

    /// Whether a decode of this configuration reproduces the encoder's input
    /// bit-for-bit.
    pub fn is_lossless(self) -> bool {
        self.encoding == Encoding::F64 && !self.delta
    }

    /// Stable name like `q8+delta`, for reports and sweep CLIs.
    pub fn name(self) -> String {
        if self.delta {
            format!("{}+delta", self.encoding.name())
        } else {
            self.encoding.name().to_string()
        }
    }
}

/// Reusable encode/decode workspace, self-counted like `GradScratch`: every
/// buffer-growth event increments [`WireScratch::allocations`], and in
/// steady state (same model size round after round) the counter must stop
/// moving — the zero-allocation property the compression bench records.
#[derive(Debug, Clone, Default)]
pub struct WireScratch {
    /// Staging buffer for delta computation (`w_local − w_global`) on encode
    /// and for raw decoded values before the base is added back on decode.
    stage: Vec<f64>,
    /// Buffer-growth events since construction.
    allocations: u64,
}

impl WireScratch {
    /// Creates an empty workspace; buffers are sized by the first call.
    pub fn new() -> Self {
        Self::default()
    }

    /// Buffer-growth (heap allocation) events so far, counting both the
    /// internal staging buffer and any growth this scratch performed on
    /// caller-owned output buffers.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Grows `buf` to exactly `need` elements, counting an allocation only
    /// when existing capacity is insufficient.
    fn stage_exact(&mut self, need: usize) {
        if need > self.stage.capacity() {
            self.allocations += 1;
        }
        self.stage.clear();
        self.stage.resize(need, 0.0);
    }

    /// Reserves `extra` bytes on a caller-owned buffer, counting the growth.
    fn reserve_counted(&mut self, out: &mut Vec<u8>, extra: usize) {
        if out.len() + extra > out.capacity() {
            self.allocations += 1;
        }
        out.reserve(extra);
    }

    /// Encodes `params` as a v2 payload appended to `out`, returning the
    /// payload length in bytes. With [`WireConfig::delta`], `global` is the
    /// shared base and must have `params`'s length.
    ///
    /// A reused `out` (cleared by the caller between frames) performs no
    /// heap allocation once capacities are warm.
    ///
    /// # Panics
    ///
    /// Panics when `delta` is set without a base, or the base length
    /// differs — both are in-process wiring bugs, not wire-data conditions.
    pub fn encode_into(
        &mut self,
        config: WireConfig,
        params: &[f64],
        global: Option<&[f64]>,
        out: &mut Vec<u8>,
    ) -> usize {
        let payload_len = config.payload_len(params.len());
        self.reserve_counted(out, payload_len);
        out.push(WIRE_VERSION);
        out.push(config.encoding.tag());
        out.push(if config.delta { FLAG_DELTA } else { 0 });
        out.extend_from_slice(&crate::codec::len_u32(params.len()).to_be_bytes());

        let values: &[f64] = if config.delta {
            let base = global.expect("invariant: delta encoding requires the shared global base");
            assert_eq!(
                base.len(),
                params.len(),
                "delta base length must match the update"
            );
            self.stage_exact(params.len());
            for ((d, &w), &g) in self.stage.iter_mut().zip(params).zip(base) {
                *d = w - g;
            }
            &self.stage
        } else {
            params
        };

        match config.encoding {
            Encoding::F64 => {
                for &v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Encoding::F32 => {
                for &v in values {
                    out.extend_from_slice(&(v as f32).to_le_bytes());
                }
            }
            Encoding::Q8 => {
                for block in values.chunks(Q8_BLOCK) {
                    encode_q8_block(block, out);
                }
            }
        }
        payload_len
    }

    /// Decodes a v2 payload into `out` (cleared first), returning the
    /// [`WireConfig`] the encoder used. `global` supplies the delta base; it
    /// is only consulted when the payload's delta flag is set.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnsupportedVersion`] / [`CodecError::UnknownEncoding`] /
    /// [`CodecError::BadFlags`] for malformed headers,
    /// [`CodecError::Truncated`] when the body is shorter than the declared
    /// count requires, and [`CodecError::DeltaBaseMismatch`] when the delta
    /// flag is set but no base (or a wrong-length base) is available.
    pub fn decode_into(
        &mut self,
        payload: &[u8],
        global: Option<&[f64]>,
        out: &mut Vec<f64>,
    ) -> Result<WireConfig, CodecError> {
        if payload.len() < WIRE_HEADER {
            return Err(CodecError::Truncated {
                needed: WIRE_HEADER,
                available: payload.len(),
            });
        }
        if payload[0] != WIRE_VERSION {
            return Err(CodecError::UnsupportedVersion { got: payload[0] });
        }
        let encoding = Encoding::from_tag(payload[1])?;
        let flags = payload[2];
        if flags & !FLAG_DELTA != 0 {
            return Err(CodecError::BadFlags { flags });
        }
        let delta = flags & FLAG_DELTA != 0;
        let mut count_be = [0u8; 4];
        count_be.copy_from_slice(&payload[3..7]);
        let count = u32::from_be_bytes(count_be) as usize;
        let body = &payload[WIRE_HEADER..];
        let need = encoding.body_len(count);
        if body.len() < need {
            return Err(CodecError::Truncated {
                needed: WIRE_HEADER + need,
                available: payload.len(),
            });
        }
        let base = if delta {
            match global {
                Some(base) if base.len() == count => Some(base),
                _ => {
                    return Err(CodecError::DeltaBaseMismatch {
                        count,
                        base_len: global.map(<[f64]>::len),
                    })
                }
            }
        } else {
            None
        };

        if out.capacity() < count {
            self.allocations += 1;
        }
        out.clear();
        out.reserve(count);
        match encoding {
            Encoding::F64 => {
                for chunk in body[..need].chunks_exact(8) {
                    let mut le = [0u8; 8];
                    le.copy_from_slice(chunk);
                    out.push(f64::from_le_bytes(le));
                }
            }
            Encoding::F32 => {
                for chunk in body[..need].chunks_exact(4) {
                    let mut le = [0u8; 4];
                    le.copy_from_slice(chunk);
                    out.push(f32::from_le_bytes(le) as f64);
                }
            }
            Encoding::Q8 => {
                let mut cursor = &body[..need];
                let mut remaining = count;
                while remaining > 0 {
                    let block_len = remaining.min(Q8_BLOCK);
                    decode_q8_block(&cursor[..Q8_BLOCK_OVERHEAD + block_len], block_len, out);
                    cursor = &cursor[Q8_BLOCK_OVERHEAD + block_len..];
                    remaining -= block_len;
                }
            }
        }
        if let Some(base) = base {
            for (v, &g) in out.iter_mut().zip(base) {
                *v += g;
            }
        }
        Ok(WireConfig { encoding, delta })
    }

    /// Convenience round trip: encode under `config`, then decode the
    /// payload back, both through this scratch. Returns the payload length.
    /// This is what the serial FedAvg engine uses to charge byte-accurate
    /// upload costs and observe exactly the values the threaded engine's
    /// coordinator would decode.
    pub fn round_trip(
        &mut self,
        config: WireConfig,
        params: &mut Vec<f64>,
        global: Option<&[f64]>,
        wire_buf: &mut Vec<u8>,
    ) -> usize {
        wire_buf.clear();
        let len = self.encode_into(config, params, global, wire_buf);
        self.stage_exact(params.len());
        // Decode into the staging buffer, then copy back out, so the caller
        // keeps ownership of `params` without an extra allocation.
        let mut decoded = std::mem::take(&mut self.stage);
        let decoded_config = self
            .decode_into(wire_buf, global, &mut decoded)
            .expect("invariant: a payload this scratch just encoded decodes cleanly");
        debug_assert_eq!(decoded_config, config);
        params.clear();
        params.extend_from_slice(&decoded);
        self.stage = decoded;
        len
    }
}

/// Encodes one Q8 block: `f32` scale, `f32` offset, then one 8-bit code per
/// weight (`w ≈ offset + scale · q`, `q ∈ [0, 255]`). Codes are computed
/// with round-half-even in `f64`, so the mapping is deterministic across
/// hosts. A constant block (or a block of non-finite values, which the
/// coordinator's screen rejects anyway) stores scale 0 and decodes to the
/// offset.
fn encode_q8_block(block: &[f64], out: &mut Vec<u8>) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for &v in block {
        if v < min {
            min = v;
        }
        if v > max {
            max = v;
        }
    }
    let span = max - min;
    let (scale, offset) = if span.is_finite() && span > 0.0 {
        ((span / 255.0) as f32, min as f32)
    } else {
        // Constant, empty, or non-finite block: encode the offset alone.
        (0.0f32, if min.is_finite() { min as f32 } else { 0.0 })
    };
    out.extend_from_slice(&scale.to_le_bytes());
    out.extend_from_slice(&offset.to_le_bytes());
    if scale > 0.0 {
        // Quantize against the f32-rounded affine map the decoder will use,
        // so the chosen code is the best one for the *decoded* values.
        let scale64 = scale as f64;
        let offset64 = offset as f64;
        for &v in block {
            let q = ((v - offset64) / scale64)
                .round_ties_even()
                .clamp(0.0, 255.0);
            // fei-lint: allow(truncating-cast, reason = "q is clamped to 0.0..=255.0 two lines up; float->u8 has no checked From")
            out.push(q as u8);
        }
    } else {
        for _ in block {
            out.push(0);
        }
    }
}

/// Decodes one Q8 block of `block_len` weights from
/// `bytes = scale ‖ offset ‖ codes`.
fn decode_q8_block(bytes: &[u8], block_len: usize, out: &mut Vec<f64>) {
    let mut scale_le = [0u8; 4];
    scale_le.copy_from_slice(&bytes[0..4]);
    let mut offset_le = [0u8; 4];
    offset_le.copy_from_slice(&bytes[4..8]);
    let scale = f32::from_le_bytes(scale_le) as f64;
    let offset = f32::from_le_bytes(offset_le) as f64;
    for &q in &bytes[Q8_BLOCK_OVERHEAD..Q8_BLOCK_OVERHEAD + block_len] {
        out.push(offset + scale * q as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize) -> Vec<f64> {
        (0..n).map(|i| i as f64 * 0.01 - 1.5).collect()
    }

    #[test]
    fn payload_len_matches_encoded_len() {
        let params = ramp(700); // off-block size: 2 full blocks + remainder
        let mut scratch = WireScratch::new();
        for encoding in [Encoding::F64, Encoding::F32, Encoding::Q8] {
            for delta in [false, true] {
                let config = WireConfig { encoding, delta };
                let mut out = Vec::new();
                let len = scratch.encode_into(config, &params, Some(&params), &mut out);
                assert_eq!(len, out.len(), "{}", config.name());
                assert_eq!(len, config.payload_len(params.len()), "{}", config.name());
            }
        }
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        let params = vec![0.0, -1.5, std::f64::consts::PI, f64::MAX, f64::MIN_POSITIVE];
        let mut scratch = WireScratch::new();
        let mut wire = Vec::new();
        scratch.encode_into(WireConfig::lossless(), &params, None, &mut wire);
        let mut back = Vec::new();
        let config = scratch.decode_into(&wire, None, &mut back).unwrap();
        assert!(config.is_lossless());
        for (a, b) in params.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn f64_delta_round_trip_restores_near_exactly() {
        let params = ramp(300);
        let global: Vec<f64> = params.iter().map(|v| v + 0.125).collect();
        let mut scratch = WireScratch::new();
        let mut wire = Vec::new();
        let config = WireConfig {
            encoding: Encoding::F64,
            delta: true,
        };
        scratch.encode_into(config, &params, Some(&global), &mut wire);
        let mut back = Vec::new();
        assert_eq!(
            scratch
                .decode_into(&wire, Some(&global), &mut back)
                .unwrap(),
            config
        );
        // (w − g) + g is not guaranteed bit-exact, but with these dyadic
        // offsets it is exact; in general it is within one rounding.
        for (a, b) in params.iter().zip(&back) {
            assert!((a - b).abs() <= f64::EPSILON * a.abs().max(1.0));
        }
    }

    #[test]
    fn f32_round_trip_casts_once() {
        let params = ramp(100);
        let mut scratch = WireScratch::new();
        let mut wire = Vec::new();
        let config = WireConfig {
            encoding: Encoding::F32,
            delta: false,
        };
        scratch.encode_into(config, &params, None, &mut wire);
        let mut back = Vec::new();
        scratch.decode_into(&wire, None, &mut back).unwrap();
        for (a, b) in params.iter().zip(&back) {
            assert_eq!(*b, *a as f32 as f64);
        }
    }

    #[test]
    fn q8_error_is_bounded_by_half_a_step() {
        let params = ramp(600);
        let mut scratch = WireScratch::new();
        let mut wire = Vec::new();
        let config = WireConfig {
            encoding: Encoding::Q8,
            delta: false,
        };
        scratch.encode_into(config, &params, None, &mut wire);
        let mut back = Vec::new();
        scratch.decode_into(&wire, None, &mut back).unwrap();
        for (block, decoded) in params.chunks(Q8_BLOCK).zip(back.chunks(Q8_BLOCK)) {
            let min = block.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = block.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            // f32 rounding of scale/offset adds a small slack on top of the
            // half-step quantization bound.
            let step = (max - min) / 255.0;
            let tol = 0.5 * step + 1e-6 * max.abs().max(1.0);
            for (a, b) in block.iter().zip(decoded) {
                assert!((a - b).abs() <= tol, "|{a} - {b}| > {tol}");
            }
        }
    }

    #[test]
    fn q8_constant_block_is_exact_and_zero_scale() {
        let params = vec![0.75; 40];
        let mut scratch = WireScratch::new();
        let mut wire = Vec::new();
        let config = WireConfig {
            encoding: Encoding::Q8,
            delta: false,
        };
        scratch.encode_into(config, &params, None, &mut wire);
        let mut back = Vec::new();
        scratch.decode_into(&wire, None, &mut back).unwrap();
        assert!(back.iter().all(|&v| v == 0.75f32 as f64));
    }

    #[test]
    fn q8_delta_beats_q8_absolute_on_small_updates() {
        // Absolute weights near ±4 with tiny per-round deltas: the delta
        // tier's quantization step is orders of magnitude finer.
        let global: Vec<f64> = (0..512)
            .map(|i| ((i * 37) % 100) as f64 * 0.08 - 4.0)
            .collect();
        let params: Vec<f64> = global
            .iter()
            .enumerate()
            .map(|(i, g)| g + ((i % 7) as f64 - 3.0) * 1e-4)
            .collect();
        let mut scratch = WireScratch::new();
        let mut err = |delta: bool| {
            let config = WireConfig {
                encoding: Encoding::Q8,
                delta,
            };
            let mut wire = Vec::new();
            scratch.encode_into(config, &params, Some(&global), &mut wire);
            let mut back = Vec::new();
            scratch
                .decode_into(&wire, Some(&global), &mut back)
                .unwrap();
            params
                .iter()
                .zip(&back)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max)
        };
        let absolute = err(false);
        let delta = err(true);
        assert!(
            delta < absolute / 10.0,
            "delta max err {delta} vs absolute {absolute}"
        );
    }

    #[test]
    fn steady_state_is_allocation_free() {
        let params = ramp(1000);
        let mut scratch = WireScratch::new();
        let mut wire = Vec::new();
        let mut back = Vec::new();
        let config = WireConfig {
            encoding: Encoding::Q8,
            delta: true,
        };
        for _ in 0..3 {
            wire.clear();
            scratch.encode_into(config, &params, Some(&params), &mut wire);
            scratch
                .decode_into(&wire, Some(&params), &mut back)
                .unwrap();
        }
        let warm = scratch.allocations();
        for _ in 0..10 {
            wire.clear();
            scratch.encode_into(config, &params, Some(&params), &mut wire);
            scratch
                .decode_into(&wire, Some(&params), &mut back)
                .unwrap();
        }
        assert_eq!(
            scratch.allocations(),
            warm,
            "hot path allocated after warmup"
        );
    }

    #[test]
    fn round_trip_helper_matches_encode_then_decode() {
        let global = ramp(320);
        let original: Vec<f64> = global.iter().map(|g| g + 0.002).collect();
        let config = WireConfig {
            encoding: Encoding::Q8,
            delta: true,
        };
        let mut scratch = WireScratch::new();
        let mut wire = Vec::new();
        let mut expected = Vec::new();
        scratch.encode_into(config, &original, Some(&global), &mut wire);
        scratch
            .decode_into(&wire, Some(&global), &mut expected)
            .unwrap();

        let mut params = original.clone();
        let mut buf = Vec::new();
        let len = scratch.round_trip(config, &mut params, Some(&global), &mut buf);
        assert_eq!(len, config.payload_len(original.len()));
        assert_eq!(params, expected);
    }

    #[test]
    fn decode_rejects_malformed_headers() {
        let params = ramp(10);
        let mut scratch = WireScratch::new();
        let mut wire = Vec::new();
        scratch.encode_into(WireConfig::lossless(), &params, None, &mut wire);
        let mut out = Vec::new();

        let mut bad = wire.clone();
        bad[0] = 1;
        assert_eq!(
            scratch.decode_into(&bad, None, &mut out).unwrap_err(),
            CodecError::UnsupportedVersion { got: 1 }
        );
        let mut bad = wire.clone();
        bad[1] = 9;
        assert_eq!(
            scratch.decode_into(&bad, None, &mut out).unwrap_err(),
            CodecError::UnknownEncoding { tag: 9 }
        );
        let mut bad = wire.clone();
        bad[2] = 0b10;
        assert_eq!(
            scratch.decode_into(&bad, None, &mut out).unwrap_err(),
            CodecError::BadFlags { flags: 0b10 }
        );
        assert!(matches!(
            scratch.decode_into(&wire[..5], None, &mut out).unwrap_err(),
            CodecError::Truncated { .. }
        ));
        assert!(matches!(
            scratch
                .decode_into(&wire[..wire.len() - 1], None, &mut out)
                .unwrap_err(),
            CodecError::Truncated { .. }
        ));
    }

    #[test]
    fn decode_delta_without_base_is_an_error() {
        let params = ramp(8);
        let config = WireConfig {
            encoding: Encoding::F64,
            delta: true,
        };
        let mut scratch = WireScratch::new();
        let mut wire = Vec::new();
        scratch.encode_into(config, &params, Some(&params), &mut wire);
        let mut out = Vec::new();
        assert_eq!(
            scratch.decode_into(&wire, None, &mut out).unwrap_err(),
            CodecError::DeltaBaseMismatch {
                count: 8,
                base_len: None
            }
        );
        let short = vec![0.0; 7];
        assert_eq!(
            scratch
                .decode_into(&wire, Some(&short), &mut out)
                .unwrap_err(),
            CodecError::DeltaBaseMismatch {
                count: 8,
                base_len: Some(7)
            }
        );
    }

    #[test]
    fn empty_params_round_trip_under_every_tier() {
        let mut scratch = WireScratch::new();
        for encoding in [Encoding::F64, Encoding::F32, Encoding::Q8] {
            for delta in [false, true] {
                let config = WireConfig { encoding, delta };
                let mut wire = Vec::new();
                let len = scratch.encode_into(config, &[], Some(&[]), &mut wire);
                assert_eq!(len, WIRE_HEADER);
                let mut out = vec![1.0];
                assert_eq!(
                    scratch.decode_into(&wire, Some(&[]), &mut out).unwrap(),
                    config
                );
                assert!(out.is_empty());
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(WireConfig::lossless().name(), "f64");
        assert_eq!(
            WireConfig {
                encoding: Encoding::Q8,
                delta: true
            }
            .name(),
            "q8+delta"
        );
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    /// Miri runs the interpreter ~100x slower than native; trim case counts
    /// and sizes so the UB lane stays inside its budget.
    #[cfg(miri)]
    const MAX_LEN: usize = 40;
    #[cfg(not(miri))]
    const MAX_LEN: usize = 600;

    fn any_config() -> impl Strategy<Value = WireConfig> {
        (
            prop_oneof![Just(Encoding::F64), Just(Encoding::F32), Just(Encoding::Q8)],
            any::<bool>(),
        )
            .prop_map(|(encoding, delta)| WireConfig { encoding, delta })
    }

    fn finite_params() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-1e6f64..1e6, 0..MAX_LEN)
    }

    proptest! {
        /// Every tier round-trips every finite payload with the error bound
        /// its encoding implies (0 for F64, one f32 rounding for F32, half a
        /// quantization step plus f32 slack for Q8).
        #[test]
        fn every_tier_round_trips_within_tolerance(
            params in finite_params(),
            config in any_config(),
        ) {
            let global: Vec<f64> = params.iter().map(|v| v * 0.5).collect();
            let mut scratch = WireScratch::new();
            let mut wire = Vec::new();
            let len = scratch.encode_into(config, &params, Some(&global), &mut wire);
            prop_assert_eq!(len, wire.len());
            prop_assert_eq!(len, config.payload_len(params.len()));
            let mut back = Vec::new();
            let decoded = scratch.decode_into(&wire, Some(&global), &mut back).unwrap();
            prop_assert_eq!(decoded, config);
            prop_assert_eq!(back.len(), params.len());
            for (i, (a, b)) in params.iter().zip(&back).enumerate() {
                let tol = match config.encoding {
                    Encoding::F64 => {
                        if config.delta {
                            // (w − g) + g: one rounding each way.
                            2.0 * f64::EPSILON * a.abs().max(1.0)
                        } else {
                            0.0
                        }
                    }
                    // One f32 rounding of a value (or delta) bounded by 2e6,
                    // plus the re-add rounding in delta mode.
                    Encoding::F32 => 2e6 * f32::EPSILON as f64 * 2.0,
                    // Half a step of a span up to 4e6 over 255 levels, plus
                    // f32 scale/offset rounding slack.
                    Encoding::Q8 => 0.5 * (4e6 / 255.0) + 4e6 * f32::EPSILON as f64 * 300.0,
                };
                prop_assert!(
                    (a - b).abs() <= tol,
                    "tier {} idx {i}: |{a} - {b}| > {tol}", config.name()
                );
            }
        }

        /// Truncating an encoded payload at every byte offset returns a
        /// `CodecError` — never a panic, never a bogus success.
        #[test]
        fn truncation_at_every_offset_errors(
            params in finite_params(),
            config in any_config(),
        ) {
            let global: Vec<f64> = params.iter().map(|v| v + 1.0).collect();
            let mut scratch = WireScratch::new();
            let mut wire = Vec::new();
            scratch.encode_into(config, &params, Some(&global), &mut wire);
            let mut out = Vec::new();
            for cut in 0..wire.len() {
                prop_assert!(
                    scratch.decode_into(&wire[..cut], Some(&global), &mut out).is_err(),
                    "tier {} accepted a {cut}-byte prefix of {} bytes",
                    config.name(),
                    wire.len()
                );
            }
        }

        /// Flipping one byte anywhere in a payload never panics: the decode
        /// returns an error or a well-formed (if wrong-valued) vector. The
        /// frame-level CRC32 is what detects corruption; this layer only has
        /// to stay memory-safe and total.
        #[test]
        fn single_byte_corruption_never_panics(
            params in finite_params(),
            config in any_config(),
            byte_sel in any::<u16>(),
            xor in 1u8..=255,
        ) {
            let global: Vec<f64> = params.iter().map(|v| v - 0.25).collect();
            let mut scratch = WireScratch::new();
            let mut wire = Vec::new();
            scratch.encode_into(config, &params, Some(&global), &mut wire);
            let idx = byte_sel as usize % wire.len();
            wire[idx] ^= xor;
            let mut out = Vec::new();
            match scratch.decode_into(&wire, Some(&global), &mut out) {
                Ok(decoded) => prop_assert!(out.len() <= params.len().max(1)
                    || decoded != config || idx >= WIRE_HEADER),
                Err(
                    CodecError::Truncated { .. }
                    | CodecError::UnsupportedVersion { .. }
                    | CodecError::UnknownEncoding { .. }
                    | CodecError::BadFlags { .. }
                    | CodecError::DeltaBaseMismatch { .. },
                ) => {}
                Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            }
        }

        /// The steady-state contract under proptest's adversarial sizing:
        /// re-encoding the same payload shape never allocates again.
        #[test]
        fn same_shape_reencode_is_allocation_free(
            params in finite_params(),
            config in any_config(),
        ) {
            let mut scratch = WireScratch::new();
            let mut wire = Vec::new();
            let mut back = Vec::new();
            scratch.encode_into(config, &params, Some(&params), &mut wire);
            scratch.decode_into(&wire, Some(&params), &mut back).unwrap();
            let warm = scratch.allocations();
            for _ in 0..3 {
                wire.clear();
                scratch.encode_into(config, &params, Some(&params), &mut wire);
                scratch.decode_into(&wire, Some(&params), &mut back).unwrap();
            }
            prop_assert_eq!(scratch.allocations(), warm);
        }
    }
}
