//! Blocking TCP transport for CRC32-framed protocol traffic.
//!
//! The [`crate::codec`] frame format is self-delimiting — magic, type, a
//! big-endian `u32` length, payload, CRC32 — so a byte stream of
//! concatenated frames can be cut at *any* boundary by the kernel and
//! reassembled exactly. This module supplies the two pieces the socket
//! runtime in `fei-proto::node` needs:
//!
//! * [`FrameBuffer`] — a streaming reassembler: feed it arbitrary chunks
//!   (1-byte reads, coalesced writes, truncated tails) and pop complete
//!   frames. A short tail is simply "not yet"; a bad magic or checksum is a
//!   typed [`TransportError::Desync`] — the connection is unrecoverable
//!   because frame boundaries are lost, but the process never panics.
//! * [`FrameConn`] — a non-blocking `TcpStream` wrapped around a
//!   [`FrameBuffer`]. `poll()` drains whatever the kernel has and returns at
//!   most one frame per call; `send()` writes a whole encoded frame,
//!   spinning briefly on `WouldBlock` (localhost socket buffers dwarf our
//!   frames, so back-pressure is a failure signal, not a steady state).
//!
//! Raw frame bytes are kept alongside the decoded frame: the coordinator
//! node persists exactly the bytes it received into its frame trace, so the
//! deterministic oracle replays bit-identical input.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};

use crate::codec::{decode_frame, CodecError};

/// One reassembled frame: the decoded tag/payload plus the exact wire bytes
/// it was parsed from (for trace capture and re-decoding by protocol-layer
/// state machines that consume raw frame bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawFrame {
    /// Frame type tag.
    pub msg_type: u8,
    /// The complete encoded frame, exactly as it appeared on the wire.
    pub bytes: Vec<u8>,
}

/// Errors from the TCP transport.
#[derive(Debug)]
pub enum TransportError {
    /// An OS-level socket error.
    Io(io::Error),
    /// The byte stream no longer parses as frames (bad magic or checksum):
    /// frame boundaries are lost and the connection must be dropped.
    Desync(CodecError),
    /// The peer closed the connection and no complete frame remains buffered.
    Closed,
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io(e) => write!(f, "transport i/o error: {e}"),
            TransportError::Desync(e) => write!(f, "frame stream desynchronized: {e}"),
            TransportError::Closed => write!(f, "peer closed the connection"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> Self {
        TransportError::Io(e)
    }
}

/// Streaming reassembler for length-delimited CRC32 frames.
///
/// Consumed bytes are compacted lazily: the buffer tracks a read offset and
/// shifts the tail down only once the offset passes a threshold, so a busy
/// connection does not `memmove` on every frame.
#[derive(Debug, Default)]
pub struct FrameBuffer {
    buf: Vec<u8>,
    at: usize,
}

/// Compact the buffer once this many consumed bytes accumulate.
const COMPACT_THRESHOLD: usize = 64 * 1024;

impl FrameBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a chunk of received bytes (any size, any alignment).
    pub fn extend(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Number of buffered bytes not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Pops the next complete frame, if one is buffered.
    ///
    /// Returns `Ok(None)` when the buffered tail is a prefix of a frame
    /// (read more and retry).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Desync`] on bad magic or checksum — the
    /// stream cannot be re-synchronized and the connection should be
    /// dropped. The error is sticky only in the sense that the corrupt
    /// bytes stay at the front of the buffer; callers are expected to
    /// discard the buffer with the connection.
    pub fn next_frame(&mut self) -> Result<Option<RawFrame>, TransportError> {
        match decode_frame(&self.buf[self.at..]) {
            Ok((frame, consumed)) => {
                let bytes = self.buf[self.at..self.at + consumed].to_vec();
                self.at += consumed;
                if self.at >= COMPACT_THRESHOLD {
                    self.buf.drain(..self.at);
                    self.at = 0;
                }
                Ok(Some(RawFrame {
                    msg_type: frame.msg_type,
                    bytes,
                }))
            }
            Err(CodecError::Truncated { .. }) => Ok(None),
            Err(e) => Err(TransportError::Desync(e)),
        }
    }
}

/// How many `WouldBlock` spins `send` tolerates before reporting an error.
/// Localhost socket buffers are hundreds of kilobytes; a frame that cannot
/// drain after this many yields means the peer stopped reading.
const SEND_SPIN_LIMIT: u32 = 100_000;

/// A framed, non-blocking TCP connection.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
    buf: FrameBuffer,
    eof: bool,
}

impl FrameConn {
    /// Wraps an accepted or connected stream, switching it to non-blocking
    /// mode with `TCP_NODELAY` (control frames are latency-sensitive).
    ///
    /// # Errors
    ///
    /// Returns any socket-option error from the OS.
    pub fn from_stream(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            buf: FrameBuffer::new(),
            eof: false,
        })
    }

    /// Connects to `addr` (blocking connect, then non-blocking I/O).
    ///
    /// # Errors
    ///
    /// Returns the OS connect error (`ConnectionRefused` while the peer is
    /// down is the common, retryable case).
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        Self::from_stream(TcpStream::connect(addr)?)
    }

    /// The peer's address.
    ///
    /// # Errors
    ///
    /// Returns the OS error if the socket is no longer connected.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Sends one complete encoded frame, retrying short writes.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Io`] on socket errors or when the peer
    /// stops draining (`WriteZero` after the spin limit), and
    /// [`TransportError::Closed`] on a broken pipe.
    pub fn send(&mut self, frame_bytes: &[u8]) -> Result<(), TransportError> {
        let mut written = 0;
        let mut spins = 0u32;
        while written < frame_bytes.len() {
            match self.stream.write(&frame_bytes[written..]) {
                Ok(0) => return Err(TransportError::Closed),
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    spins += 1;
                    if spins > SEND_SPIN_LIMIT {
                        return Err(TransportError::Io(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "peer stopped draining the socket",
                        )));
                    }
                    std::thread::yield_now();
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::BrokenPipe
                        || e.kind() == io::ErrorKind::ConnectionReset =>
                {
                    return Err(TransportError::Closed)
                }
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
        Ok(())
    }

    /// Drains available bytes from the socket and returns at most one
    /// complete frame. `Ok(None)` means no complete frame yet (call again
    /// next cycle).
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Closed`] once the peer has closed and all
    /// buffered frames are drained, [`TransportError::Desync`] on stream
    /// corruption, and [`TransportError::Io`] on other socket errors.
    pub fn poll(&mut self) -> Result<Option<RawFrame>, TransportError> {
        // Serve already-buffered frames before touching the socket.
        if let Some(frame) = self.buf.next_frame()? {
            return Ok(Some(frame));
        }
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => {
                    self.buf.extend(&chunk[..n]);
                    // Keep draining; frames are popped below.
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == io::ErrorKind::ConnectionReset
                        || e.kind() == io::ErrorKind::BrokenPipe =>
                {
                    self.eof = true;
                    break;
                }
                Err(e) => return Err(TransportError::Io(e)),
            }
        }
        match self.buf.next_frame()? {
            Some(frame) => Ok(Some(frame)),
            None if self.eof => Err(TransportError::Closed),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use std::net::TcpListener;

    use super::*;
    use crate::codec::encode_frame;

    #[test]
    fn reassembles_one_byte_at_a_time() {
        let wire = encode_frame(7, b"hello");
        let mut fb = FrameBuffer::new();
        for &b in wire.iter() {
            fb.extend(&[b]);
        }
        let frame = fb.next_frame().unwrap().unwrap();
        assert_eq!(frame.msg_type, 7);
        assert_eq!(frame.bytes, wire.to_vec());
        assert!(fb.next_frame().unwrap().is_none());
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn truncated_tail_is_not_an_error() {
        let wire = encode_frame(1, b"abc");
        let mut fb = FrameBuffer::new();
        fb.extend(&wire[..wire.len() - 1]);
        assert!(fb.next_frame().unwrap().is_none());
        fb.extend(&wire[wire.len() - 1..]);
        assert!(fb.next_frame().unwrap().is_some());
    }

    #[test]
    fn bad_magic_is_typed_desync() {
        let mut fb = FrameBuffer::new();
        fb.extend(&[0x00; 16]);
        assert!(matches!(
            fb.next_frame(),
            Err(TransportError::Desync(CodecError::BadMagic))
        ));
    }

    #[test]
    fn checksum_corruption_is_typed_desync() {
        let mut wire = encode_frame(1, b"xyz").to_vec();
        wire[8] ^= 0xFF;
        let mut fb = FrameBuffer::new();
        fb.extend(&wire);
        assert!(matches!(
            fb.next_frame(),
            Err(TransportError::Desync(CodecError::ChecksumMismatch))
        ));
    }

    #[test]
    fn frames_round_trip_over_localhost_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let sender = std::thread::spawn(move || {
            let mut conn = FrameConn::connect(addr).unwrap();
            for i in 0..10u8 {
                let wire = encode_frame(i, &vec![i; usize::from(i) * 37]);
                conn.send(&wire).unwrap();
            }
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = FrameConn::from_stream(stream).unwrap();
        let mut got = Vec::new();
        while got.len() < 10 {
            match conn.poll() {
                Ok(Some(frame)) => got.push(frame),
                Ok(None) => std::thread::yield_now(),
                Err(TransportError::Closed) => break,
                Err(e) => panic!("poll failed: {e}"),
            }
        }
        sender.join().unwrap();
        assert_eq!(got.len(), 10);
        for (i, frame) in got.iter().enumerate() {
            let i = u8::try_from(i).unwrap();
            assert_eq!(frame.msg_type, i);
            assert_eq!(
                frame.bytes,
                encode_frame(i, &vec![i; usize::from(i) * 37]).to_vec()
            );
        }
    }

    #[test]
    fn poll_reports_closed_after_peer_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let wire = encode_frame(9, b"last");
        let w = wire.clone();
        let sender = std::thread::spawn(move || {
            let mut conn = FrameConn::connect(addr).unwrap();
            conn.send(&w).unwrap();
            // Drop closes the socket.
        });
        let (stream, _) = listener.accept().unwrap();
        let mut conn = FrameConn::from_stream(stream).unwrap();
        sender.join().unwrap();
        // The buffered frame is still served before Closed surfaces.
        let mut saw_frame = false;
        loop {
            match conn.poll() {
                Ok(Some(frame)) => {
                    assert_eq!(frame.bytes, wire.to_vec());
                    saw_frame = true;
                }
                Ok(None) => std::thread::yield_now(),
                Err(TransportError::Closed) => break,
                Err(e) => panic!("poll failed: {e}"),
            }
        }
        assert!(saw_frame);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;
    use crate::codec::encode_frame;

    /// A sequence of (tag, payload) frames plus a random chunking of the
    /// concatenated wire bytes.
    fn frames_strategy() -> impl Strategy<Value = Vec<(u8, Vec<u8>)>> {
        proptest::collection::vec(
            (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..96)),
            0..12,
        )
    }

    proptest! {
        /// Arbitrary frame sequences split at arbitrary byte boundaries
        /// reassemble to exactly the input frames — never a panic, never a
        /// desync, never a frame invented or lost.
        #[test]
        fn arbitrary_chunking_reassembles_exactly(
            frames in frames_strategy(),
            cuts in proptest::collection::vec(1usize..64, 0..64),
        ) {
            let mut wire = Vec::new();
            for (tag, payload) in &frames {
                wire.extend_from_slice(&encode_frame(*tag, payload));
            }
            let mut fb = FrameBuffer::new();
            let mut got = Vec::new();
            let mut at = 0;
            let mut cut_iter = cuts.iter().copied().cycle();
            while at < wire.len() {
                let step = cut_iter.next().unwrap_or(1).min(wire.len() - at);
                // An empty `cuts` vector degenerates to 1-byte reads.
                let step = step.max(1);
                fb.extend(&wire[at..at + step]);
                at += step;
                while let Some(frame) = fb.next_frame().unwrap() {
                    got.push(frame);
                }
            }
            prop_assert_eq!(got.len(), frames.len());
            for (frame, (tag, payload)) in got.iter().zip(&frames) {
                prop_assert_eq!(frame.msg_type, *tag);
                prop_assert_eq!(&frame.bytes, &encode_frame(*tag, payload).to_vec());
            }
            prop_assert_eq!(fb.pending(), 0);
        }

        /// A truncated tail never yields a frame and never errors — the
        /// reassembler just waits for more bytes.
        #[test]
        fn truncated_tails_wait_instead_of_failing(
            tag in any::<u8>(),
            payload in proptest::collection::vec(any::<u8>(), 0..96),
            keep_frames in 0usize..4,
        ) {
            let wire = encode_frame(tag, &payload).to_vec();
            let mut stream = Vec::new();
            for _ in 0..keep_frames {
                stream.extend_from_slice(&wire);
            }
            // Append a strictly-truncated copy.
            for cut in 1..wire.len() {
                let mut fb = FrameBuffer::new();
                fb.extend(&stream);
                fb.extend(&wire[..cut]);
                let mut whole = 0;
                while let Some(_f) = fb.next_frame().unwrap() {
                    whole += 1;
                }
                prop_assert_eq!(whole, keep_frames);
                prop_assert_eq!(fb.pending(), cut);
            }
        }

        /// Corruption anywhere in the *current* frame head surfaces as a
        /// typed Desync error, never a panic.
        #[test]
        fn corruption_is_typed_never_a_panic(
            tag in any::<u8>(),
            payload in proptest::collection::vec(any::<u8>(), 0..96),
            flip_at in any::<u16>(),
            flip_bit in 0usize..8,
        ) {
            let mut wire = encode_frame(tag, &payload).to_vec();
            let idx = usize::from(flip_at) % wire.len();
            wire[idx] ^= 1 << flip_bit;
            let mut fb = FrameBuffer::new();
            fb.extend(&wire);
            // Every outcome must be typed: a clean frame (flip in a
            // don't-care position cannot happen — CRC covers everything —
            // but a flipped *length* byte may just look truncated), a
            // quiet wait for more bytes, or a typed desync. Nothing panics.
            match fb.next_frame() {
                Ok(Some(_)) => {
                    // Only possible if the flip produced a shorter valid
                    // frame, which CRC32 makes astronomically unlikely;
                    // treat as a failure so we notice.
                    prop_assert!(false, "corrupted frame decoded successfully");
                }
                Ok(None) => {} // looks truncated: wait state, acceptable
                Err(TransportError::Desync(_)) => {}
                Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
            }
        }
    }
}
