//! Network substrate for the EE-FEI testbed.
//!
//! The paper's prototype connects 20 Raspberry Pi edge servers to a laptop
//! coordinator through a TP-Link WiFi router, while IoT devices feed samples
//! to edge servers over NB-IoT-like uplinks. This crate models exactly the
//! quantities those links contribute to the paper's energy accounting:
//!
//! * [`link::Link`] — point-to-point bandwidth/latency/energy; presets for
//!   the WiFi up/down links and the NB-IoT sample uplink;
//! * [`medium::SharedMedium`] — the router's shared airtime when `K` edge
//!   servers upload their models simultaneously;
//! * [`lossy::LossyLink`] — unlicensed-band collision loss with fixed
//!   per-attempt success probability (the §IV-A argument that expected
//!   per-sample upload energy stays constant);
//! * [`codec`] — a framed binary codec (CRC32-protected) for shipping model
//!   parameters between edge servers and the coordinator in the threaded FL
//!   runtime;
//! * [`wire`] — the versioned payload format inside those frames: `F64`,
//!   `F32`, and `Q8` encodings with an optional delta-vs-global mode, all
//!   through zero-steady-state-allocation scratch buffers;
//! * [`transport`] — blocking TCP transport for those frames: a streaming
//!   reassembler tolerant of arbitrary read boundaries, and a non-blocking
//!   framed connection used by the socket runtime in `fei-proto::node`.

#![forbid(unsafe_code)]

pub mod codec;
pub mod link;
pub mod lossy;
pub mod medium;
pub mod transport;
pub mod wire;

pub use codec::{decode_frame, encode_frame, len_u32, CodecError, Frame};
pub use link::Link;
pub use lossy::{LossyLink, TransferOutcome};
pub use medium::SharedMedium;
pub use transport::{FrameBuffer, FrameConn, RawFrame, TransportError};
pub use wire::{Encoding, WireConfig, WireScratch};
