//! Point-to-point link model.
//!
//! A link is characterized by bandwidth, a fixed per-transfer latency, and an
//! energy cost. Energy can be dominated either by radio airtime (`power ×
//! duration`, the WiFi case measured in Fig. 3) or by a per-byte constant
//! (the NB-IoT constant the paper quotes for IoT uplinks); the model supports
//! both terms so each preset uses whichever the paper used.

use fei_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A point-to-point link with a bandwidth, a fixed latency, and energy costs.
///
/// # Example
///
/// ```
/// use fei_net::Link;
///
/// let wifi = Link::wifi_uplink();
/// let dur = wifi.transfer_duration(62_800);
/// assert!(dur.as_secs_f64() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    bandwidth_bps: f64,
    latency: SimDuration,
    /// Transmit-side power draw while the transfer is active, in watts.
    tx_power_watts: f64,
    /// Additional per-byte transmit energy in joules (NB-IoT-style).
    joules_per_byte: f64,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps <= 0`, or either energy term is negative or
    /// non-finite.
    pub fn new(
        bandwidth_bps: f64,
        latency: SimDuration,
        tx_power_watts: f64,
        joules_per_byte: f64,
    ) -> Self {
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "bandwidth must be positive"
        );
        assert!(
            tx_power_watts.is_finite() && tx_power_watts >= 0.0,
            "power must be non-negative"
        );
        assert!(
            joules_per_byte.is_finite() && joules_per_byte >= 0.0,
            "per-byte energy must be non-negative"
        );
        Self {
            bandwidth_bps,
            latency,
            tx_power_watts,
            joules_per_byte,
        }
    }

    /// Edge-server → coordinator WiFi uplink.
    ///
    /// 20 Mbit/s effective throughput and 2 ms setup latency are typical for
    /// the 802.11n router in the prototype; the 5.015 W uplink power is the
    /// paper's measured step-(4) plateau.
    pub fn wifi_uplink() -> Self {
        Self::new(20e6, SimDuration::from_millis(2), 5.015, 0.0)
    }

    /// Coordinator → edge-server WiFi downlink (model dispatch).
    ///
    /// Same airtime, with the paper's measured 4.286 W download plateau on
    /// the receiving Pi.
    pub fn wifi_downlink() -> Self {
        Self::new(20e6, SimDuration::from_millis(2), 4.286, 0.0)
    }

    /// IoT-device → edge-server NB-IoT-style uplink.
    ///
    /// NB-IoT's uplink peak is ~60 kbit/s; energy is dominated by the
    /// per-byte constant 7.74 mW·s/byte quoted in §IV-A.
    pub fn nb_iot() -> Self {
        Self::new(60e3, SimDuration::from_millis(10), 0.0, 7.74e-3)
    }

    /// Link bandwidth in bits per second.
    pub fn bandwidth_bps(&self) -> f64 {
        self.bandwidth_bps
    }

    /// Fixed per-transfer latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// Transmit power in watts while active.
    pub fn tx_power_watts(&self) -> f64 {
        self.tx_power_watts
    }

    /// Per-byte transmit energy in joules.
    pub fn joules_per_byte(&self) -> f64 {
        self.joules_per_byte
    }

    /// Time to move `bytes` across the link: latency + serialization time.
    pub fn transfer_duration(&self, bytes: usize) -> SimDuration {
        let serialization = (bytes as f64 * 8.0) / self.bandwidth_bps;
        self.latency + SimDuration::from_secs_f64(serialization)
    }

    /// Transmit-side energy to move `bytes`: airtime power plus the per-byte
    /// term.
    pub fn transfer_energy_joules(&self, bytes: usize) -> f64 {
        let airtime = self.transfer_duration(bytes).as_secs_f64();
        self.tx_power_watts * airtime + self.joules_per_byte * bytes as f64
    }

    /// Returns a copy whose bandwidth is scaled by `factor` — used by
    /// [`crate::SharedMedium`] to model airtime sharing.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0` or is not finite.
    pub fn with_bandwidth_scaled(&self, factor: f64) -> Link {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive"
        );
        Link {
            bandwidth_bps: self.bandwidth_bps * factor,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_is_latency_plus_serialization() {
        let link = Link::new(8e6, SimDuration::from_millis(5), 1.0, 0.0);
        // 1 MB at 8 Mbit/s = 1 s, plus 5 ms latency.
        let d = link.transfer_duration(1_000_000);
        assert!((d.as_secs_f64() - 1.005).abs() < 1e-9);
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let link = Link::wifi_uplink();
        assert_eq!(link.transfer_duration(0), link.latency());
    }

    #[test]
    fn power_term_energy() {
        let link = Link::new(8e6, SimDuration::ZERO, 2.0, 0.0);
        // 1 MB at 8 Mbit/s = 1 s at 2 W = 2 J.
        assert!((link.transfer_energy_joules(1_000_000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn per_byte_term_energy() {
        let link = Link::nb_iot();
        let e = link.transfer_energy_joules(100);
        assert!((e - 0.774).abs() < 1e-12, "{e}");
    }

    #[test]
    fn energy_is_monotone_in_bytes() {
        let link = Link::wifi_uplink();
        assert!(link.transfer_energy_joules(2_000) > link.transfer_energy_joules(1_000));
    }

    #[test]
    fn presets_have_paper_power_plateaus() {
        assert_eq!(Link::wifi_uplink().tx_power_watts(), 5.015);
        assert_eq!(Link::wifi_downlink().tx_power_watts(), 4.286);
        assert_eq!(Link::nb_iot().joules_per_byte(), 7.74e-3);
    }

    #[test]
    fn bandwidth_scaling_slows_transfers() {
        let link = Link::wifi_uplink();
        let halved = link.with_bandwidth_scaled(0.5);
        assert_eq!(halved.bandwidth_bps(), link.bandwidth_bps() * 0.5);
        assert!(halved.transfer_duration(10_000) > link.transfer_duration(10_000));
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        let _ = Link::new(0.0, SimDuration::ZERO, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn rejects_zero_scale() {
        let _ = Link::wifi_uplink().with_bandwidth_scaled(0.0);
    }
}
