//! Shared-medium (router airtime) modelling.
//!
//! When `K` selected edge servers upload their models in the same
//! coordination step, they share the WiFi router's airtime. We use the
//! standard fair-share (processor-sharing) approximation: with `m`
//! concurrent transfers each proceeds at `1/m` of the link rate. For the
//! equal-size uploads of FedAvg this collapses to a simple closed form —
//! every upload takes `m ×` the solo serialization time — which is what the
//! testbed uses to place upload windows on the timeline.

use fei_sim::SimDuration;
use serde::{Deserialize, Serialize};

use crate::link::Link;

/// A link shared fairly among concurrent transmitters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedMedium {
    link: Link,
}

impl SharedMedium {
    /// Wraps a point-to-point link as a fair-shared medium.
    pub fn new(link: Link) -> Self {
        Self { link }
    }

    /// The underlying link.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Duration of each transfer when `concurrent` equal transfers of
    /// `bytes` each start simultaneously (fair airtime sharing: all finish
    /// together at `concurrent ×` the solo serialization time, plus one
    /// latency).
    ///
    /// # Panics
    ///
    /// Panics if `concurrent == 0`.
    pub fn concurrent_transfer_duration(&self, bytes: usize, concurrent: usize) -> SimDuration {
        assert!(concurrent > 0, "need at least one transmitter");
        let solo_serialization = (bytes as f64 * 8.0) / self.link.bandwidth_bps();
        self.link.latency() + SimDuration::from_secs_f64(solo_serialization * concurrent as f64)
    }

    /// Transmit-side energy of **one** participant in a `concurrent`-way
    /// equal transfer: radio power is burned for the (stretched) airtime
    /// window, plus any per-byte term.
    ///
    /// # Panics
    ///
    /// Panics if `concurrent == 0`.
    pub fn concurrent_transfer_energy_joules(&self, bytes: usize, concurrent: usize) -> f64 {
        let duration = self.concurrent_transfer_duration(bytes, concurrent);
        self.link.tx_power_watts() * duration.as_secs_f64()
            + self.link.joules_per_byte() * bytes as f64
    }

    /// Total energy across all `concurrent` participants.
    pub fn total_transfer_energy_joules(&self, bytes: usize, concurrent: usize) -> f64 {
        self.concurrent_transfer_energy_joules(bytes, concurrent) * concurrent as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn medium() -> SharedMedium {
        SharedMedium::new(Link::new(8e6, SimDuration::from_millis(2), 5.0, 0.0))
    }

    #[test]
    fn single_transfer_matches_link() {
        let m = medium();
        assert_eq!(
            m.concurrent_transfer_duration(10_000, 1),
            m.link().transfer_duration(10_000)
        );
    }

    #[test]
    fn contention_stretches_duration_linearly() {
        let m = medium();
        // 1 MB at 8 Mbit/s = 1 s solo serialization.
        let solo = m.concurrent_transfer_duration(1_000_000, 1);
        let four = m.concurrent_transfer_duration(1_000_000, 4);
        let solo_ser = solo.as_secs_f64() - 0.002;
        let four_ser = four.as_secs_f64() - 0.002;
        assert!((four_ser - 4.0 * solo_ser).abs() < 1e-9);
    }

    #[test]
    fn per_participant_energy_grows_with_contention() {
        let m = medium();
        let e1 = m.concurrent_transfer_energy_joules(1_000_000, 1);
        let e4 = m.concurrent_transfer_energy_joules(1_000_000, 4);
        assert!(e4 > e1 * 3.5, "contention should stretch airtime energy");
    }

    #[test]
    fn total_energy_is_participants_times_each() {
        let m = medium();
        let each = m.concurrent_transfer_energy_joules(50_000, 3);
        assert!((m.total_transfer_energy_joules(50_000, 3) - 3.0 * each).abs() < 1e-12);
    }

    #[test]
    fn per_byte_term_unaffected_by_contention() {
        let m = SharedMedium::new(Link::nb_iot());
        let e1 = m.concurrent_transfer_energy_joules(100, 1);
        let e5 = m.concurrent_transfer_energy_joules(100, 5);
        // NB-IoT preset has zero radio power, so energy is purely per-byte.
        assert_eq!(e1, e5);
    }

    #[test]
    #[should_panic(expected = "at least one transmitter")]
    fn rejects_zero_transmitters() {
        let _ = medium().concurrent_transfer_duration(1, 0);
    }
}
