//! Unlicensed-band uplinks with collision loss (§IV-A).
//!
//! The paper argues that for IoT technologies in the unlicensed band, data
//! upload suffers collision loss from simultaneous transmissions, but — as
//! long as device locations are fixed — each device sees a *fixed* success
//! probability, so its **expected** energy per delivered sample is still a
//! constant (`ρ` just inflates by the expected number of attempts). This
//! module makes that argument executable: a lossy link with per-attempt
//! success probability `p` delivers a sample in `Geometric(p)` attempts,
//! giving expected energy `ρ/p` per delivered sample.

use fei_sim::DetRng;
use serde::{Deserialize, Serialize};

use crate::link::Link;

/// A link whose transfers succeed independently with fixed probability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossyLink {
    link: Link,
    success_probability: f64,
    /// Attempts after which a sample is abandoned (0 = never).
    max_attempts: usize,
}

impl LossyLink {
    /// Wraps `link` with a per-attempt success probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < success_probability <= 1`.
    pub fn new(link: Link, success_probability: f64) -> Self {
        assert!(
            success_probability > 0.0 && success_probability <= 1.0,
            "success probability must be in (0, 1]"
        );
        Self {
            link,
            success_probability,
            max_attempts: 0,
        }
    }

    /// Limits the number of attempts per transfer (`0` = unlimited).
    pub fn with_max_attempts(mut self, max_attempts: usize) -> Self {
        self.max_attempts = max_attempts;
        self
    }

    /// The underlying lossless link.
    pub fn link(&self) -> &Link {
        &self.link
    }

    /// Per-attempt success probability.
    pub fn success_probability(&self) -> f64 {
        self.success_probability
    }

    /// Expected number of attempts per delivered transfer (`1/p` for
    /// unlimited retries).
    pub fn expected_attempts(&self) -> f64 {
        if self.max_attempts == 0 {
            1.0 / self.success_probability
        } else {
            // Truncated geometric: E[min(G, m)] where failures beyond m are
            // abandoned (energy still spent on m attempts).
            let p = self.success_probability;
            let q = 1.0 - p;
            let m = self.max_attempts as f64;
            // sum_{i=1..m} i p q^{i-1} + m q^m
            let mut expected = m * q.powf(m);
            for i in 1..=self.max_attempts {
                expected += i as f64 * p * q.powi(i as i32 - 1);
            }
            expected
        }
    }

    /// Expected transmit energy to *deliver* `bytes` (the §IV-A constant):
    /// per-attempt energy times expected attempts.
    pub fn expected_transfer_energy_joules(&self, bytes: usize) -> f64 {
        self.link.transfer_energy_joules(bytes) * self.expected_attempts()
    }

    /// Simulates one delivery: draws attempts until success (or the attempt
    /// cap) and returns `(attempts, delivered, energy_joules)`.
    pub fn simulate_transfer(&self, bytes: usize, rng: &mut DetRng) -> TransferOutcome {
        let per_attempt = self.link.transfer_energy_joules(bytes);
        let mut attempts = 0usize;
        loop {
            attempts += 1;
            if rng.next_f64() < self.success_probability {
                return TransferOutcome {
                    attempts,
                    delivered: true,
                    energy_joules: per_attempt * attempts as f64,
                };
            }
            if self.max_attempts != 0 && attempts >= self.max_attempts {
                return TransferOutcome {
                    attempts,
                    delivered: false,
                    energy_joules: per_attempt * attempts as f64,
                };
            }
        }
    }
}

/// Result of one simulated lossy delivery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransferOutcome {
    /// Attempts made.
    pub attempts: usize,
    /// Whether the payload was delivered.
    pub delivered: bool,
    /// Total transmit energy spent, joules.
    pub energy_joules: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(p: f64) -> LossyLink {
        LossyLink::new(Link::nb_iot(), p)
    }

    #[test]
    fn lossless_link_is_single_attempt() {
        let l = lossy(1.0);
        assert_eq!(l.expected_attempts(), 1.0);
        let base = l.link().transfer_energy_joules(100);
        assert_eq!(l.expected_transfer_energy_joules(100), base);
        let mut rng = DetRng::new(1);
        let outcome = l.simulate_transfer(100, &mut rng);
        assert_eq!(outcome.attempts, 1);
        assert!(outcome.delivered);
    }

    #[test]
    fn expected_attempts_is_inverse_probability() {
        assert!((lossy(0.5).expected_attempts() - 2.0).abs() < 1e-12);
        assert!((lossy(0.25).expected_attempts() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn expected_energy_scales_with_loss() {
        // The paper's point: expected per-sample energy is a constant,
        // inflated by 1/p.
        let clean = lossy(1.0).expected_transfer_energy_joules(785);
        let half = lossy(0.5).expected_transfer_energy_joules(785);
        assert!((half - 2.0 * clean).abs() < 1e-9);
    }

    #[test]
    fn truncated_expectation_is_bounded_by_cap() {
        let l = lossy(0.1).with_max_attempts(3);
        let e = l.expected_attempts();
        assert!(e <= 3.0);
        assert!(e > 1.0);
        // With a generous cap the truncated expectation approaches 1/p.
        let loose = lossy(0.5).with_max_attempts(64).expected_attempts();
        assert!((loose - 2.0).abs() < 1e-9);
    }

    #[test]
    fn simulation_matches_expectation() {
        let l = lossy(0.3);
        let mut rng = DetRng::new(42);
        let n = 20_000;
        let mean_attempts: f64 = (0..n)
            .map(|_| l.simulate_transfer(10, &mut rng).attempts as f64)
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_attempts - 1.0 / 0.3).abs() < 0.1,
            "mean attempts {mean_attempts} vs expected {}",
            1.0 / 0.3
        );
    }

    #[test]
    fn capped_transfers_can_fail() {
        let l = lossy(0.05).with_max_attempts(2);
        let mut rng = DetRng::new(7);
        let outcomes: Vec<TransferOutcome> = (0..200)
            .map(|_| l.simulate_transfer(10, &mut rng))
            .collect();
        assert!(outcomes.iter().any(|o| !o.delivered), "some must fail");
        assert!(outcomes.iter().all(|o| o.attempts <= 2));
        // Energy is charged for failed attempts too.
        let failed = outcomes
            .iter()
            .find(|o| !o.delivered)
            .expect("some failure");
        assert!(failed.energy_joules > 0.0);
    }

    #[test]
    fn truncated_expectation_matches_closed_form() {
        // E[min(G, m)] = (1 - q^m) / p for Geometric(p) attempts capped at m.
        for &(p, m) in &[(0.1, 3usize), (0.3, 5), (0.5, 2), (0.9, 10), (0.05, 20)] {
            let q: f64 = 1.0 - p;
            let closed = (1.0 - q.powi(m as i32)) / p;
            let computed = lossy(p).with_max_attempts(m).expected_attempts();
            assert!(
                (computed - closed).abs() < 1e-9,
                "p = {p}, m = {m}: {computed} vs closed form {closed}"
            );
        }
    }

    #[test]
    fn delivered_fraction_matches_truncated_geometric() {
        // P(delivered) = 1 - q^m; check the simulation against it.
        let (p, m) = (0.3, 3usize);
        let l = lossy(p).with_max_attempts(m);
        let mut rng = DetRng::new(11);
        let n = 20_000;
        let delivered = (0..n)
            .filter(|_| l.simulate_transfer(10, &mut rng).delivered)
            .count();
        let expected = 1.0 - (1.0 - p).powi(m as i32);
        let fraction = delivered as f64 / n as f64;
        assert!(
            (fraction - expected).abs() < 0.01,
            "delivered fraction {fraction} vs 1 - q^m = {expected}"
        );
    }

    #[test]
    fn abandonment_spends_exactly_the_cap() {
        let l = lossy(0.2).with_max_attempts(4);
        let per_attempt = l.link().transfer_energy_joules(10);
        let mut rng = DetRng::new(13);
        let abandoned: Vec<TransferOutcome> = (0..500)
            .map(|_| l.simulate_transfer(10, &mut rng))
            .filter(|o| !o.delivered)
            .collect();
        assert!(
            !abandoned.is_empty(),
            "20% success over 4 attempts must abandon some"
        );
        for o in &abandoned {
            assert_eq!(
                o.attempts, 4,
                "abandonment only after the full retry budget"
            );
            assert!((o.energy_joules - 4.0 * per_attempt).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "success probability")]
    fn rejects_zero_probability() {
        let _ = LossyLink::new(Link::nb_iot(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// The truncated expectation is sane for any cap: at least one
        /// attempt, never beyond the cap or the unlimited mean `1/p`.
        #[test]
        fn truncated_expectation_is_well_bounded(
            p in 0.05f64..1.0,
            m in 1usize..40,
        ) {
            let e = LossyLink::new(Link::nb_iot(), p).with_max_attempts(m).expected_attempts();
            prop_assert!(e >= 1.0 - 1e-12);
            prop_assert!(e <= m as f64 + 1e-12);
            prop_assert!(e <= 1.0 / p + 1e-9);
        }

        /// Simulated mean energy converges to the analytic expectation for
        /// unlimited retries.
        #[test]
        fn simulated_energy_matches_expectation(
            p in 0.2f64..1.0,
            seed in any::<u64>(),
        ) {
            let l = LossyLink::new(Link::nb_iot(), p);
            let mut rng = DetRng::new(seed);
            let n = 4_000;
            let mean: f64 = (0..n)
                .map(|_| l.simulate_transfer(50, &mut rng).energy_joules)
                .sum::<f64>() / n as f64;
            let expected = l.expected_transfer_energy_joules(50);
            prop_assert!((mean - expected).abs() / expected < 0.15,
                "mean {} vs expected {}", mean, expected);
        }
    }
}
