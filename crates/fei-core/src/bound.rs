//! The convergence bound (Proposition 1 → Eq. 10) and the round budget
//! `T*(K, E)` (Eq. 11).
//!
//! The paper adopts the local-SGD bound of Khaled, Mishchenko & Richtárik
//! (AISTATS 2020), folding the learning rate, smoothness, and gradient
//! variance into three non-negative constants:
//!
//! ```text
//! E[F(ω_T) − F(ω*)] ≤ A0/(T·E) + A1/K + A2·(E − 1)        (Eq. 10)
//! ```
//!
//! Solving the constraint at equality for `T` gives the minimum number of
//! global rounds to reach accuracy `ε`:
//!
//! ```text
//! T*(K, E) = A0·K / ((ε·K − A1 − A2·K·(E − 1)) · E)       (Eq. 11)
//! ```

use serde::{Deserialize, Serialize};

use crate::error::{require_non_negative, require_positive, CoreError};

/// The convergence bound constants `(A₀, A₁, A₂)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceBound {
    a0: f64,
    a1: f64,
    a2: f64,
}

impl ConvergenceBound {
    /// Creates a bound.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `A₀ > 0`, `A₁ ≥ 0`,
    /// `A₂ ≥ 0` (A₀ = 0 would mean convergence in zero rounds).
    pub fn new(a0: f64, a1: f64, a2: f64) -> Result<Self, CoreError> {
        require_positive("a0", a0)?;
        require_non_negative("a1", a1)?;
        require_non_negative("a2", a2)?;
        Ok(Self { a0, a1, a2 })
    }

    /// Builds the constants from the quantities of Proposition 1 (Khaled et
    /// al., Theorem 4): learning rate `γ`, smoothness `L`, gradient variance
    /// at the optimum `σ²`, squared initial distance `‖ω₀ − ω*‖²`, and the
    /// theorem's three absolute constants `(α₀, α₁, α₂)`:
    ///
    /// ```text
    /// A0 = α0·‖ω0 − ω*‖²/γ,   A1 = α1·γ·σ²,   A2 = α2·γ²·L·σ²
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the resulting constants
    /// are out of domain (e.g. non-positive `γ` or distance).
    #[allow(clippy::too_many_arguments)]
    pub fn from_theory(
        gamma: f64,
        smoothness: f64,
        sigma_sq: f64,
        initial_distance_sq: f64,
        alpha0: f64,
        alpha1: f64,
        alpha2: f64,
    ) -> Result<Self, CoreError> {
        require_positive("gamma", gamma)?;
        require_non_negative("smoothness", smoothness)?;
        require_non_negative("sigma_sq", sigma_sq)?;
        require_positive("initial_distance_sq", initial_distance_sq)?;
        require_positive("alpha0", alpha0)?;
        require_non_negative("alpha1", alpha1)?;
        require_non_negative("alpha2", alpha2)?;
        Self::new(
            alpha0 * initial_distance_sq / gamma,
            alpha1 * gamma * sigma_sq,
            alpha2 * gamma * gamma * smoothness * sigma_sq,
        )
    }

    /// `A₀` — the optimization (initial-distance) term coefficient.
    pub fn a0(&self) -> f64 {
        self.a0
    }

    /// `A₁` — the gradient-variance term coefficient (divided by `K`).
    pub fn a1(&self) -> f64 {
        self.a1
    }

    /// `A₂` — the client-drift term coefficient (times `E − 1`).
    pub fn a2(&self) -> f64 {
        self.a2
    }

    /// The bound's value `A0/(T·E) + A1/K + A2·(E−1)` — an upper bound on the
    /// expected loss gap after `T` rounds.
    ///
    /// # Panics
    ///
    /// Panics if any argument is not strictly positive.
    pub fn gap(&self, t: f64, e: f64, k: f64) -> f64 {
        assert!(t > 0.0 && e > 0.0 && k > 0.0, "T, E, K must be positive");
        self.a0 / (t * e) + self.a1 / k + self.a2 * (e - 1.0)
    }

    /// The irreducible gap `A1/K + A2·(E−1)` as `T → ∞`. A target `ε` below
    /// this floor is unreachable at `(K, E)`.
    pub fn asymptotic_gap(&self, e: f64, k: f64) -> f64 {
        self.a1 / k + self.a2 * (e - 1.0)
    }

    /// Whether the constraint (13c) `ε·K − A1 − A2·K·(E−1) > 0` holds, i.e.
    /// the target is reachable at `(K, E)` with finitely many rounds.
    pub fn is_feasible(&self, epsilon: f64, k: f64, e: f64) -> bool {
        k > 0.0 && e >= 1.0 && epsilon * k - self.a1 - self.a2 * k * (e - 1.0) > 0.0
    }

    /// `T*(K, E)` (Eq. 11): the continuous minimum number of global rounds to
    /// reach gap `ε`, or `None` when (13c) fails.
    pub fn t_star(&self, epsilon: f64, k: f64, e: f64) -> Option<f64> {
        if !self.is_feasible(epsilon, k, e) {
            return None;
        }
        let denom = (epsilon * k - self.a1 - self.a2 * k * (e - 1.0)) * e;
        Some(self.a0 * k / denom)
    }

    /// Integer round budget: `⌈T*⌉`, at least 1.
    pub fn t_star_rounds(&self, epsilon: f64, k: usize, e: usize) -> Option<usize> {
        self.t_star(epsilon, k as f64, e as f64)
            .map(|t| (t.ceil() as usize).max(1))
    }

    /// Largest feasible `E` at a given `K` (exclusive upper limit of the
    /// search domain `𝒵_E`): `E < (εK − A1 + A2K)/(A2K)`. Returns
    /// `f64::INFINITY` when `A₂ = 0`.
    pub fn max_e(&self, epsilon: f64, k: f64) -> f64 {
        // fei-lint: allow(float-eq, reason = "A2 = 0 is a structural sentinel (no epoch penalty term), not a measured quantity")
        if self.a2 == 0.0 {
            return f64::INFINITY;
        }
        (epsilon * k - self.a1 + self.a2 * k) / (self.a2 * k)
    }

    /// Smallest feasible `K` at a given `E` (exclusive lower limit of `𝒵_K`):
    /// `K > A1/(ε − A2(E−1))`. Returns `None` when even `K → ∞` is
    /// infeasible (`ε ≤ A2(E−1)`).
    pub fn min_k(&self, epsilon: f64, e: f64) -> Option<f64> {
        let c1 = epsilon - self.a2 * (e - 1.0);
        (c1 > 0.0).then(|| self.a1 / c1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bound() -> ConvergenceBound {
        ConvergenceBound::new(2.0, 0.1, 0.001).unwrap()
    }

    #[test]
    fn gap_formula() {
        let b = bound();
        // 2/(10*4) + 0.1/5 + 0.001*3 = 0.05 + 0.02 + 0.003.
        assert!((b.gap(10.0, 4.0, 5.0) - 0.073).abs() < 1e-12);
    }

    #[test]
    fn gap_decreases_in_t_and_k() {
        let b = bound();
        assert!(b.gap(20.0, 4.0, 5.0) < b.gap(10.0, 4.0, 5.0));
        assert!(b.gap(10.0, 4.0, 10.0) < b.gap(10.0, 4.0, 5.0));
    }

    #[test]
    fn asymptotic_gap_is_t_limit() {
        let b = bound();
        let limit = b.asymptotic_gap(4.0, 5.0);
        assert!((b.gap(1e12, 4.0, 5.0) - limit).abs() < 1e-9);
    }

    #[test]
    fn feasibility_boundary() {
        let b = bound();
        // eps*K - A1 - A2*K*(E-1) > 0 with K=5, E=4: eps*5 - 0.1 - 0.015 > 0
        // -> eps > 0.023.
        assert!(b.is_feasible(0.024, 5.0, 4.0));
        assert!(!b.is_feasible(0.023, 5.0, 4.0));
        assert!(!b.is_feasible(0.0229999, 5.0, 4.0));
    }

    #[test]
    fn t_star_reaches_target_exactly() {
        let b = bound();
        let eps = 0.05;
        let (k, e) = (5.0, 4.0);
        let t = b.t_star(eps, k, e).unwrap();
        // At T = T*, the bound equals eps by construction.
        assert!((b.gap(t, e, k) - eps).abs() < 1e-12);
        // More rounds -> smaller gap.
        assert!(b.gap(t * 2.0, e, k) < eps);
    }

    #[test]
    fn t_star_none_when_infeasible() {
        let b = bound();
        assert_eq!(b.t_star(0.01, 5.0, 4.0), None);
    }

    #[test]
    fn t_star_rounds_ceils_and_floors_at_one() {
        let b = ConvergenceBound::new(1e-6, 0.0, 0.0).unwrap();
        // Tiny A0 -> tiny T*; integer budget still at least 1.
        assert_eq!(b.t_star_rounds(0.5, 1, 1), Some(1));
        let b2 = bound();
        let t_cont = b2.t_star(0.05, 5.0, 4.0).unwrap();
        let t_int = b2.t_star_rounds(0.05, 5, 4).unwrap();
        assert_eq!(t_int, t_cont.ceil() as usize);
    }

    #[test]
    fn t_star_increases_as_eps_tightens() {
        let b = bound();
        let loose = b.t_star(0.1, 5.0, 4.0).unwrap();
        let tight = b.t_star(0.05, 5.0, 4.0).unwrap();
        assert!(tight > loose);
    }

    #[test]
    fn increasing_k_reduces_t_star() {
        // The paper's observation: more participants, fewer rounds needed.
        let b = bound();
        let t_small_k = b.t_star(0.05, 3.0, 4.0).unwrap();
        let t_large_k = b.t_star(0.05, 10.0, 4.0).unwrap();
        assert!(t_large_k < t_small_k);
    }

    #[test]
    fn domain_limits() {
        let b = bound();
        let eps = 0.05;
        // max_e: feasibility must hold strictly below, fail at/above.
        let e_max = b.max_e(eps, 5.0);
        assert!(b.is_feasible(eps, 5.0, e_max - 1e-6));
        assert!(!b.is_feasible(eps, 5.0, e_max + 1e-6));
        // min_k symmetric.
        let k_min = b.min_k(eps, 4.0).unwrap();
        assert!(!b.is_feasible(eps, k_min - 1e-6, 4.0));
        assert!(b.is_feasible(eps, k_min + 1e-6, 4.0));
    }

    #[test]
    fn min_k_none_when_drift_dominates() {
        let b = ConvergenceBound::new(1.0, 0.1, 0.1).unwrap();
        // eps = 0.05 < A2*(E-1) = 0.9 -> no K helps.
        assert_eq!(b.min_k(0.05, 10.0), None);
    }

    #[test]
    fn max_e_infinite_without_drift() {
        let b = ConvergenceBound::new(1.0, 0.1, 0.0).unwrap();
        assert_eq!(b.max_e(0.05, 5.0), f64::INFINITY);
    }

    #[test]
    fn from_theory_composes_proposition1() {
        let gamma = 0.01;
        let b = ConvergenceBound::from_theory(gamma, 4.0, 2.0, 9.0, 1.0, 0.5, 0.25).unwrap();
        assert!((b.a0() - 9.0 / gamma).abs() < 1e-12);
        assert!((b.a1() - 0.5 * gamma * 2.0).abs() < 1e-15);
        assert!((b.a2() - 0.25 * gamma * gamma * 4.0 * 2.0).abs() < 1e-18);
    }

    #[test]
    fn from_theory_zero_variance_kills_a1_a2() {
        // sigma = 0 (deterministic gradients): only the optimization term
        // remains, so any accuracy is reachable at K = 1 with enough rounds.
        let b = ConvergenceBound::from_theory(0.01, 4.0, 0.0, 1.0, 1.0, 1.0, 1.0).unwrap();
        assert_eq!(b.a1(), 0.0);
        assert_eq!(b.a2(), 0.0);
        assert!(b.t_star(1e-6, 1.0, 1.0).is_some());
    }

    #[test]
    fn from_theory_smaller_lr_slows_but_stabilizes() {
        // Halving gamma doubles A0 (slower optimization) but halves A1
        // (less gradient noise) — the classic trade-off the paper's E/K
        // balance exploits.
        let fast = ConvergenceBound::from_theory(0.02, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0).unwrap();
        let slow = ConvergenceBound::from_theory(0.01, 4.0, 2.0, 1.0, 1.0, 1.0, 1.0).unwrap();
        assert!(slow.a0() > fast.a0());
        assert!(slow.a1() < fast.a1());
        assert!(slow.a2() < fast.a2());
    }

    #[test]
    fn from_theory_rejects_bad_inputs() {
        assert!(ConvergenceBound::from_theory(0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0).is_err());
        assert!(ConvergenceBound::from_theory(0.01, -1.0, 1.0, 1.0, 1.0, 1.0, 1.0).is_err());
        assert!(ConvergenceBound::from_theory(0.01, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn rejects_bad_constants() {
        assert!(ConvergenceBound::new(0.0, 0.1, 0.1).is_err());
        assert!(ConvergenceBound::new(1.0, -0.1, 0.1).is_err());
        assert!(ConvergenceBound::new(1.0, 0.1, f64::NAN).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Wherever T* exists, running exactly T* rounds meets the target and
        /// the bound is monotone decreasing in extra rounds.
        #[test]
        fn t_star_meets_target(
            a0 in 0.1f64..10.0,
            a1 in 0.0f64..1.0,
            a2 in 0.0f64..0.01,
            eps in 0.01f64..0.5,
            k in 1.0f64..20.0,
            e in 1.0f64..50.0,
        ) {
            let b = ConvergenceBound::new(a0, a1, a2).unwrap();
            if let Some(t) = b.t_star(eps, k, e) {
                prop_assert!(t > 0.0);
                prop_assert!((b.gap(t, e, k) - eps).abs() < 1e-9);
                prop_assert!(b.gap(t + 1.0, e, k) <= eps);
            } else {
                // Infeasible: even infinite T cannot reach eps.
                prop_assert!(b.asymptotic_gap(e, k) >= eps - 1e-12);
            }
        }
    }
}
