//! Exhaustive integer grid search — the brute-force baseline for ACS.
//!
//! Scans every `(K, E)` in `[1, N] × [1, e_cap]` under the integer objective.
//! Exact by construction, but `Θ(N · E)` evaluations versus ACS's handful of
//! closed-form steps; the `acs` Criterion bench quantifies the gap.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::objective::EnergyObjective;

/// Result of a grid scan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSolution {
    /// Optimal `K`.
    pub k: usize,
    /// Optimal `E`.
    pub e: usize,
    /// Round budget at the optimum.
    pub t: usize,
    /// Total energy at the optimum, joules.
    pub energy: f64,
    /// Number of `(K, E)` points evaluated (feasible or not).
    pub evaluated: usize,
}

/// Exhaustive search over the integer domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridSearch {
    /// Upper bound on `E` to scan (the feasible region may end earlier).
    pub e_cap: usize,
}

impl Default for GridSearch {
    fn default() -> Self {
        Self { e_cap: 1_000 }
    }
}

impl GridSearch {
    /// Scans the grid and returns the best feasible integer point.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] if no grid point is feasible
    /// (cannot happen for a successfully constructed objective with
    /// `e_cap ≥ 1`).
    pub fn solve(&self, objective: &EnergyObjective) -> Result<GridSolution, CoreError> {
        let mut best: Option<GridSolution> = None;
        let mut evaluated = 0;
        for k in 1..=objective.n() {
            // The feasible E range shrinks with K; skip past its end.
            let e_max = objective.e_max(k as f64);
            let e_hi = if e_max.is_finite() {
                (e_max.ceil() as usize).min(self.e_cap)
            } else {
                self.e_cap
            };
            for e in 1..=e_hi {
                evaluated += 1;
                if let Some((t, energy)) = objective.eval_integer(k, e) {
                    let candidate = GridSolution {
                        k,
                        e,
                        t,
                        energy,
                        evaluated: 0,
                    };
                    best = match best {
                        Some(b) if b.energy <= energy => Some(b),
                        _ => Some(candidate),
                    };
                }
            }
        }
        best.map(|mut b| {
            b.evaluated = evaluated;
            b
        })
        .ok_or_else(|| CoreError::Infeasible {
            detail: "no feasible grid point".into(),
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::acs::AcsOptimizer;
    use crate::bound::ConvergenceBound;

    use super::*;

    fn objective() -> EnergyObjective {
        let bound = ConvergenceBound::new(1.0, 0.05, 1e-4).unwrap();
        EnergyObjective::new(bound, 0.5, 2.0, 0.1, 20).unwrap()
    }

    #[test]
    fn finds_a_feasible_minimum() {
        let s = GridSearch::default().solve(&objective()).unwrap();
        assert!(s.energy.is_finite());
        assert!(s.k >= 1 && s.k <= 20);
        assert!(s.e >= 1);
        assert!(s.evaluated > 100);
    }

    #[test]
    fn grid_matches_acs_on_well_behaved_objective() {
        let o = objective();
        let grid = GridSearch::default().solve(&o).unwrap();
        let acs = AcsOptimizer::default().solve(&o, 10.0, 10.0).unwrap();
        // ACS refines locally around the continuous optimum; on this convex
        // instance it must find the same integer point as brute force.
        assert_eq!((grid.k, grid.e), (acs.k, acs.e));
        assert!((grid.energy - acs.energy).abs() < 1e-9);
    }

    #[test]
    fn grid_is_globally_minimal_by_recheck() {
        let o = objective();
        let s = GridSearch { e_cap: 300 }.solve(&o).unwrap();
        for k in 1..=o.n() {
            for e in 1..=300 {
                if let Some((_, energy)) = o.eval_integer(k, e) {
                    assert!(
                        s.energy <= energy + 1e-9,
                        "grid missed better point ({k}, {e}): {energy} < {}",
                        s.energy
                    );
                }
            }
        }
    }

    #[test]
    fn e_cap_restricts_domain() {
        let o = objective();
        let tight = GridSearch { e_cap: 1 }.solve(&o).unwrap();
        assert_eq!(tight.e, 1);
        let loose = GridSearch { e_cap: 500 }.solve(&o).unwrap();
        assert!(loose.energy <= tight.energy);
    }
}
