//! EE-FEI: energy-efficient federated edge intelligence.
//!
//! This crate is the paper's primary contribution, reimplemented as a
//! library:
//!
//! * [`energy`] — the per-step energy models of §IV: data collection
//!   (`e_I = ρ·n_k`, Eq. 4), local training (`e_P = c₀·E·n_k + c₁·E`,
//!   Eq. 5), and the per-upload constant `e_U`, composed into the system
//!   energy `ê(E, K, T) = T·K·(B₀E + B₁)`;
//! * [`bound`] — the local-SGD convergence bound (Proposition 1 / Eq. 10)
//!   and the induced round budget `T*(K, E)` (Eq. 11);
//! * [`objective`] — the biconvex energy objective `ê(K, E)` of Eq. 12 with
//!   the closed-form per-coordinate minimizers `K*` (Eq. 15) and `E*`
//!   (Eq. 17 — both the paper's printed form and the exact stationary
//!   point; see DESIGN.md on the discrepancy);
//! * [`acs`] — Alternate Convex Search (Algorithm 1) with integer
//!   refinement;
//! * [`grid`] — the exhaustive-search baseline used to validate ACS;
//! * [`calibration`] — least-squares fits for the energy coefficients
//!   (`c₀`, `c₁` from Table I) and the bound constants (`A₀`, `A₁`, `A₂`
//!   from training histories);
//! * [`planner`] — the high-level `optimize everything, report the savings`
//!   API behind the paper's 49.8 % headline.
//!
//! # Example
//!
//! ```
//! use fei_core::bound::ConvergenceBound;
//! use fei_core::objective::EnergyObjective;
//! use fei_core::acs::AcsOptimizer;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bound = ConvergenceBound::new(1.0, 0.05, 1e-4)?;
//! let objective = EnergyObjective::new(bound, 0.5, 2.0, 0.1, 20)?;
//! let solution = AcsOptimizer::default().solve(&objective, 10.0, 10.0)?;
//! assert!(solution.energy <= objective.eval(10.0, 10.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub mod acs;
pub mod bound;
pub mod calibration;
pub mod energy;
pub mod error;
pub mod grid;
pub mod ledger;
pub mod objective;
pub mod planner;
pub mod sensitivity;

pub use acs::{AcsOptimizer, AcsSolution};
pub use bound::ConvergenceBound;
pub use calibration::{fit_bound_constants, fit_timing_model, TimingFit};
pub use energy::{ComputationModel, DataCollectionModel, RoundEnergyModel, UploadModel};
pub use error::CoreError;
pub use grid::GridSearch;
pub use ledger::{EnergyLedger, EnergyUse, LedgerEntry};
pub use objective::EnergyObjective;
pub use planner::{EeFeiPlan, EeFeiPlanner};
pub use sensitivity::{SensitivityBase, SensitivityPoint, SensitivityReport};
