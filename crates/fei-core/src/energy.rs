//! Per-step energy models (§IV).
//!
//! All energies are in joules. The models are deliberately the paper's —
//! linear in the knobs — with the coefficients either taken from the paper's
//! fits or recalibrated from testbed traces via [`crate::calibration`].

use serde::{Deserialize, Serialize};

use crate::error::{require_non_negative, CoreError};

/// Data-collection energy: `e_I(n_k) = ρ·n_k` (Eq. 4), the IoT network's cost
/// of uploading `n_k` samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataCollectionModel {
    /// Energy per uploaded sample, joules (`ρ_k`).
    rho: f64,
}

impl DataCollectionModel {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `rho` is negative or not
    /// finite.
    pub fn new(rho: f64) -> Result<Self, CoreError> {
        require_non_negative("rho", rho)?;
        Ok(Self { rho })
    }

    /// NB-IoT default: 7.74 mJ per byte × 785-byte samples.
    pub fn nb_iot_default() -> Self {
        Self {
            rho: 7.74e-3 * 785.0,
        }
    }

    /// Per-sample energy `ρ`, joules.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// Energy to upload `n_k` samples (Eq. 4).
    pub fn energy_joules(&self, n_k: usize) -> f64 {
        self.rho * n_k as f64
    }
}

/// Local-training energy: `e_P(E, n_k) = c₀·E·n_k + c₁·E` (Eq. 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputationModel {
    /// Energy per sample per epoch, joules (`c₀`).
    c0: f64,
    /// Per-epoch fixed energy, joules (`c₁`).
    c1: f64,
}

impl ComputationModel {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if either coefficient is
    /// negative or not finite, or both are zero.
    pub fn new(c0: f64, c1: f64) -> Result<Self, CoreError> {
        require_non_negative("c0", c0)?;
        require_non_negative("c1", c1)?;
        // fei-lint: allow(float-eq, reason = "rejecting the exactly-degenerate all-zero coefficient pair; near-zero models are legal")
        if c0 == 0.0 && c1 == 0.0 {
            return Err(CoreError::invalid(
                "c0/c1",
                "at least one coefficient must be positive",
            ));
        }
        Ok(Self { c0, c1 })
    }

    /// The paper's least-squares fit over Table I: `c₀ = 7.79 × 10⁻⁵`,
    /// `c₁ = 3.34 × 10⁻³` (§VI-B).
    pub fn paper_fit() -> Self {
        Self {
            c0: 7.79e-5,
            c1: 3.34e-3,
        }
    }

    /// Energy per sample per epoch `c₀`, joules.
    pub fn c0(&self) -> f64 {
        self.c0
    }

    /// Per-epoch fixed energy `c₁`, joules.
    pub fn c1(&self) -> f64 {
        self.c1
    }

    /// Energy of `e` local epochs over `n_k` samples (Eq. 5).
    pub fn energy_joules(&self, e: usize, n_k: usize) -> f64 {
        self.energy_joules_f(e as f64, n_k as f64)
    }

    /// Continuous-domain version used inside the optimizer.
    pub fn energy_joules_f(&self, e: f64, n_k: f64) -> f64 {
        self.c0 * e * n_k + self.c1 * e
    }
}

/// Model-upload energy: a constant `e_U` per selected server per round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UploadModel {
    /// Joules per model upload (`e_U`).
    e_u: f64,
}

impl UploadModel {
    /// Creates the model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `e_u` is negative or not
    /// finite.
    pub fn new(e_u: f64) -> Result<Self, CoreError> {
        require_non_negative("e_u", e_u)?;
        Ok(Self { e_u })
    }

    /// Prototype default: a 62.8 kB logistic-regression payload at 20 Mbit/s
    /// and the measured 5.015 W upload plateau (≈ 0.136 J including the 2 ms
    /// setup).
    pub fn wifi_default() -> Self {
        let payload_bytes = (784 * 10 + 10) * 8;
        let seconds = 0.002 + payload_bytes as f64 * 8.0 / 20e6;
        Self {
            e_u: 5.015 * seconds,
        }
    }

    /// Byte-accurate upload energy: `e_U` is what the link charges for the
    /// actual frame — airtime power × transfer duration plus the per-byte
    /// term — instead of the paper's constant. Feeding the wire codec's true
    /// frame length here is how compression tiers move the `B₁` term of
    /// Eq. 12 and shift the planned `(K*, E*)`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] when the link's energy for
    /// this payload is not a valid `e_U` (non-finite — impossible for the
    /// bundled presets at sane sizes, but links are caller-constructible).
    pub fn from_link(link: &fei_net::Link, payload_bytes: usize) -> Result<Self, CoreError> {
        Self::new(link.transfer_energy_joules(payload_bytes))
    }

    /// Joules per upload.
    pub fn e_u(&self) -> f64 {
        self.e_u
    }
}

/// The composed per-round, per-server energy model with a fixed local
/// dataset size `n_k` — everything problem (6a) needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundEnergyModel {
    data: DataCollectionModel,
    compute: ComputationModel,
    upload: UploadModel,
    n_k: usize,
}

impl RoundEnergyModel {
    /// Composes the three step models for servers holding `n_k` samples.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if `n_k == 0`.
    pub fn new(
        data: DataCollectionModel,
        compute: ComputationModel,
        upload: UploadModel,
        n_k: usize,
    ) -> Result<Self, CoreError> {
        if n_k == 0 {
            return Err(CoreError::invalid("n_k", "local dataset must be non-empty"));
        }
        Ok(Self {
            data,
            compute,
            upload,
            n_k,
        })
    }

    /// The prototype's defaults: NB-IoT collection, the paper's Table-I fit,
    /// WiFi upload, 3 000 samples per server.
    pub fn paper_default() -> Self {
        Self {
            data: DataCollectionModel::nb_iot_default(),
            compute: ComputationModel::paper_fit(),
            upload: UploadModel::wifi_default(),
            n_k: 3_000,
        }
    }

    /// The same model with a different upload component — the hook that
    /// swaps the constant `e_U` for a payload-derived one (see
    /// [`UploadModel::from_link`]).
    pub fn with_upload(mut self, upload: UploadModel) -> Self {
        self.upload = upload;
        self
    }

    /// Local dataset size `n_k`.
    pub fn n_k(&self) -> usize {
        self.n_k
    }

    /// The data-collection component.
    pub fn data(&self) -> &DataCollectionModel {
        &self.data
    }

    /// The computation component.
    pub fn compute(&self) -> &ComputationModel {
        &self.compute
    }

    /// The upload component.
    pub fn upload(&self) -> &UploadModel {
        &self.upload
    }

    /// `B₀ = c₀·n_k + c₁` — the per-epoch energy slope in Eq. 12.
    pub fn b0(&self) -> f64 {
        self.compute.c0 * self.n_k as f64 + self.compute.c1
    }

    /// `B₁ = ρ·n_k + e_U` — the per-round fixed energy in Eq. 12.
    pub fn b1(&self) -> f64 {
        self.data.rho * self.n_k as f64 + self.upload.e_u
    }

    /// Energy of one server participating in one round with `e` local
    /// epochs: `ρ·n + c₀·e·n + c₁·e + e_U = B₀·e + B₁`.
    pub fn per_server_round_joules(&self, e: usize) -> f64 {
        self.b0() * e as f64 + self.b1()
    }

    /// Total system energy `ê(E, K, T) = T·K·(B₀E + B₁)` (problem (6a) with
    /// homogeneous servers).
    pub fn system_energy_joules(&self, e: usize, k: usize, t: usize) -> f64 {
        self.system_energy_joules_f(e as f64, k as f64, t as f64)
    }

    /// Continuous-domain version used inside the optimizer.
    pub fn system_energy_joules_f(&self, e: f64, k: f64, t: f64) -> f64 {
        t * k * (self.b0() * e + self.b1())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_collection_is_linear() {
        let m = DataCollectionModel::new(0.5).unwrap();
        assert_eq!(m.energy_joules(0), 0.0);
        assert_eq!(m.energy_joules(10), 5.0);
        assert_eq!(m.rho(), 0.5);
    }

    #[test]
    fn nb_iot_default_matches_constants() {
        let m = DataCollectionModel::nb_iot_default();
        assert!((m.rho() - 7.74e-3 * 785.0).abs() < 1e-12);
    }

    #[test]
    fn computation_follows_eq5() {
        let m = ComputationModel::new(2.0, 3.0).unwrap();
        // c0*E*n + c1*E = 2*4*10 + 3*4 = 92.
        assert_eq!(m.energy_joules(4, 10), 92.0);
        assert_eq!(m.energy_joules(0, 10), 0.0);
    }

    #[test]
    fn paper_fit_constants() {
        let m = ComputationModel::paper_fit();
        assert_eq!(m.c0(), 7.79e-5);
        assert_eq!(m.c1(), 3.34e-3);
    }

    #[test]
    fn upload_default_is_plausible() {
        let e = UploadModel::wifi_default().e_u();
        // Millijoule-to-sub-joule scale for a 62.8 kB payload.
        assert!(e > 0.01 && e < 1.0, "e_U = {e}");
    }

    #[test]
    fn from_link_at_the_default_payload_matches_wifi_default() {
        // The same 62.8 kB payload over the same WiFi uplink preset must
        // reproduce the constant-e_U default (up to the link's clock
        // granularity).
        let payload_bytes = (784 * 10 + 10) * 8;
        let derived = UploadModel::from_link(&fei_net::Link::wifi_uplink(), payload_bytes).unwrap();
        let constant = UploadModel::wifi_default();
        assert!(
            (derived.e_u() - constant.e_u()).abs() < 1e-6,
            "derived {} vs constant {}",
            derived.e_u(),
            constant.e_u()
        );
    }

    #[test]
    fn from_link_scales_with_payload_bytes() {
        let link = fei_net::Link::wifi_uplink();
        let full = UploadModel::from_link(&link, 62_800).unwrap().e_u();
        let q8 = UploadModel::from_link(&link, 8_100).unwrap().e_u();
        assert!(q8 < full, "q8 {q8} vs full {full}");
        // Both still pay the 2 ms setup airtime.
        assert!(q8 > 5.015 * 0.002);
    }

    #[test]
    fn with_upload_moves_only_b1() {
        let base = RoundEnergyModel::paper_default();
        let cheap = base.with_upload(UploadModel::new(0.01).unwrap());
        assert_eq!(base.b0(), cheap.b0());
        assert!(cheap.b1() < base.b1());
        // ρ·n ≈ 18 kJ dominates b1, so the subtraction cancels ~4 ulp of it.
        assert!((base.b1() - cheap.b1() - (base.upload().e_u() - 0.01)).abs() < 1e-9);
    }

    #[test]
    fn b0_b1_compose_components() {
        let m = RoundEnergyModel::new(
            DataCollectionModel::new(0.1).unwrap(),
            ComputationModel::new(0.01, 0.5).unwrap(),
            UploadModel::new(2.0).unwrap(),
            100,
        )
        .unwrap();
        assert!((m.b0() - (0.01 * 100.0 + 0.5)).abs() < 1e-12);
        assert!((m.b1() - (0.1 * 100.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn per_server_round_decomposes() {
        let m = RoundEnergyModel::paper_default();
        let e = 5;
        let by_parts = m.data().energy_joules(m.n_k())
            + m.compute().energy_joules(e, m.n_k())
            + m.upload().e_u();
        assert!((m.per_server_round_joules(e) - by_parts).abs() < 1e-9);
    }

    #[test]
    fn system_energy_scales_multiplicatively() {
        let m = RoundEnergyModel::paper_default();
        let base = m.system_energy_joules(2, 3, 5);
        assert!((m.system_energy_joules(2, 6, 5) - 2.0 * base).abs() < 1e-9);
        assert!((m.system_energy_joules(2, 3, 10) - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn integer_and_continuous_agree() {
        let m = RoundEnergyModel::paper_default();
        assert_eq!(
            m.system_energy_joules(3, 4, 7),
            m.system_energy_joules_f(3.0, 4.0, 7.0)
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(DataCollectionModel::new(-1.0).is_err());
        assert!(ComputationModel::new(-1.0, 0.0).is_err());
        assert!(ComputationModel::new(0.0, 0.0).is_err());
        assert!(UploadModel::new(f64::NAN).is_err());
        assert!(RoundEnergyModel::new(
            DataCollectionModel::nb_iot_default(),
            ComputationModel::paper_fit(),
            UploadModel::wifi_default(),
            0,
        )
        .is_err());
    }
}
