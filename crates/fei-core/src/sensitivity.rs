//! Sensitivity analysis: how the optimal operating point moves with the
//! system parameters.
//!
//! The paper fixes one prototype and reports one optimum; these sweeps make
//! the *mechanism* visible — e.g. raising the fixed per-round cost `B₁`
//! pushes `E*` up (batch more local work per round), while raising the
//! gradient-variance constant `A₁` pushes `K*` up (average more clients).
//! The `sensitivity` bench binary prints these tables; the tests pin the
//! directions.

use serde::{Deserialize, Serialize};

use crate::acs::AcsOptimizer;
use crate::bound::ConvergenceBound;
use crate::energy::RoundEnergyModel;
use crate::error::CoreError;
use crate::objective::EnergyObjective;

/// One sweep point: a parameter value and the re-optimized plan at it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// The swept parameter's value at this point.
    pub value: f64,
    /// Optimal `K`.
    pub k: usize,
    /// Optimal `E`.
    pub e: usize,
    /// Round budget at the optimum.
    pub t: usize,
    /// Energy at the optimum, joules.
    pub energy: f64,
    /// Savings fraction versus the `K = 1, E = 1` baseline, when that
    /// baseline is feasible.
    pub savings: Option<f64>,
}

/// A parameter sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityReport {
    /// Human-readable name of the swept parameter.
    pub parameter: String,
    /// Sweep points in input order (infeasible values are skipped).
    pub points: Vec<SensitivityPoint>,
}

/// The base system a sweep perturbs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensitivityBase {
    /// Per-round energy model.
    pub energy: RoundEnergyModel,
    /// Convergence-bound constants.
    pub bound: ConvergenceBound,
    /// Accuracy (loss-gap) target.
    pub epsilon: f64,
    /// Fleet size.
    pub n: usize,
}

impl SensitivityBase {
    fn solve(
        &self,
        b0: f64,
        b1: f64,
        bound: ConvergenceBound,
        epsilon: f64,
        n: usize,
        value: f64,
    ) -> Option<SensitivityPoint> {
        let objective = EnergyObjective::new(bound, b0, b1, epsilon, n).ok()?;
        let solution = AcsOptimizer::default()
            .solve(&objective, n as f64, 1.0)
            .ok()?;
        let savings = objective
            .eval_integer(1, 1)
            .map(|(_, baseline)| 1.0 - solution.energy / baseline);
        Some(SensitivityPoint {
            value,
            k: solution.k,
            e: solution.e,
            t: solution.t,
            energy: solution.energy,
            savings,
        })
    }

    /// Sweeps the fixed per-round cost `B₁` through `multipliers` of its base
    /// value. Models making communication cheaper/more expensive (payload
    /// size, radio efficiency, collection regime).
    pub fn sweep_b1(&self, multipliers: &[f64]) -> SensitivityReport {
        let points = multipliers
            .iter()
            .filter_map(|&m| {
                self.solve(
                    self.energy.b0(),
                    self.energy.b1() * m,
                    self.bound,
                    self.epsilon,
                    self.n,
                    m,
                )
            })
            .collect();
        SensitivityReport {
            parameter: "B1 multiplier (per-round fixed cost)".into(),
            points,
        }
    }

    /// Sweeps the gradient-variance constant `A₁` through `multipliers` —
    /// the data-heterogeneity dial: IID fleets have small `A₁`, skewed
    /// fleets large `A₁`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the base bound cannot be
    /// rebuilt (cannot happen for a valid base).
    pub fn sweep_a1(&self, multipliers: &[f64]) -> Result<SensitivityReport, CoreError> {
        let mut points = Vec::new();
        for &m in multipliers {
            let bound =
                ConvergenceBound::new(self.bound.a0(), self.bound.a1() * m, self.bound.a2())?;
            if let Some(p) = self.solve(
                self.energy.b0(),
                self.energy.b1(),
                bound,
                self.epsilon,
                self.n,
                m,
            ) {
                points.push(p);
            }
        }
        Ok(SensitivityReport {
            parameter: "A1 multiplier (gradient variance)".into(),
            points,
        })
    }

    /// Sweeps the accuracy target `ε` through the given absolute values.
    pub fn sweep_epsilon(&self, epsilons: &[f64]) -> SensitivityReport {
        let points = epsilons
            .iter()
            .filter_map(|&eps| {
                self.solve(
                    self.energy.b0(),
                    self.energy.b1(),
                    self.bound,
                    eps,
                    self.n,
                    eps,
                )
            })
            .collect();
        SensitivityReport {
            parameter: "epsilon (accuracy target)".into(),
            points,
        }
    }

    /// Sweeps the fleet size `N`.
    pub fn sweep_fleet(&self, sizes: &[usize]) -> SensitivityReport {
        let points = sizes
            .iter()
            .filter_map(|&n| {
                self.solve(
                    self.energy.b0(),
                    self.energy.b1(),
                    self.bound,
                    self.epsilon,
                    n,
                    n as f64,
                )
            })
            .collect();
        SensitivityReport {
            parameter: "N (fleet size)".into(),
            points,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SensitivityBase {
        // A pre-loaded-prototype-style model (no NB-IoT collection term, so
        // B1 is not boundary-dominant) and an A0 large enough that the
        // optimal round budget stays interior (away from the T = 1 ceiling
        // where E* is pinned).
        let energy = RoundEnergyModel::new(
            crate::energy::DataCollectionModel::new(0.0).unwrap(),
            crate::energy::ComputationModel::paper_fit(),
            crate::energy::UploadModel::new(0.136).unwrap(),
            3_000,
        )
        .unwrap();
        SensitivityBase {
            energy,
            bound: ConvergenceBound::new(50.0, 0.05, 1e-4).unwrap(),
            epsilon: 0.1,
            n: 20,
        }
    }

    #[test]
    fn pricier_rounds_push_e_up() {
        let report = base().sweep_b1(&[0.1, 1.0, 10.0, 100.0]);
        assert_eq!(report.points.len(), 4);
        let es: Vec<usize> = report.points.iter().map(|p| p.e).collect();
        assert!(
            es.windows(2).all(|w| w[0] <= w[1]),
            "E* should be non-decreasing in B1: {es:?}"
        );
        assert!(es[3] > es[0], "two-decade B1 shift must move E*: {es:?}");
    }

    #[test]
    fn heterogeneity_pushes_k_up() {
        let report = base().sweep_a1(&[0.1, 1.0, 5.0, 20.0]).unwrap();
        let ks: Vec<usize> = report.points.iter().map(|p| p.k).collect();
        assert!(
            ks.windows(2).all(|w| w[0] <= w[1]),
            "K* should be non-decreasing in A1: {ks:?}"
        );
        assert!(
            ks.last().unwrap() > ks.first().unwrap(),
            "A1 shift must move K*: {ks:?}"
        );
    }

    #[test]
    fn tighter_targets_cost_more_energy() {
        let report = base().sweep_epsilon(&[0.4, 0.2, 0.1, 0.06]);
        let energies: Vec<f64> = report.points.iter().map(|p| p.energy).collect();
        assert!(
            energies.windows(2).all(|w| w[0] <= w[1] + 1e-9),
            "energy should rise as eps tightens: {energies:?}"
        );
    }

    #[test]
    fn infeasible_sweep_values_are_skipped() {
        // eps below the K=N floor A1/N = 0.0025 is infeasible.
        let report = base().sweep_epsilon(&[0.1, 0.001]);
        assert_eq!(report.points.len(), 1);
        assert_eq!(report.points[0].value, 0.1);
    }

    #[test]
    fn fleet_sweep_reports_all_sizes() {
        let report = base().sweep_fleet(&[2, 10, 50]);
        assert_eq!(report.points.len(), 3);
        // Larger fleets can only help (weakly) — the optimum is never worse.
        let energies: Vec<f64> = report.points.iter().map(|p| p.energy).collect();
        assert!(
            energies.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "{energies:?}"
        );
    }

    #[test]
    fn savings_are_reported_when_baseline_feasible() {
        let report = base().sweep_b1(&[1.0]);
        let p = report.points[0];
        assert!(p.savings.is_some());
        assert!(p.savings.unwrap() >= 0.0);
    }
}
