//! Alternate Convex Search (Algorithm 1).
//!
//! Theorem 1 establishes that `ê(K, E)` is strictly biconvex, so the ACS
//! scheme of Gorski, Pfeuffer & Klamroth (2007) — alternately minimizing the
//! closed-form `K*` (Eq. 15) and `E*` (exact stationary point) — converges
//! monotonically to a partial optimum. The search runs on the continuous
//! relaxation and finishes with a local integer refinement, evaluating the
//! *integer* objective (whole rounds `T = ⌈T*⌉`) on the neighbourhood of the
//! continuous solution.

use serde::{Deserialize, Serialize};

use crate::error::CoreError;
use crate::objective::EnergyObjective;

/// One continuous ACS iterate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcsIterate {
    /// `K` after this iteration.
    pub k: f64,
    /// `E` after this iteration.
    pub e: f64,
    /// Objective value `ê(K, E)`.
    pub energy: f64,
}

/// The result of an ACS run: integer operating point plus the continuous
/// trajectory that produced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcsSolution {
    /// Optimal number of participating servers per round.
    pub k: usize,
    /// Optimal local epochs per round.
    pub e: usize,
    /// Round budget `⌈T*(K, E)⌉` at the integer optimum.
    pub t: usize,
    /// Total energy at the integer optimum, joules.
    pub energy: f64,
    /// Continuous `K` before integer refinement.
    pub continuous_k: f64,
    /// Continuous `E` before integer refinement.
    pub continuous_e: f64,
    /// Number of ACS iterations performed.
    pub iterations: usize,
    /// The continuous trajectory, one entry per iteration.
    pub trajectory: Vec<AcsIterate>,
}

/// The ACS driver (Algorithm 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcsOptimizer {
    /// Target residual `ξ`: stop when successive objective values differ by
    /// less than this.
    pub residual: f64,
    /// Iteration cap (safety net; convergence is typically < 10 iterations).
    pub max_iterations: usize,
    /// Cap on `E` during the integer refinement sweep (the feasible region
    /// may end earlier; with `A₂ = 0` it never does).
    pub e_cap: usize,
}

impl Default for AcsOptimizer {
    fn default() -> Self {
        Self {
            residual: 1e-9,
            max_iterations: 100,
            e_cap: 10_000,
        }
    }
}

impl AcsOptimizer {
    /// Runs ACS from the initial point `(k0, e0)`.
    ///
    /// The initial point is projected into the feasible region first (the
    /// paper's search domains `𝒵_K`, `𝒵_E`). Iteration alternates
    /// Step 1 (`K ← K*(E)`, Eq. 15) and Step 2 (`E ← E*(K)`) until the
    /// objective decrease falls below `ξ`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] when no feasible `(K, E)` exists
    /// (cannot happen if `objective` was constructed successfully, since
    /// construction checks `K = N, E = 1`).
    pub fn solve(
        &self,
        objective: &EnergyObjective,
        k0: f64,
        e0: f64,
    ) -> Result<AcsSolution, CoreError> {
        let n = objective.n() as f64;

        // Project the start into the feasible box.
        let mut k = k0.clamp(1.0, n);
        let mut e = e0.max(1.0);
        if !objective.eval(k, e).is_finite() {
            // Fall back to the always-feasible corner E = 1 with the largest
            // feasible K (construction guarantees (N, 1) is feasible).
            e = 1.0;
            k = objective.k_star(e).unwrap_or(n);
        }

        let mut energy = objective.eval(k, e);
        let mut trajectory = vec![AcsIterate { k, e, energy }];
        let mut iterations = 0;

        while iterations < self.max_iterations {
            iterations += 1;

            // Step 1: optimal K for the current E.
            if let Some(k_new) = objective.k_star(e) {
                k = k_new;
            }
            // Step 2: optimal E for the current K.
            if let Some(e_new) = objective.e_star_exact(k) {
                if e_new.is_finite() {
                    e = e_new;
                } else {
                    // A2 = 0: energy decreases monotonically in E; cap at a
                    // large practical epoch budget.
                    e = 10_000.0;
                }
            }

            let new_energy = objective.eval(k, e);
            trajectory.push(AcsIterate {
                k,
                e,
                energy: new_energy,
            });
            let delta = (energy - new_energy).abs();
            energy = new_energy;
            if delta <= self.residual {
                break;
            }
        }

        if !energy.is_finite() {
            return Err(CoreError::Infeasible {
                detail: "ACS could not locate a feasible point".into(),
            });
        }

        let (ik, ie, it, int_energy) = self.refine_integer(objective, k, e)?;
        Ok(AcsSolution {
            k: ik,
            e: ie,
            t: it,
            energy: int_energy,
            continuous_k: k,
            continuous_e: e,
            iterations,
            trajectory,
        })
    }

    /// Integer refinement by coordinate descent under the *integer*
    /// objective (whole rounds `T = ⌈T*⌉`).
    ///
    /// The ceiling on `T` perturbs the continuous landscape — when `T* < 1`
    /// the integer optimum can sit far from the continuous one — so instead
    /// of probing a fixed neighbourhood we alternate exhaustive
    /// per-coordinate scans (`K` over `[1, N]`, `E` over the feasible range
    /// up to `e_cap`), seeded from the rounded continuous point and the
    /// domain corners. Each sweep only improves the objective, so the
    /// descent terminates.
    fn refine_integer(
        &self,
        objective: &EnergyObjective,
        k: f64,
        e: f64,
    ) -> Result<(usize, usize, usize, f64), CoreError> {
        let n = objective.n();
        let mut seeds = vec![
            (
                k.round().clamp(1.0, n as f64) as usize,
                e.round().max(1.0) as usize,
            ),
            (1, 1),
            (n, 1),
        ];
        // One seed per K on the continuous per-coordinate optimal curve.
        // Because each seed's first E-sweep is exhaustive over the feasible
        // range, covering every K guarantees the descent visits the global
        // integer optimum's basin.
        for kk in 1..=n {
            if let Some(e_star) = objective.e_star_exact(kk as f64) {
                let e_seed = if e_star.is_finite() {
                    e_star.round().max(1.0) as usize
                } else {
                    self.e_cap
                };
                seeds.push((kk, e_seed));
            }
        }
        let mut best: Option<(usize, usize, usize, f64)> = None;
        for (mut kk, mut ee) in seeds {
            // Coordinate descent from this seed.
            for _sweep in 0..16 {
                let before = objective.eval_integer(kk, ee).map(|(_, en)| en);
                // E-sweep at fixed K.
                let e_hi = {
                    let em = objective.e_max(kk as f64);
                    if em.is_finite() {
                        (em.ceil() as usize).min(self.e_cap)
                    } else {
                        self.e_cap
                    }
                };
                if let Some((e_new, _)) = fei_math::optimize::minimize_over_integers(
                    |ecand| match objective.eval_integer(kk, ecand as usize) {
                        Some((_, en)) => en,
                        None => f64::INFINITY,
                    },
                    1,
                    e_hi.max(1) as u64,
                ) {
                    ee = e_new as usize;
                }
                // K-sweep at fixed E.
                if let Some((k_new, _)) = fei_math::optimize::minimize_over_integers(
                    |kcand| match objective.eval_integer(kcand as usize, ee) {
                        Some((_, en)) => en,
                        None => f64::INFINITY,
                    },
                    1,
                    n as u64,
                ) {
                    kk = k_new as usize;
                }
                let after = objective.eval_integer(kk, ee).map(|(_, en)| en);
                if before == after {
                    break;
                }
            }
            if let Some((t, energy)) = objective.eval_integer(kk, ee) {
                best = match best {
                    Some(b) if b.3 <= energy => Some(b),
                    _ => Some((kk, ee, t, energy)),
                };
            }
        }
        best.ok_or_else(|| CoreError::Infeasible {
            detail: format!("no feasible integer point near (K={k:.2}, E={e:.2})"),
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::bound::ConvergenceBound;

    use super::*;

    fn objective() -> EnergyObjective {
        let bound = ConvergenceBound::new(1.0, 0.05, 1e-4).unwrap();
        EnergyObjective::new(bound, 0.5, 2.0, 0.1, 20).unwrap()
    }

    #[test]
    fn converges_in_few_iterations() {
        let o = objective();
        let s = AcsOptimizer::default().solve(&o, 10.0, 10.0).unwrap();
        assert!(s.iterations < 20, "took {} iterations", s.iterations);
        assert!(s.energy.is_finite());
        assert!(s.k >= 1 && s.k <= 20);
        assert!(s.e >= 1);
        assert!(s.t >= 1);
    }

    #[test]
    fn trajectory_is_monotone_nonincreasing() {
        let o = objective();
        let s = AcsOptimizer::default().solve(&o, 20.0, 1.0).unwrap();
        for pair in s.trajectory.windows(2) {
            assert!(
                pair[1].energy <= pair[0].energy + 1e-9,
                "energy increased: {} -> {}",
                pair[0].energy,
                pair[1].energy
            );
        }
    }

    #[test]
    fn different_starts_reach_same_optimum() {
        // Biconvexity does not guarantee a unique partial optimum in
        // general, but this objective is well-behaved; all starts must agree.
        let o = objective();
        let opt = AcsOptimizer::default();
        let a = opt.solve(&o, 1.0, 1.0).unwrap();
        let b = opt.solve(&o, 20.0, 100.0).unwrap();
        let c = opt.solve(&o, 5.0, 50.0).unwrap();
        assert_eq!((a.k, a.e), (b.k, b.e));
        assert_eq!((a.k, a.e), (c.k, c.e));
    }

    #[test]
    fn solution_beats_paper_baseline() {
        let o = objective();
        let s = AcsOptimizer::default().solve(&o, 1.0, 1.0).unwrap();
        let (_, baseline) = o.eval_integer(1, 1).unwrap();
        assert!(
            s.energy <= baseline,
            "ACS {} should not exceed K=1,E=1 baseline {}",
            s.energy,
            baseline
        );
    }

    #[test]
    fn infeasible_start_is_projected() {
        let o = objective();
        // E = 5000 is far beyond e_max; ACS must recover.
        let s = AcsOptimizer::default().solve(&o, 10.0, 5_000.0).unwrap();
        assert!(s.energy.is_finite());
    }

    #[test]
    fn integer_energy_dominates_continuous() {
        let o = objective();
        let s = AcsOptimizer::default().solve(&o, 10.0, 10.0).unwrap();
        // Whole rounds can only cost at least the continuous relaxation's
        // global optimum.
        let cont = o.eval(s.continuous_k, s.continuous_e);
        assert!(s.energy >= cont - 1e-9);
    }

    #[test]
    fn a2_zero_runs_e_to_the_one_round_point() {
        let bound = ConvergenceBound::new(1.0, 0.05, 0.0).unwrap();
        let o = EnergyObjective::new(bound, 1e-9, 10.0, 0.1, 20).unwrap();
        let s = AcsOptimizer {
            e_cap: 500,
            ..Default::default()
        }
        .solve(&o, 5.0, 5.0)
        .unwrap();
        // Without a drift term extra epochs are almost free, and each
        // reduces T* — until the integer budget bottoms out at T = 1. With
        // K* = 1, T*(1, E) = 20/E, so the integer optimum is E = 20, T = 1.
        assert_eq!(s.t, 1);
        assert_eq!(s.e, 20);
        // The continuous relaxation kept pushing E toward the epoch cap.
        assert!(s.continuous_e > 500.0);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::bound::ConvergenceBound;

    use super::*;

    fn arb_objective() -> impl Strategy<Value = EnergyObjective> {
        (
            0.1f64..10.0,
            0.001f64..0.5,
            1e-5f64..1e-3,
            0.01f64..5.0,
            0.01f64..10.0,
            0.05f64..0.5,
            2usize..30,
        )
            .prop_filter_map("feasible objective", |(a0, a1, a2, b0, b1, eps, n)| {
                let bound = ConvergenceBound::new(a0, a1, a2).ok()?;
                EnergyObjective::new(bound, b0, b1, eps, n).ok()
            })
    }

    proptest! {
        /// ACS never increases the objective along its trajectory and always
        /// lands on a feasible integer point.
        #[test]
        fn acs_is_monotone_and_feasible(
            o in arb_objective(),
            k0 in 1.0f64..30.0,
            e0 in 1.0f64..100.0,
        ) {
            let s = AcsOptimizer::default().solve(&o, k0.min(o.n() as f64), e0).unwrap();
            for pair in s.trajectory.windows(2) {
                prop_assert!(pair[1].energy <= pair[0].energy + pair[0].energy.abs() * 1e-9 + 1e-9);
            }
            prop_assert!(o.eval_integer(s.k, s.e).is_some());
            let (t, energy) = o.eval_integer(s.k, s.e).unwrap();
            prop_assert_eq!(t, s.t);
            prop_assert!((energy - s.energy).abs() < 1e-9);
        }

        /// The ACS integer point never loses to the paper baseline (K=1,E=1)
        /// when that baseline is feasible.
        #[test]
        fn acs_beats_or_matches_baseline(o in arb_objective()) {
            let s = AcsOptimizer::default().solve(&o, 1.0, 1.0).unwrap();
            if let Some((_, baseline)) = o.eval_integer(1, 1) {
                prop_assert!(s.energy <= baseline + baseline * 1e-9);
            }
        }
    }
}
