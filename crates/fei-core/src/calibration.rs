//! Least-squares calibration of the EE-FEI model constants.
//!
//! Two fits close the loop between measurements and the optimizer:
//!
//! 1. **Timing/energy coefficients** (§VI-B): Table I gives the duration of
//!    the local-training step for a grid of `(E, n_k)`. The paper fits
//!    `time = a·E·n_k + b·E` and converts to energy with the 5.553 W
//!    training plateau, obtaining `c₀ = 7.79 × 10⁻⁵`, `c₁ = 3.34 × 10⁻³`.
//!    [`fit_timing_model`] reproduces that procedure.
//! 2. **Bound constants**: every training run yields loss-gap observations
//!    `gap ≈ A0/(T·E) + A1/K + A2·(E−1)` — linear in `(A0, A1, A2)`.
//!    [`fit_bound_constants`] solves the regression so the optimizer can be
//!    driven by measured convergence behaviour.

use fei_math::linalg::LeastSquares;
use fei_math::matrix::Matrix;
use serde::{Deserialize, Serialize};

use crate::bound::ConvergenceBound;
use crate::energy::ComputationModel;
use crate::error::CoreError;

/// One row of a Table-I-style timing measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingRow {
    /// Local epochs `E`.
    pub epochs: usize,
    /// Local dataset (mini-batch) size `n_k`.
    pub samples: usize,
    /// Measured duration of the local-training step, seconds.
    pub seconds: f64,
}

/// The fitted timing law `time = a·E·n + b·E`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingFit {
    /// Seconds per sample per epoch (`a`).
    pub seconds_per_sample_epoch: f64,
    /// Seconds of per-epoch overhead (`b`).
    pub seconds_per_epoch: f64,
    /// Root-mean-square error of the fit, seconds.
    pub rmse_seconds: f64,
}

impl TimingFit {
    /// Predicted step-(3) duration for `(E, n_k)`.
    pub fn predict_seconds(&self, epochs: usize, samples: usize) -> f64 {
        self.seconds_per_sample_epoch * epochs as f64 * samples as f64
            + self.seconds_per_epoch * epochs as f64
    }

    /// Converts the timing law to the energy law of Eq. 5 using the
    /// training-state power draw: `c₀ = a·P`, `c₁ = b·P`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] if the resulting coefficients
    /// are invalid (negative fit on degenerate data).
    pub fn to_computation_model(
        &self,
        training_power_watts: f64,
    ) -> Result<ComputationModel, CoreError> {
        ComputationModel::new(
            self.seconds_per_sample_epoch * training_power_watts,
            self.seconds_per_epoch * training_power_watts,
        )
    }
}

/// Fits the timing law to measured rows by ordinary least squares.
///
/// # Errors
///
/// Returns [`CoreError::CalibrationFailed`] with fewer than two rows or a
/// degenerate design (all rows proportional).
pub fn fit_timing_model(rows: &[TimingRow]) -> Result<TimingFit, CoreError> {
    if rows.len() < 2 {
        return Err(CoreError::CalibrationFailed {
            detail: format!("need at least 2 timing rows, got {}", rows.len()),
        });
    }
    let design_rows: Vec<Vec<f64>> = rows
        .iter()
        .map(|r| vec![r.epochs as f64 * r.samples as f64, r.epochs as f64])
        .collect();
    let refs: Vec<&[f64]> = design_rows.iter().map(Vec::as_slice).collect();
    let design = Matrix::from_rows(&refs);
    let targets: Vec<f64> = rows.iter().map(|r| r.seconds).collect();
    let fit = LeastSquares::fit(&design, &targets).map_err(|e| CoreError::CalibrationFailed {
        detail: format!("timing regression failed: {e}"),
    })?;
    Ok(TimingFit {
        seconds_per_sample_epoch: fit.coefficients()[0],
        seconds_per_epoch: fit.coefficients()[1],
        rmse_seconds: fit.rmse(rows.len()),
    })
}

/// One loss-gap observation from a training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapObservation {
    /// Global rounds completed when the gap was measured.
    pub rounds: usize,
    /// Local epochs per round in that run.
    pub epochs: usize,
    /// Participants per round in that run.
    pub clients: usize,
    /// Measured loss gap `F(ω_T) − F(ω*)`.
    pub gap: f64,
}

/// Fits `(A₀, A₁, A₂)` to gap observations by least squares on the linear
/// model `gap = A0·[1/(T·E)] + A1·[1/K] + A2·[E−1]`.
///
/// Small negative `A₁`/`A₂` estimates (possible under noise) are clamped to
/// zero; a non-positive `A₀` estimate fails the calibration, since it would
/// mean convergence without doing any optimization.
///
/// # Errors
///
/// Returns [`CoreError::CalibrationFailed`] with fewer than three
/// observations, a degenerate design, or a non-positive `A₀`.
pub fn fit_bound_constants(observations: &[GapObservation]) -> Result<ConvergenceBound, CoreError> {
    if observations.len() < 3 {
        return Err(CoreError::CalibrationFailed {
            detail: format!(
                "need at least 3 gap observations, got {}",
                observations.len()
            ),
        });
    }
    let design_rows: Vec<Vec<f64>> = observations
        .iter()
        .map(|o| {
            vec![
                1.0 / (o.rounds as f64 * o.epochs as f64),
                1.0 / o.clients as f64,
                o.epochs as f64 - 1.0,
            ]
        })
        .collect();
    let refs: Vec<&[f64]> = design_rows.iter().map(Vec::as_slice).collect();
    let design = Matrix::from_rows(&refs);
    let targets: Vec<f64> = observations.iter().map(|o| o.gap).collect();
    let fit = LeastSquares::fit(&design, &targets).map_err(|e| CoreError::CalibrationFailed {
        detail: format!("bound regression failed: {e}"),
    })?;
    let a0 = fit.coefficients()[0];
    let a1 = fit.coefficients()[1].max(0.0);
    let a2 = fit.coefficients()[2].max(0.0);
    if a0 <= 0.0 {
        return Err(CoreError::CalibrationFailed {
            detail: format!("fitted A0 = {a0} is non-positive; observations are inconsistent"),
        });
    }
    ConvergenceBound::new(a0, a1, a2)
}

/// The paper's Table I, verbatim: step-(3) durations on the Raspberry Pi 4B
/// prototype for `E ∈ {10, 20, 40}` × `n_k ∈ {100, 500, 1000, 2000}`.
pub fn paper_table1() -> Vec<TimingRow> {
    let data = [
        (10, 100, 0.0197),
        (10, 500, 0.0749),
        (10, 1000, 0.1471),
        (10, 2000, 0.2855),
        (20, 100, 0.0403),
        (20, 500, 0.1508),
        (20, 1000, 0.2912),
        (20, 2000, 0.5721),
        (40, 100, 0.0799),
        (40, 500, 0.3026),
        (40, 1000, 0.5554),
        (40, 2000, 1.1451),
    ];
    data.iter()
        .map(|&(epochs, samples, seconds)| TimingRow {
            epochs,
            samples,
            seconds,
        })
        .collect()
}

/// The training-state power plateau used to convert timings to energies
/// (§VI-B: 5.553 W).
pub const TRAINING_POWER_WATTS: f64 = 5.553;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_fit_recovers_paper_coefficients() {
        // The paper reports c0 = 7.79e-5 and c1 = 3.34e-3 from this exact
        // data and power. Least squares on Table I actually gives values in
        // that neighbourhood — we require agreement within 10 %.
        let fit = fit_timing_model(&paper_table1()).unwrap();
        let model = fit.to_computation_model(TRAINING_POWER_WATTS).unwrap();
        let c0_err = (model.c0() - 7.79e-5).abs() / 7.79e-5;
        assert!(
            c0_err < 0.10,
            "c0 = {} ({}% off)",
            model.c0(),
            c0_err * 100.0
        );
        let c1_err = (model.c1() - 3.34e-3).abs() / 3.34e-3;
        assert!(
            c1_err < 0.35,
            "c1 = {} ({}% off)",
            model.c1(),
            c1_err * 100.0
        );
    }

    #[test]
    fn timing_fit_predicts_table_rows() {
        let rows = paper_table1();
        let fit = fit_timing_model(&rows).unwrap();
        assert!(fit.rmse_seconds < 0.02, "rmse {}", fit.rmse_seconds);
        for row in &rows {
            let predicted = fit.predict_seconds(row.epochs, row.samples);
            assert!(
                (predicted - row.seconds).abs() < 0.05,
                "({}, {}): {} vs {}",
                row.epochs,
                row.samples,
                predicted,
                row.seconds
            );
        }
    }

    #[test]
    fn timing_fit_recovers_planted_law() {
        let (a, b) = (2e-5, 1e-3);
        let rows: Vec<TimingRow> = [10usize, 20, 40]
            .iter()
            .flat_map(|&e| {
                [100usize, 500, 1000].map(|n| TimingRow {
                    epochs: e,
                    samples: n,
                    seconds: a * e as f64 * n as f64 + b * e as f64,
                })
            })
            .collect();
        let fit = fit_timing_model(&rows).unwrap();
        assert!((fit.seconds_per_sample_epoch - a).abs() < 1e-10);
        assert!((fit.seconds_per_epoch - b).abs() < 1e-9);
        assert!(fit.rmse_seconds < 1e-10);
    }

    #[test]
    fn timing_fit_rejects_insufficient_data() {
        let r = TimingRow {
            epochs: 1,
            samples: 1,
            seconds: 1.0,
        };
        assert!(matches!(
            fit_timing_model(&[r]),
            Err(CoreError::CalibrationFailed { .. })
        ));
    }

    #[test]
    fn timing_fit_rejects_degenerate_design() {
        // Two proportional rows: rank-1 design.
        let rows = [
            TimingRow {
                epochs: 10,
                samples: 100,
                seconds: 0.1,
            },
            TimingRow {
                epochs: 20,
                samples: 100,
                seconds: 0.2,
            },
        ];
        assert!(matches!(
            fit_timing_model(&rows),
            Err(CoreError::CalibrationFailed { .. })
        ));
    }

    #[test]
    fn bound_fit_recovers_planted_constants() {
        let (a0, a1, a2) = (2.0, 0.08, 5e-4);
        let mut obs = Vec::new();
        for &t in &[10usize, 50, 200] {
            for &e in &[1usize, 10, 40] {
                for &k in &[1usize, 5, 20] {
                    obs.push(GapObservation {
                        rounds: t,
                        epochs: e,
                        clients: k,
                        gap: a0 / (t as f64 * e as f64) + a1 / k as f64 + a2 * (e as f64 - 1.0),
                    });
                }
            }
        }
        let bound = fit_bound_constants(&obs).unwrap();
        assert!((bound.a0() - a0).abs() < 1e-8);
        assert!((bound.a1() - a1).abs() < 1e-9);
        assert!((bound.a2() - a2).abs() < 1e-10);
    }

    #[test]
    fn bound_fit_clamps_small_negative_noise() {
        // Planted A1 = 0, noisy targets may push the estimate negative; the
        // result must still be a valid bound.
        let mut obs = Vec::new();
        for (i, &t) in [10usize, 20, 50, 100, 200, 400].iter().enumerate() {
            let noise = if i % 2 == 0 { 1e-6 } else { -1e-6 };
            obs.push(GapObservation {
                rounds: t,
                epochs: 1 + i,
                clients: 1 + i,
                gap: 3.0 / (t as f64 * (1 + i) as f64) + noise,
            });
        }
        let bound = fit_bound_constants(&obs).unwrap();
        assert!(bound.a1() >= 0.0);
        assert!(bound.a2() >= 0.0);
        assert!((bound.a0() - 3.0).abs() < 0.1);
    }

    #[test]
    fn bound_fit_rejects_insufficient_observations() {
        let o = GapObservation {
            rounds: 1,
            epochs: 1,
            clients: 1,
            gap: 0.1,
        };
        assert!(matches!(
            fit_bound_constants(&[o, o]),
            Err(CoreError::CalibrationFailed { .. })
        ));
    }

    #[test]
    fn bound_fit_rejects_nonpositive_a0() {
        // Plant A0 = -0.5 (gaps that *shrink* as 1/(TE) grows): the fit
        // recovers it exactly and must refuse it.
        let mut obs = Vec::new();
        for &t in &[20usize, 50, 100, 200] {
            for &e in &[1usize, 4] {
                for &k in &[2usize, 8] {
                    obs.push(GapObservation {
                        rounds: t,
                        epochs: e,
                        clients: k,
                        gap: -0.5 / (t as f64 * e as f64)
                            + 0.2 / k as f64
                            + 0.01 * (e as f64 - 1.0),
                    });
                }
            }
        }
        assert!(matches!(
            fit_bound_constants(&obs),
            Err(CoreError::CalibrationFailed { .. })
        ));
    }

    #[test]
    fn table1_has_twelve_rows_matching_paper_grid() {
        let rows = paper_table1();
        assert_eq!(rows.len(), 12);
        assert!(rows.iter().all(|r| [10, 20, 40].contains(&r.epochs)));
        assert!(rows
            .iter()
            .all(|r| [100, 500, 1000, 2000].contains(&r.samples)));
        // Durations increase with n_k within each E block.
        for block in rows.chunks(4) {
            for pair in block.windows(2) {
                assert!(pair[1].seconds > pair[0].seconds);
            }
        }
    }
}
