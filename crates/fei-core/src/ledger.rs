//! Energy ledger separating useful spend from waste.
//!
//! The paper's objective minimizes total system energy, implicitly assuming
//! every joule advances the model. Under faults that assumption breaks:
//! abandoned rounds burn collection, training, and upload energy for zero
//! model progress, and lossy uplinks burn energy on retransmissions. The
//! [`EnergyLedger`] makes that split explicit so fault campaigns can report
//! *useful* energy-to-accuracy next to raw totals.

use serde::{Deserialize, Serialize};

/// What a charged joule bought.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnergyUse {
    /// Spend from a committed round — it moved the global model.
    Useful,
    /// Spend from a failed or abandoned round — no model progress.
    Wasted,
    /// Spend on upload retransmissions (lost or corrupted frames).
    Retransmit,
    /// Spend by (or on) compromised devices: adversarial training and
    /// uploads, and the energy burned producing updates the coordinator's
    /// screen rejected. It bought no progress — arguably negative progress.
    Poisoned,
    /// Spend on coordinator-protocol control frames: join handshakes,
    /// heartbeats, selection notices, and commit/abort broadcasts. Pure
    /// coordination overhead — it keeps the fleet coherent but moves no
    /// model bytes.
    Control,
}

/// One charge against the ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Global round the charge belongs to.
    pub round: usize,
    /// Classification of the spend.
    pub usage: EnergyUse,
    /// Amount, joules.
    pub joules: f64,
    /// What the energy was spent on (e.g. `"training"`, `"upload"`).
    pub label: &'static str,
}

/// An append-only account of where a campaign's energy went.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyLedger {
    entries: Vec<LedgerEntry>,
    useful_j: f64,
    wasted_j: f64,
    retransmit_j: f64,
    poisoned_j: f64,
    #[serde(default)]
    control_j: f64,
}

impl EnergyLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `joules` of `usage` energy to `round`.
    ///
    /// # Panics
    ///
    /// Panics on a negative or non-finite charge — the ledger only ever
    /// accumulates physically spent energy.
    pub fn charge(&mut self, round: usize, usage: EnergyUse, joules: f64, label: &'static str) {
        assert!(
            joules.is_finite() && joules >= 0.0,
            "energy charge must be finite and non-negative, got {joules}"
        );
        match usage {
            EnergyUse::Useful => self.useful_j += joules,
            EnergyUse::Wasted => self.wasted_j += joules,
            EnergyUse::Retransmit => self.retransmit_j += joules,
            EnergyUse::Poisoned => self.poisoned_j += joules,
            EnergyUse::Control => self.control_j += joules,
        }
        self.entries.push(LedgerEntry {
            round,
            usage,
            joules,
            label,
        });
    }

    /// All charges, in the order they were made.
    pub fn entries(&self) -> &[LedgerEntry] {
        &self.entries
    }

    /// Joules that advanced the model.
    pub fn useful_joules(&self) -> f64 {
        self.useful_j
    }

    /// Joules burned by failed or abandoned rounds.
    pub fn wasted_joules(&self) -> f64 {
        self.wasted_j
    }

    /// Joules burned re-sending lost or corrupted frames.
    pub fn retransmit_joules(&self) -> f64 {
        self.retransmit_j
    }

    /// Joules burned by compromised devices and screened-out updates.
    pub fn poisoned_joules(&self) -> f64 {
        self.poisoned_j
    }

    /// Joules spent on coordinator-protocol control frames.
    pub fn control_joules(&self) -> f64 {
        self.control_j
    }

    /// Everything spent, joules.
    pub fn total_joules(&self) -> f64 {
        self.useful_j + self.wasted_j + self.retransmit_j + self.poisoned_j + self.control_j
    }

    /// Fraction of total energy that bought no model progress (waste,
    /// retransmissions, poisoned spend, and protocol control traffic).
    /// Zero on an empty ledger.
    pub fn overhead_fraction(&self) -> f64 {
        let total = self.total_joules();
        // fei-lint: allow(float-eq, reason = "empty-ledger division guard: charges are validated non-negative, so zero total means no charges at all")
        if total == 0.0 {
            0.0
        } else {
            (self.wasted_j + self.retransmit_j + self.poisoned_j + self.control_j) / total
        }
    }

    /// Total charged to one round across all classifications.
    pub fn round_joules(&self, round: usize) -> f64 {
        self.entries
            .iter()
            .filter(|e| e.round == round)
            .map(|e| e.joules)
            .sum()
    }

    /// Folds another ledger's charges into this one.
    pub fn absorb(&mut self, other: &EnergyLedger) {
        self.entries.extend(other.entries.iter().cloned());
        self.useful_j += other.useful_j;
        self.wasted_j += other.wasted_j;
        self.retransmit_j += other.retransmit_j;
        self.poisoned_j += other.poisoned_j;
        self.control_j += other.control_j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_split_by_usage() {
        let mut ledger = EnergyLedger::new();
        ledger.charge(0, EnergyUse::Useful, 10.0, "training");
        ledger.charge(0, EnergyUse::Retransmit, 2.0, "upload");
        ledger.charge(1, EnergyUse::Wasted, 5.0, "abandoned round");
        ledger.charge(1, EnergyUse::Poisoned, 3.0, "screened update");
        assert_eq!(ledger.useful_joules(), 10.0);
        assert_eq!(ledger.wasted_joules(), 5.0);
        assert_eq!(ledger.retransmit_joules(), 2.0);
        assert_eq!(ledger.poisoned_joules(), 3.0);
        assert_eq!(ledger.total_joules(), 20.0);
        assert!((ledger.overhead_fraction() - 10.0 / 20.0).abs() < 1e-12);
    }

    #[test]
    fn per_round_accounting() {
        let mut ledger = EnergyLedger::new();
        ledger.charge(3, EnergyUse::Useful, 1.0, "a");
        ledger.charge(3, EnergyUse::Wasted, 2.0, "b");
        ledger.charge(4, EnergyUse::Useful, 4.0, "c");
        assert_eq!(ledger.round_joules(3), 3.0);
        assert_eq!(ledger.round_joules(4), 4.0);
        assert_eq!(ledger.round_joules(5), 0.0);
    }

    #[test]
    fn control_charges_are_tracked_and_count_as_overhead() {
        let mut ledger = EnergyLedger::new();
        ledger.charge(0, EnergyUse::Useful, 8.0, "training");
        ledger.charge(0, EnergyUse::Control, 2.0, "heartbeats");
        assert_eq!(ledger.control_joules(), 2.0);
        assert_eq!(ledger.total_joules(), 10.0);
        assert!((ledger.overhead_fraction() - 0.2).abs() < 1e-12);
        let mut other = EnergyLedger::new();
        other.charge(1, EnergyUse::Control, 3.0, "selection notices");
        ledger.absorb(&other);
        assert_eq!(ledger.control_joules(), 5.0);
        assert_eq!(ledger.round_joules(1), 3.0);
    }

    #[test]
    fn empty_ledger_has_zero_overhead() {
        assert_eq!(EnergyLedger::new().overhead_fraction(), 0.0);
        assert_eq!(EnergyLedger::new().total_joules(), 0.0);
    }

    #[test]
    fn absorb_merges_everything() {
        let mut a = EnergyLedger::new();
        a.charge(0, EnergyUse::Useful, 1.0, "x");
        let mut b = EnergyLedger::new();
        b.charge(1, EnergyUse::Wasted, 2.0, "y");
        b.charge(1, EnergyUse::Retransmit, 0.5, "z");
        b.charge(2, EnergyUse::Poisoned, 0.25, "w");
        a.absorb(&b);
        assert_eq!(a.entries().len(), 4);
        assert_eq!(a.total_joules(), 3.75);
        assert_eq!(a.wasted_joules(), 2.0);
        assert_eq!(a.poisoned_joules(), 0.25);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_charge() {
        EnergyLedger::new().charge(0, EnergyUse::Useful, -1.0, "bad");
    }
}
