//! The biconvex energy objective `ê(K, E)` (Eq. 12) and its per-coordinate
//! minimizers (Eqs. 15 and 17).
//!
//! Substituting the round budget `T*(K, E)` of Eq. 11 into the system energy
//! `T·K·(B₀E + B₁)` eliminates `T`:
//!
//! ```text
//! ê(K, E) = A0·K² (B₀E + B₁) / ((ε·K − A1 − A2·K·(E−1)) · E)   (Eq. 12)
//! ```
//!
//! Lemmas 1–2 of the paper show `ê` is strictly convex in each coordinate on
//! the feasible region (Theorem 1: strictly biconvex), which licenses the
//! ACS search in [`crate::acs`].
//!
//! ## On `E*`
//!
//! Differentiating Eq. 12 in `E` gives the stationary condition
//!
//! ```text
//! A2·K·B0·E² + 2·A2·K·B1·E − B1·C4 = 0,   C4 = ε·K − A1 + A2·K
//! ```
//!
//! whose positive root is [`EnergyObjective::e_star_exact`]. The closed form
//! printed as Eq. 17 in the paper does not solve this equation (it appears to
//! be a typo); we provide it verbatim as
//! [`EnergyObjective::e_star_paper`] for comparison, and verify the exact
//! form against numeric golden-section search in the tests.

use serde::{Deserialize, Serialize};

use crate::bound::ConvergenceBound;
use crate::error::{require_non_negative, require_positive, CoreError};

/// The energy objective of problem (13a): minimize `ê(K, E)` subject to
/// `1 ≤ K ≤ N` and feasibility (13c).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyObjective {
    bound: ConvergenceBound,
    b0: f64,
    b1: f64,
    epsilon: f64,
    n: usize,
}

impl EnergyObjective {
    /// Creates the objective from bound constants, energy slopes
    /// `B₀ = c₀n + c₁` and `B₁ = ρn + e_U`, the accuracy target `ε`, and the
    /// fleet size `N`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] unless `B₀ > 0`, `B₁ ≥ 0`,
    /// `ε > 0`, and `N ≥ 1`, or [`CoreError::Infeasible`] when no `(K, E)`
    /// in the domain satisfies (13c) — i.e. even `K = N, E = 1` cannot reach
    /// `ε`.
    pub fn new(
        bound: ConvergenceBound,
        b0: f64,
        b1: f64,
        epsilon: f64,
        n: usize,
    ) -> Result<Self, CoreError> {
        require_positive("b0", b0)?;
        require_non_negative("b1", b1)?;
        require_positive("epsilon", epsilon)?;
        if n == 0 {
            return Err(CoreError::invalid("n", "need at least one edge server"));
        }
        if !bound.is_feasible(epsilon, n as f64, 1.0) {
            return Err(CoreError::Infeasible {
                detail: format!(
                    "even K = N = {n}, E = 1 cannot reach epsilon = {epsilon}: asymptotic gap {}",
                    bound.asymptotic_gap(1.0, n as f64)
                ),
            });
        }
        Ok(Self {
            bound,
            b0,
            b1,
            epsilon,
            n,
        })
    }

    /// The convergence bound in use.
    pub fn bound(&self) -> &ConvergenceBound {
        &self.bound
    }

    /// `B₀`, joules per epoch per server-round.
    pub fn b0(&self) -> f64 {
        self.b0
    }

    /// `B₁`, fixed joules per server-round.
    pub fn b1(&self) -> f64 {
        self.b1
    }

    /// The accuracy target `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The fleet size `N` (upper limit of `K`).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Evaluates `ê(K, E)` (Eq. 12) on the continuous domain. Returns
    /// `f64::INFINITY` outside the feasible region (`K < 1`, `E < 1`, or
    /// (13c) violated) — the convention the numeric minimizers rely on.
    pub fn eval(&self, k: f64, e: f64) -> f64 {
        if !(k >= 1.0 && e >= 1.0) {
            return f64::INFINITY;
        }
        match self.bound.t_star(self.epsilon, k, e) {
            Some(t) => t * k * (self.b0 * e + self.b1),
            None => f64::INFINITY,
        }
    }

    /// Evaluates the *integer* objective: rounds `T` up to a whole number of
    /// global rounds. Returns `(T, energy)` or `None` when infeasible.
    pub fn eval_integer(&self, k: usize, e: usize) -> Option<(usize, f64)> {
        if k < 1 || k > self.n || e < 1 {
            return None;
        }
        let t = self.bound.t_star_rounds(self.epsilon, k, e)?;
        Some((t, t as f64 * k as f64 * (self.b0 * e as f64 + self.b1)))
    }

    /// Continuous minimizer of `ê(·, E)` (Eq. 15): `K* = 2·A1/(ε − A2(E−1))`
    /// clamped into the feasible part of `[1, N]`. Returns `None` when no
    /// `K ≤ N` is feasible at this `E`.
    pub fn k_star(&self, e: f64) -> Option<f64> {
        let c1 = self.epsilon - self.bound.a2() * (e - 1.0);
        if c1 <= 0.0 {
            return None;
        }
        // Feasibility requires K > A1/C1; nothing in [1, N] qualifies if
        // A1/C1 >= N.
        let k_min = self.bound.a1() / c1;
        if k_min >= self.n as f64 {
            return None;
        }
        let unclamped = 2.0 * self.bound.a1() / c1;
        // The objective is strictly convex in K on (k_min, ∞) with its
        // stationary point at 2·k_min; clamp into the feasible box. When
        // A1 = 0 the objective is increasing in K, so K* = 1.
        let lower = (k_min * (1.0 + 1e-9)).max(1.0);
        Some(unclamped.clamp(lower, self.n as f64))
    }

    /// Exact continuous minimizer of `ê(K, ·)`: the positive root of the
    /// stationary quadratic (see module docs), clamped to `[1, E_max)`.
    /// Returns `None` when `K` itself is infeasible (`ε·K ≤ A1`), and
    /// `f64::INFINITY` when `A₂ = 0` (the objective is then strictly
    /// decreasing in `E`).
    pub fn e_star_exact(&self, k: f64) -> Option<f64> {
        let a1 = self.bound.a1();
        let a2 = self.bound.a2();
        // Feasible at E = 1?
        if self.epsilon * k - a1 <= 0.0 {
            return None;
        }
        // fei-lint: allow(float-eq, reason = "A2 = 0 is a structural sentinel (no epoch penalty term), not a measured quantity")
        if a2 == 0.0 {
            return Some(f64::INFINITY);
        }
        // fei-lint: allow(float-eq, reason = "B1 = 0 is a structural sentinel (no fixed per-round cost), not a measured quantity")
        if self.b1 == 0.0 {
            // No fixed per-round cost: extra epochs only add energy.
            return Some(1.0);
        }
        let c4 = self.epsilon * k - a1 + a2 * k;
        let p = a2 * k * self.b0;
        let q = a2 * k * self.b1;
        // p·E² + 2·q·E − B1·C4 = 0 -> E = (−q + sqrt(q² + p·B1·C4)) / p.
        let root = (-q + (q * q + p * self.b1 * c4).sqrt()) / p;
        let e_max = self.bound.max_e(self.epsilon, k);
        Some(root.clamp(1.0, e_max * (1.0 - 1e-9)))
    }

    /// The paper's printed Eq. 17, verbatim:
    /// `E* = ((εK − A1 + A2K)·B1 − A2·B0·K) / (2·A2·B1·K)`, clamped at 1.
    /// Returns `None` when `A₂ = 0` or `B₁ = 0` (the formula divides by
    /// both).
    pub fn e_star_paper(&self, k: f64) -> Option<f64> {
        let a2 = self.bound.a2();
        // fei-lint: allow(float-eq, reason = "Eq. 17 divides by A2 and B1; exactly-zero terms are the structural sentinel")
        if a2 == 0.0 || self.b1 == 0.0 {
            return None;
        }
        let c4 = self.epsilon * k - self.bound.a1() + a2 * k;
        let raw = (c4 * self.b1 - a2 * self.b0 * k) / (2.0 * a2 * self.b1 * k);
        Some(raw.max(1.0))
    }

    /// Upper limit of the `E` search domain at `K` (exclusive).
    pub fn e_max(&self, k: f64) -> f64 {
        self.bound.max_e(self.epsilon, k)
    }
}

#[cfg(test)]
mod tests {
    use fei_math::convex::is_convex_on_grid;
    use fei_math::optimize::golden_section_min;

    use super::*;

    /// A representative objective: A0=1, A1=0.05, A2=1e-4, B0=0.5, B1=2,
    /// eps=0.1, N=20. Feasible everywhere interesting.
    fn objective() -> EnergyObjective {
        let bound = ConvergenceBound::new(1.0, 0.05, 1e-4).unwrap();
        EnergyObjective::new(bound, 0.5, 2.0, 0.1, 20).unwrap()
    }

    #[test]
    fn eval_matches_manual_eq12() {
        let o = objective();
        let (k, e) = (5.0, 10.0);
        let t = o.bound().t_star(0.1, k, e).unwrap();
        let manual = t * k * (0.5 * e + 2.0);
        assert!((o.eval(k, e) - manual).abs() < 1e-9);
    }

    #[test]
    fn eval_infinite_outside_domain() {
        let o = objective();
        assert_eq!(o.eval(0.5, 10.0), f64::INFINITY);
        assert_eq!(o.eval(5.0, 0.5), f64::INFINITY);
        // E beyond the drift limit: eps/A2 + 1 = 1001.
        assert_eq!(o.eval(5.0, 2_000.0), f64::INFINITY);
    }

    #[test]
    fn integer_eval_uses_ceiled_t() {
        let o = objective();
        let (t, energy) = o.eval_integer(5, 10).unwrap();
        let t_cont = o.bound().t_star(0.1, 5.0, 10.0).unwrap();
        assert_eq!(t, t_cont.ceil() as usize);
        assert!(energy >= o.eval(5.0, 10.0) - 1e-9);
        assert_eq!(o.eval_integer(0, 10), None);
        assert_eq!(o.eval_integer(21, 10), None);
    }

    #[test]
    fn objective_is_convex_in_k_for_fixed_e() {
        // Lemma 1.
        let o = objective();
        for e in [1.0, 5.0, 20.0, 100.0] {
            assert!(
                is_convex_on_grid(|k| o.eval(k, e), 1.0, 20.0, 64, 1e-9),
                "not convex in K at E = {e}"
            );
        }
    }

    #[test]
    fn objective_is_convex_in_e_for_fixed_k() {
        // Lemma 2.
        let o = objective();
        for k in [1.0, 5.0, 10.0, 20.0] {
            let e_hi = o.e_max(k).min(900.0);
            assert!(
                is_convex_on_grid(|e| o.eval(k, e), 1.0, e_hi, 64, 1e-9),
                "not convex in E at K = {k}"
            );
        }
    }

    #[test]
    fn k_star_agrees_with_golden_section() {
        let o = objective();
        for e in [1.0, 10.0, 50.0] {
            let closed = o.k_star(e).unwrap();
            let numeric = golden_section_min(|k| o.eval(k, e), 1.0, 20.0, 1e-10).x;
            assert!(
                (closed - numeric).abs() < 1e-3,
                "E={e}: closed {closed} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn e_star_exact_agrees_with_golden_section() {
        let o = objective();
        for k in [1.0, 5.0, 10.0, 20.0] {
            let closed = o.e_star_exact(k).unwrap();
            let e_hi = o.e_max(k) - 1e-6;
            let numeric = golden_section_min(|e| o.eval(k, e), 1.0, e_hi, 1e-10).x;
            assert!(
                (closed - numeric).abs() / numeric < 1e-4,
                "K={k}: closed {closed} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn e_star_paper_differs_from_exact_but_is_finite() {
        // Documents the Eq. 17 discrepancy: the printed formula is not the
        // stationary point, but both land in the feasible domain.
        let o = objective();
        let exact = o.e_star_exact(10.0).unwrap();
        let paper = o.e_star_paper(10.0).unwrap();
        assert!(paper >= 1.0 && paper.is_finite());
        assert!(exact >= 1.0 && exact.is_finite());
        // The exact stationary point always achieves energy <= the paper
        // formula's.
        assert!(o.eval(10.0, exact) <= o.eval(10.0, paper) + 1e-9);
    }

    #[test]
    fn k_star_clamps_to_one_when_variance_is_negligible() {
        // Tiny A1: adding servers only costs energy -> K* = 1.
        let bound = ConvergenceBound::new(1.0, 1e-6, 1e-4).unwrap();
        let o = EnergyObjective::new(bound, 0.5, 2.0, 0.1, 20).unwrap();
        assert_eq!(o.k_star(10.0), Some(1.0));
    }

    #[test]
    fn k_star_clamps_to_n_when_variance_dominates() {
        // Huge A1 relative to eps: need as many servers as possible.
        let bound = ConvergenceBound::new(1.0, 1.5, 1e-5).unwrap();
        let o = EnergyObjective::new(bound, 0.5, 2.0, 0.1, 20).unwrap();
        assert_eq!(o.k_star(1.0), Some(20.0));
    }

    #[test]
    fn k_star_none_when_e_too_large() {
        let o = objective();
        // E beyond eps/A2 + 1 = 1001: C1 <= 0.
        assert_eq!(o.k_star(1_500.0), None);
    }

    #[test]
    fn e_star_unbounded_without_drift_term() {
        let bound = ConvergenceBound::new(1.0, 0.05, 0.0).unwrap();
        let o = EnergyObjective::new(bound, 0.5, 2.0, 0.1, 20).unwrap();
        assert_eq!(o.e_star_exact(5.0), Some(f64::INFINITY));
        assert_eq!(o.e_star_paper(5.0), None);
    }

    #[test]
    fn e_star_one_without_fixed_round_cost() {
        let bound = ConvergenceBound::new(1.0, 0.05, 1e-4).unwrap();
        let o = EnergyObjective::new(bound, 0.5, 0.0, 0.1, 20).unwrap();
        assert_eq!(o.e_star_exact(5.0), Some(1.0));
    }

    #[test]
    fn construction_rejects_unreachable_target() {
        let bound = ConvergenceBound::new(1.0, 10.0, 1e-4).unwrap();
        // eps*N = 0.1*20 = 2 < A1 = 10: infeasible everywhere.
        let err = EnergyObjective::new(bound, 0.5, 2.0, 0.1, 20).unwrap_err();
        assert!(matches!(err, CoreError::Infeasible { .. }));
    }

    #[test]
    fn construction_rejects_bad_parameters() {
        let bound = ConvergenceBound::new(1.0, 0.05, 1e-4).unwrap();
        assert!(EnergyObjective::new(bound, 0.0, 2.0, 0.1, 20).is_err());
        assert!(EnergyObjective::new(bound, 0.5, -1.0, 0.1, 20).is_err());
        assert!(EnergyObjective::new(bound, 0.5, 2.0, 0.0, 20).is_err());
        assert!(EnergyObjective::new(bound, 0.5, 2.0, 0.1, 0).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use fei_math::optimize::golden_section_min;
    use proptest::prelude::*;

    use super::*;

    fn arb_objective() -> impl Strategy<Value = EnergyObjective> {
        (
            0.1f64..10.0,  // a0
            0.001f64..0.5, // a1
            1e-5f64..1e-3, // a2
            0.01f64..5.0,  // b0
            0.01f64..10.0, // b1
            0.05f64..0.5,  // epsilon
            2usize..30,    // n
        )
            .prop_filter_map(
                "objective must be feasible",
                |(a0, a1, a2, b0, b1, eps, n)| {
                    let bound = ConvergenceBound::new(a0, a1, a2).ok()?;
                    EnergyObjective::new(bound, b0, b1, eps, n).ok()
                },
            )
    }

    proptest! {
        /// Lemma 1 numerically: every K-slice is convex on the feasible box.
        #[test]
        fn k_slices_are_convex(o in arb_objective(), e in 1.0f64..100.0) {
            prop_assert!(fei_math::convex::is_convex_on_grid(
                |k| o.eval(k, e), 1.0, o.n() as f64, 32, 1e-6));
        }

        /// Eq. 15 against numeric search wherever K* exists.
        #[test]
        fn k_star_is_global_k_minimum(o in arb_objective(), e in 1.0f64..50.0) {
            if let Some(k_star) = o.k_star(e) {
                let numeric = golden_section_min(|k| o.eval(k, e), 1.0, o.n() as f64, 1e-9);
                prop_assert!(
                    o.eval(k_star, e) <= numeric.value + numeric.value.abs() * 1e-6 + 1e-9,
                    "closed-form {} worse than numeric {} (E={})",
                    o.eval(k_star, e), numeric.value, e
                );
            }
        }

        /// The exact E* beats every probed E at the same K.
        #[test]
        fn e_star_exact_is_e_minimum(o in arb_objective(), k_frac in 0.0f64..1.0) {
            let k = 1.0 + k_frac * (o.n() as f64 - 1.0);
            match o.e_star_exact(k) {
                Some(e_star) if e_star.is_finite() => {
                    let value = o.eval(k, e_star);
                    for probe in [1.0, 2.0, 5.0, 10.0, 50.0, 200.0] {
                        let pv = o.eval(k, probe);
                        prop_assert!(value <= pv + pv.abs() * 1e-9 + 1e-9,
                            "E*={} at K={} loses to E={}", e_star, k, probe);
                    }
                }
                _ => {}
            }
        }
    }
}
