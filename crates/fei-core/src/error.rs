//! Error type for EE-FEI model construction and optimization.

use std::error::Error;
use std::fmt;

/// Errors from building or optimizing EE-FEI models.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A model parameter violated its domain (message names the parameter).
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The convergence constraint (13c) cannot be satisfied anywhere in the
    /// search domain — the accuracy target is unreachable for this system.
    Infeasible {
        /// Human-readable description of the violated constraint.
        detail: String,
    },
    /// A calibration fit failed (degenerate design matrix, too few points).
    CalibrationFailed {
        /// Why the fit failed.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            CoreError::Infeasible { detail } => {
                write!(f, "accuracy target infeasible: {detail}")
            }
            CoreError::CalibrationFailed { detail } => {
                write!(f, "calibration failed: {detail}")
            }
        }
    }
}

impl Error for CoreError {}

impl CoreError {
    /// Shorthand for an [`CoreError::InvalidParameter`].
    pub fn invalid(name: &'static str, reason: impl Into<String>) -> Self {
        CoreError::InvalidParameter {
            name,
            reason: reason.into(),
        }
    }
}

/// Validates that `value` is finite and strictly positive.
pub(crate) fn require_positive(name: &'static str, value: f64) -> Result<(), CoreError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(CoreError::invalid(
            name,
            format!("must be finite and positive, got {value}"),
        ))
    }
}

/// Validates that `value` is finite and non-negative.
pub(crate) fn require_non_negative(name: &'static str, value: f64) -> Result<(), CoreError> {
    if value.is_finite() && value >= 0.0 {
        Ok(())
    } else {
        Err(CoreError::invalid(
            name,
            format!("must be finite and non-negative, got {value}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::invalid("epsilon", "must be positive");
        assert!(e.to_string().contains("epsilon"));
        let e = CoreError::Infeasible {
            detail: "A1 too large".into(),
        };
        assert!(e.to_string().contains("A1 too large"));
        let e = CoreError::CalibrationFailed {
            detail: "singular".into(),
        };
        assert!(e.to_string().contains("singular"));
    }

    #[test]
    fn validators() {
        assert!(require_positive("x", 1.0).is_ok());
        assert!(require_positive("x", 0.0).is_err());
        assert!(require_positive("x", f64::NAN).is_err());
        assert!(require_non_negative("x", 0.0).is_ok());
        assert!(require_non_negative("x", -1e-9).is_err());
        assert!(require_non_negative("x", f64::INFINITY).is_err());
    }
}
