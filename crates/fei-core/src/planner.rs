//! The high-level EE-FEI planning API.
//!
//! [`EeFeiPlanner`] composes the calibrated energy model and convergence
//! bound into the Eq. 12 objective, runs ACS, and reports the optimized
//! operating point next to the paper's `K = 1, E = 1` baseline — the
//! comparison behind the 49.8 % headline.

use serde::{Deserialize, Serialize};

use crate::acs::{AcsOptimizer, AcsSolution};
use crate::bound::ConvergenceBound;
use crate::energy::RoundEnergyModel;
use crate::error::CoreError;
use crate::objective::EnergyObjective;

/// An optimized EE-FEI operating point with its baseline comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EeFeiPlan {
    /// The ACS solution (optimal `K`, `E`, `T`, energy).
    pub solution: AcsSolution,
    /// Round budget of the `K = 1, E = 1` baseline.
    pub baseline_t: usize,
    /// Energy of the `K = 1, E = 1` baseline, joules.
    pub baseline_energy: f64,
    /// Fraction of baseline energy saved, in `[0, 1)` — the paper reports
    /// 0.498 for its prototype.
    pub savings_fraction: f64,
}

/// Composes energy model + bound + target into a solvable plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EeFeiPlanner {
    energy: RoundEnergyModel,
    bound: ConvergenceBound,
    epsilon: f64,
    n: usize,
    optimizer: AcsOptimizer,
}

impl EeFeiPlanner {
    /// Creates a planner for a fleet of `n` edge servers targeting loss gap
    /// `epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidParameter`] for a non-positive `epsilon`
    /// or zero fleet, and [`CoreError::Infeasible`] when even `K = N, E = 1`
    /// cannot reach the target.
    pub fn new(
        energy: RoundEnergyModel,
        bound: ConvergenceBound,
        epsilon: f64,
        n: usize,
    ) -> Result<Self, CoreError> {
        // Validate by constructing the objective once.
        let _ = EnergyObjective::new(bound, energy.b0(), energy.b1(), epsilon, n)?;
        Ok(Self {
            energy,
            bound,
            epsilon,
            n,
            optimizer: AcsOptimizer::default(),
        })
    }

    /// Replaces the ACS settings (residual `ξ`, iteration cap, refinement
    /// radius).
    pub fn with_optimizer(mut self, optimizer: AcsOptimizer) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// The Eq. 12 objective this planner optimizes.
    pub fn objective(&self) -> EnergyObjective {
        EnergyObjective::new(
            self.bound,
            self.energy.b0(),
            self.energy.b1(),
            self.epsilon,
            self.n,
        )
        .expect("invariant: the same objective was validated in EeFeiPlanner::new")
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &RoundEnergyModel {
        &self.energy
    }

    /// Planned fleet size `N`.
    pub fn fleet_size(&self) -> usize {
        self.n
    }

    /// Re-plans `(K*, E*)` for a fleet that shrank to `surviving_n` devices
    /// — the graceful-degradation path when crashes take edge servers out
    /// mid-campaign. The energy model, bound, and target are unchanged;
    /// only the fleet ceiling moves, so `K*` is re-optimized against the
    /// survivors.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when `surviving_n` is zero or grew
    /// beyond the planned fleet, and [`CoreError::Infeasible`] when the
    /// survivors cannot reach the accuracy target at all.
    pub fn replan_for_fleet(&self, surviving_n: usize) -> Result<EeFeiPlan, CoreError> {
        if surviving_n == 0 {
            return Err(CoreError::invalid(
                "surviving_n",
                "no devices survive; nothing to plan for",
            ));
        }
        if surviving_n > self.n {
            return Err(CoreError::invalid(
                "surviving_n",
                format!(
                    "surviving fleet {surviving_n} exceeds planned fleet {}",
                    self.n
                ),
            ));
        }
        Self::new(self.energy, self.bound, self.epsilon, surviving_n)?
            .with_optimizer(self.optimizer)
            .plan()
    }

    /// Re-plans `(K*, E*)` for a given uplink payload size: the constant
    /// `e_U` in `B₁ = ρ·n + e_U` (Eq. 12) is replaced by the energy `link`
    /// actually charges for `payload_bytes` — airtime power × duration plus
    /// `joules_per_byte × bytes`. This is the closing of the loop for wire
    /// compression: a smaller encoded model shrinks `B₁`, which shifts the
    /// optimizer away from batching local epochs and toward more frequent
    /// (now cheaper) rounds. Pass the true frame bytes per upload, e.g.
    /// `TransportStats::bytes_up / jobs` from a calibration run.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when the derived `e_U` is not a
    /// usable energy, and [`CoreError::Infeasible`] when the unchanged
    /// bound/target cannot be met (it never regresses from the original
    /// plan, since only `B₁` moves).
    pub fn replan_for_payload(
        &self,
        link: &fei_net::Link,
        payload_bytes: usize,
    ) -> Result<EeFeiPlan, CoreError> {
        let upload = crate::energy::UploadModel::from_link(link, payload_bytes)?;
        Self::new(
            self.energy.with_upload(upload),
            self.bound,
            self.epsilon,
            self.n,
        )?
        .with_optimizer(self.optimizer)
        .plan()
    }

    /// Re-plans `(K*, E*)` for a fleet under Byzantine attack: of
    /// `surviving_n` live devices, an estimated `attacker_fraction` ship
    /// updates the coordinator's screen will reject (or a robust rule will
    /// discard), so the *effective* fleet contributing model progress is
    /// `⌊surviving_n · (1 − attacker_fraction)⌋`. `K*` is re-optimized
    /// against that honest core — the expected screening loss is priced in
    /// as a reduction of usable parallelism, exactly as crashes are in
    /// [`EeFeiPlanner::replan_for_fleet`].
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] when `attacker_fraction` is outside
    /// `[0, 1)`, the effective fleet is empty, or `surviving_n` grew beyond
    /// the planned fleet; [`CoreError::Infeasible`] when the honest core
    /// cannot reach the accuracy target at all.
    pub fn replan_for_fleet_under_attack(
        &self,
        surviving_n: usize,
        attacker_fraction: f64,
    ) -> Result<EeFeiPlan, CoreError> {
        if !(0.0..1.0).contains(&attacker_fraction) {
            return Err(CoreError::invalid(
                "attacker_fraction",
                format!("attacker fraction must be in [0, 1), got {attacker_fraction}"),
            ));
        }
        let honest = (surviving_n as f64 * (1.0 - attacker_fraction)).floor() as usize;
        if honest == 0 {
            return Err(CoreError::invalid(
                "attacker_fraction",
                format!(
                    "no honest devices left: {surviving_n} survivors at \
                     attacker fraction {attacker_fraction}"
                ),
            ));
        }
        self.replan_for_fleet(honest.min(surviving_n))
    }

    /// Runs ACS and compares against the `K = 1, E = 1` baseline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Infeasible`] if the baseline `(1, 1)` is itself
    /// infeasible (then there is nothing to compare against; the solution
    /// alone can still be obtained via [`EeFeiPlanner::objective`] and
    /// [`AcsOptimizer::solve`]).
    pub fn plan(&self) -> Result<EeFeiPlan, CoreError> {
        let objective = self.objective();
        let solution = self.optimizer.solve(&objective, self.n as f64, 1.0)?;
        let (baseline_t, baseline_energy) =
            objective
                .eval_integer(1, 1)
                .ok_or_else(|| CoreError::Infeasible {
                    detail: "baseline K = 1, E = 1 cannot reach the accuracy target".into(),
                })?;
        let savings_fraction = if baseline_energy > 0.0 {
            (1.0 - solution.energy / baseline_energy).max(0.0)
        } else {
            0.0
        };
        Ok(EeFeiPlan {
            solution,
            baseline_t,
            baseline_energy,
            savings_fraction,
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::energy::{ComputationModel, DataCollectionModel, UploadModel};

    use super::*;

    fn planner() -> EeFeiPlanner {
        let energy = RoundEnergyModel::new(
            DataCollectionModel::new(0.01).unwrap(),
            ComputationModel::paper_fit(),
            UploadModel::wifi_default(),
            3_000,
        )
        .unwrap();
        let bound = ConvergenceBound::new(1.0, 0.05, 1e-4).unwrap();
        EeFeiPlanner::new(energy, bound, 0.1, 20).unwrap()
    }

    #[test]
    fn plan_beats_baseline() {
        let plan = planner().plan().unwrap();
        assert!(plan.solution.energy <= plan.baseline_energy);
        assert!((0.0..1.0).contains(&plan.savings_fraction));
        let recomputed = 1.0 - plan.solution.energy / plan.baseline_energy;
        assert!((plan.savings_fraction - recomputed).abs() < 1e-12);
    }

    #[test]
    fn optimized_e_exceeds_one_when_rounds_are_expensive() {
        // With a large fixed per-round cost B1, batching local work (E > 1)
        // must win — the mechanism behind the paper's 49.8 %.
        let plan = planner().plan().unwrap();
        assert!(plan.solution.e > 1, "E* = {}", plan.solution.e);
    }

    #[test]
    fn baseline_round_budget_matches_bound() {
        let p = planner();
        let plan = p.plan().unwrap();
        let t = p.objective().bound().t_star_rounds(0.1, 1, 1).unwrap();
        assert_eq!(plan.baseline_t, t);
    }

    #[test]
    fn infeasible_baseline_is_an_error() {
        // A1 = 1.5 > eps = 0.1 makes K = 1 infeasible while K = 20 works.
        let energy = RoundEnergyModel::paper_default();
        let bound = ConvergenceBound::new(1.0, 1.5, 1e-5).unwrap();
        let planner = EeFeiPlanner::new(energy, bound, 0.1, 20).unwrap();
        assert!(matches!(planner.plan(), Err(CoreError::Infeasible { .. })));
    }

    #[test]
    fn with_optimizer_overrides_settings() {
        let custom = AcsOptimizer {
            residual: 1e-3,
            max_iterations: 5,
            e_cap: 1_000,
        };
        let plan = planner().with_optimizer(custom).plan().unwrap();
        assert!(plan.solution.iterations <= 5);
    }

    #[test]
    fn replan_for_smaller_fleet_caps_k() {
        let p = planner();
        let degraded = p.replan_for_fleet(5).unwrap();
        assert!(degraded.solution.k <= 5, "K* = {}", degraded.solution.k);
        // Same-size replan reproduces the original plan exactly.
        assert_eq!(p.replan_for_fleet(20).unwrap(), p.plan().unwrap());
    }

    #[test]
    fn replan_rejects_empty_or_grown_fleet() {
        let p = planner();
        assert!(matches!(
            p.replan_for_fleet(0),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            p.replan_for_fleet(21),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn replan_under_attack_shrinks_to_the_honest_core() {
        let p = planner();
        // 20 survivors at 30% attackers → 14 honest devices cap K*.
        let attacked = p.replan_for_fleet_under_attack(20, 0.3).unwrap();
        assert_eq!(attacked, p.replan_for_fleet(14).unwrap());
        assert!(attacked.solution.k <= 14, "K* = {}", attacked.solution.k);
        // Zero attackers reproduce the plain replan exactly.
        assert_eq!(
            p.replan_for_fleet_under_attack(20, 0.0).unwrap(),
            p.replan_for_fleet(20).unwrap()
        );
    }

    #[test]
    fn replan_under_attack_rejects_bad_fractions() {
        let p = planner();
        assert!(matches!(
            p.replan_for_fleet_under_attack(20, 1.0),
            Err(CoreError::InvalidParameter { .. })
        ));
        assert!(matches!(
            p.replan_for_fleet_under_attack(20, -0.1),
            Err(CoreError::InvalidParameter { .. })
        ));
        // 1 survivor at 60% attackers floors to zero honest devices.
        assert!(matches!(
            p.replan_for_fleet_under_attack(1, 0.6),
            Err(CoreError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn replan_infeasible_when_survivors_cannot_reach_target() {
        // A1 = 1.5: K = 1 infeasible, larger K feasible — shrinking to a
        // single survivor makes the target unreachable.
        let energy = RoundEnergyModel::paper_default();
        let bound = ConvergenceBound::new(1.0, 1.5, 1e-5).unwrap();
        let planner = EeFeiPlanner::new(energy, bound, 0.2, 20).unwrap();
        assert!(matches!(
            planner.replan_for_fleet(1),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn replan_for_payload_cuts_energy_with_smaller_frames() {
        let p = planner();
        let link = fei_net::Link::wifi_uplink();
        // F64 lossless vs Q8+delta: the same 7 850-weight model at 8 B/weight
        // versus ~1 B/weight (+ block metadata).
        let lossless = p.replan_for_payload(&link, 7 + 7_850 * 8).unwrap();
        let q8 = p.replan_for_payload(&link, 7 + 7_850 + 31 * 8).unwrap();
        assert!(
            q8.solution.energy < lossless.solution.energy,
            "q8 {} vs lossless {}",
            q8.solution.energy,
            lossless.solution.energy
        );
        // Cheaper rounds mean less pressure to batch local epochs.
        assert!(
            q8.solution.e <= lossless.solution.e,
            "E* grew: {} -> {}",
            lossless.solution.e,
            q8.solution.e
        );
        // Same accuracy machinery: the round budget for a given (K, E) is
        // untouched, only the energy objective moved.
        assert_eq!(q8.baseline_t, lossless.baseline_t);
    }

    #[test]
    fn replan_for_payload_matches_manual_upload_swap() {
        let p = planner();
        let link = fei_net::Link::wifi_uplink();
        let payload = 62_800;
        let replanned = p.replan_for_payload(&link, payload).unwrap();
        let manual = EeFeiPlanner::new(
            p.energy
                .with_upload(UploadModel::from_link(&link, payload).unwrap()),
            p.bound,
            p.epsilon,
            p.n,
        )
        .unwrap()
        .plan()
        .unwrap();
        assert_eq!(replanned, manual);
    }

    #[test]
    fn unreachable_target_rejected_at_construction() {
        let energy = RoundEnergyModel::paper_default();
        let bound = ConvergenceBound::new(1.0, 10.0, 1e-4).unwrap();
        assert!(matches!(
            EeFeiPlanner::new(energy, bound, 0.1, 20),
            Err(CoreError::Infeasible { .. })
        ));
    }
}
