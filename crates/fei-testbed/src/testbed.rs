//! The assembled prototype: 20 Pis, a coordinator, a router, and meters.

use fei_core::calibration::TRAINING_POWER_WATTS;
use fei_core::energy::{DataCollectionModel, RoundEnergyModel, UploadModel};
use fei_data::stream::NB_IOT_JOULES_PER_BYTE;
use fei_data::IotStream;
use fei_net::{Link, SharedMedium};
use fei_power::{PowerMeter, PowerState, PowerTimeline, PowerTrace};
use fei_sim::{DetRng, SimDuration};
use serde::{Deserialize, Serialize};

use crate::device::RaspberryPi;
use crate::experiment::{EnergyBreakdown, ExperimentRun};

/// Configuration of the simulated prototype.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestbedConfig {
    /// Fleet size `N` (the paper: 20).
    pub num_devices: usize,
    /// Samples per edge server `n_k` (the paper: 3 000).
    pub samples_per_device: usize,
    /// Bytes of one serialized model transfer (LR parameters + framing).
    pub model_payload_bytes: usize,
    /// Idle wait inserted at the head of every round, seconds (coordination
    /// latency between rounds; the prototype's data is pre-loaded, so this
    /// is short).
    pub waiting_secs: f64,
    /// Whether local datasets are pre-loaded on the edge servers (the
    /// paper's prototype setting, §VI-B step 1). When `true`, IoT
    /// data-collection energy is excluded from measurements and from the
    /// analytic model, exactly as it is absent from the paper's traces.
    pub preloaded_data: bool,
    /// Whether unselected devices' idle energy is charged to the experiment.
    /// The paper's model (Eq. 3) charges only selected servers, so this
    /// defaults to `false`.
    pub include_idle_of_unselected: bool,
    /// Seed for all measurement noise.
    pub seed: u64,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        Self {
            num_devices: 20,
            samples_per_device: 3_000,
            // 10×784 weights + 10 biases as f64, plus codec framing.
            model_payload_bytes: (784 * 10 + 10) * 8 + 11,
            waiting_secs: 0.02,
            preloaded_data: true,
            include_idle_of_unselected: false,
            seed: 0xBED,
        }
    }
}

/// The simulated prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct Testbed {
    config: TestbedConfig,
    pi: RaspberryPi,
    downlink: Link,
    uplink: SharedMedium,
    iot: IotStream,
    meter: PowerMeter,
    /// Per-device compute speed factors (1.0 = the calibrated Pi; 0.5 =
    /// half speed). Homogeneous (all 1.0) by default, like the prototype.
    speed_factors: Vec<f64>,
}

impl Testbed {
    /// The paper's prototype: 20 Table-I-calibrated Pis on WiFi, NB-IoT
    /// sample uplinks, KM001C meters.
    pub fn paper_prototype() -> Self {
        Self::new(TestbedConfig::default(), RaspberryPi::paper_calibrated())
    }

    /// Assembles a testbed from a configuration and a device model.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0` or `samples_per_device == 0`.
    pub fn new(config: TestbedConfig, pi: RaspberryPi) -> Self {
        assert!(config.num_devices > 0, "need at least one device");
        assert!(config.samples_per_device > 0, "devices need data");
        let iot = IotStream::with_defaults(config.samples_per_device);
        let speed_factors = vec![1.0; config.num_devices];
        Self {
            config,
            pi,
            downlink: Link::wifi_downlink(),
            uplink: SharedMedium::new(Link::wifi_uplink()),
            iot,
            meter: PowerMeter::km001c(),
            speed_factors,
        }
    }

    /// Replaces the per-device compute speed factors, making the fleet
    /// heterogeneous. A factor of 0.5 doubles that device's training time.
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the fleet size or any factor is
    /// not positive and finite.
    pub fn with_speed_factors(mut self, factors: Vec<f64>) -> Self {
        assert_eq!(
            factors.len(),
            self.config.num_devices,
            "one factor per device"
        );
        assert!(
            factors.iter().all(|f| f.is_finite() && *f > 0.0),
            "speed factors must be positive and finite"
        );
        self.speed_factors = factors;
        self
    }

    /// The per-device speed factors.
    pub fn speed_factors(&self) -> &[f64] {
        &self.speed_factors
    }

    /// The testbed configuration.
    pub fn config(&self) -> &TestbedConfig {
        &self.config
    }

    /// The device model.
    pub fn pi(&self) -> &RaspberryPi {
        &self.pi
    }

    /// The meter used for trace sampling.
    pub fn meter(&self) -> &PowerMeter {
        &self.meter
    }

    /// Duration of the model download (step 2) for one device.
    pub fn download_duration(&self) -> SimDuration {
        self.downlink
            .transfer_duration(self.config.model_payload_bytes)
    }

    /// Duration of the model upload (step 4) when `k` devices upload
    /// concurrently.
    pub fn upload_duration(&self, k: usize) -> SimDuration {
        self.uplink
            .concurrent_transfer_duration(self.config.model_payload_bytes, k)
    }

    /// Builds the power timeline of one device over one global round.
    ///
    /// Selected devices walk waiting → downloading → training → uploading;
    /// unselected devices wait for the whole round. `round_span` (the
    /// selected-device round length) is returned so unselected timelines can
    /// be aligned.
    pub fn device_round_timeline(
        &self,
        selected: bool,
        epochs: usize,
        k_concurrent: usize,
        rng: &mut DetRng,
    ) -> PowerTimeline {
        let waiting = SimDuration::from_secs_f64(self.config.waiting_secs);
        let mut tl = PowerTimeline::new();
        if selected {
            let train =
                self.pi
                    .measure_training_duration(epochs, self.config.samples_per_device, rng);
            tl.push(PowerState::Waiting, waiting);
            tl.push(PowerState::Downloading, self.download_duration());
            tl.push(PowerState::Training, train);
            tl.push(PowerState::Uploading, self.upload_duration(k_concurrent));
        } else {
            let span = waiting
                + self.download_duration()
                + self
                    .pi
                    .training_duration(epochs, self.config.samples_per_device)
                + self.upload_duration(k_concurrent);
            tl.push(PowerState::Waiting, span);
        }
        tl
    }

    /// Runs a `(K, E, T)` experiment and integrates energy exactly from the
    /// per-device timelines. Device selection rotates deterministically from
    /// the experiment seed.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds the fleet, or `epochs`/`rounds` is 0.
    pub fn run(&self, k: usize, epochs: usize, rounds: usize) -> ExperimentRun {
        assert!(k >= 1 && k <= self.config.num_devices, "K out of range");
        assert!(epochs >= 1, "E must be at least 1");
        assert!(rounds >= 1, "T must be at least 1");
        let mut rng = DetRng::new(self.config.seed).fork(0xE0);
        let profile = *self.pi.profile();

        let mut breakdown = EnergyBreakdown::default();
        let mut wall_clock = SimDuration::ZERO;
        for round in 0..rounds {
            let selected = self.select_round(round, k, &mut rng);
            let mut round_span = SimDuration::ZERO;
            for device in 0..self.config.num_devices {
                let is_selected = selected.contains(&device);
                if !is_selected && !self.config.include_idle_of_unselected {
                    continue;
                }
                let tl = self.device_round_timeline(is_selected, epochs, k, &mut rng);
                round_span = round_span.max(tl.total_duration());
                breakdown.waiting_j += tl.energy_in_state_joules(&profile, PowerState::Waiting);
                breakdown.download_j +=
                    tl.energy_in_state_joules(&profile, PowerState::Downloading);
                breakdown.training_j += tl.energy_in_state_joules(&profile, PowerState::Training);
                breakdown.upload_j += tl.energy_in_state_joules(&profile, PowerState::Uploading);
            }
            // IoT data collection (Eq. 4) for each selected server — absent
            // when data is pre-loaded, as in the paper's prototype.
            if !self.config.preloaded_data {
                breakdown.collection_j +=
                    k as f64 * self.iot.upload_energy_joules(NB_IOT_JOULES_PER_BYTE);
            }
            wall_clock += round_span;
        }
        ExperimentRun {
            k,
            e: epochs,
            rounds,
            breakdown,
            wall_clock,
        }
    }

    /// Builds a Fig.-3-style artifact: one device's ground-truth timeline
    /// over `rounds` consecutive rounds plus its sampled meter trace.
    pub fn fig3_trace(&self, epochs: usize, rounds: usize) -> (PowerTimeline, PowerTrace) {
        let mut rng = DetRng::new(self.config.seed).fork(0xF13);
        let mut tl = PowerTimeline::new();
        for _ in 0..rounds {
            let round = self.device_round_timeline(true, epochs, 1, &mut rng);
            tl.extend_with(&round);
        }
        let trace = self.meter.sample(&tl, self.pi.profile(), &mut rng);
        (tl, trace)
    }

    /// The analytic per-round energy model (Eqs. 4–5) calibrated to this
    /// testbed — what the optimizer sees. `c₀`/`c₁` convert the timing law
    /// through the 5.553 W training plateau exactly as §VI-B does; `e_U` is
    /// the solo-upload airtime energy.
    pub fn energy_model(&self) -> RoundEnergyModel {
        let compute = self
            .pi
            .timing()
            .to_computation_model(TRAINING_POWER_WATTS)
            .expect("invariant: the calibrated timing law was validated when the Pi was built");
        let rho = if self.config.preloaded_data {
            0.0
        } else {
            self.iot.rho_joules(NB_IOT_JOULES_PER_BYTE)
        };
        let data = DataCollectionModel::new(rho)
            .expect("invariant: rho is 0 or a finite per-byte cost times a payload size");
        let e_u = self
            .uplink
            .concurrent_transfer_energy_joules(self.config.model_payload_bytes, 1);
        let upload = UploadModel::new(e_u).expect(
            "invariant: airtime energy from the calibrated uplink is finite and non-negative",
        );
        RoundEnergyModel::new(data, compute, upload, self.config.samples_per_device)
            .expect("invariant: TestbedConfig validated samples_per_device at construction")
    }

    /// Runs a `(K, E, T)` experiment with *synchronous-barrier* semantics on
    /// a possibly heterogeneous fleet: in each round every selected device
    /// trains at its own speed, then idles at waiting power until the
    /// slowest selected device finishes (the straggler barrier), and only
    /// then do the `K` uploads start together. Returns the run plus the
    /// total straggler-wait energy.
    ///
    /// For a homogeneous fleet this differs from [`Testbed::run`] only by
    /// the jitter-sized barrier waits.
    ///
    /// # Panics
    ///
    /// Same domain checks as [`Testbed::run`].
    pub fn run_synchronous(&self, k: usize, epochs: usize, rounds: usize) -> (ExperimentRun, f64) {
        assert!(k >= 1 && k <= self.config.num_devices, "K out of range");
        assert!(epochs >= 1, "E must be at least 1");
        assert!(rounds >= 1, "T must be at least 1");
        let mut rng = DetRng::new(self.config.seed).fork(0xE1);
        let profile = *self.pi.profile();
        let waiting = SimDuration::from_secs_f64(self.config.waiting_secs);

        let mut breakdown = EnergyBreakdown::default();
        let mut straggler_wait_j = 0.0;
        let mut wall_clock = SimDuration::ZERO;
        for round in 0..rounds {
            let selected = self.select_round(round, k, &mut rng);
            // Per-device training durations at each device's speed.
            let durations: Vec<SimDuration> = selected
                .iter()
                .map(|&d| {
                    self.pi
                        .measure_training_duration(epochs, self.config.samples_per_device, &mut rng)
                        .mul_f64(1.0 / self.speed_factors[d])
                })
                .collect();
            let slowest = durations.iter().copied().max().unwrap_or(SimDuration::ZERO);

            let mut round_span = SimDuration::ZERO;
            for (idx, &_device) in selected.iter().enumerate() {
                let train = durations[idx];
                let barrier = slowest - train;
                let mut tl = PowerTimeline::new();
                tl.push(PowerState::Waiting, waiting);
                tl.push(PowerState::Downloading, self.download_duration());
                tl.push(PowerState::Training, train);
                tl.push(PowerState::Waiting, barrier);
                tl.push(PowerState::Uploading, self.upload_duration(k));
                round_span = round_span.max(tl.total_duration());
                breakdown.waiting_j += tl.energy_in_state_joules(&profile, PowerState::Waiting);
                breakdown.download_j +=
                    tl.energy_in_state_joules(&profile, PowerState::Downloading);
                breakdown.training_j += tl.energy_in_state_joules(&profile, PowerState::Training);
                breakdown.upload_j += tl.energy_in_state_joules(&profile, PowerState::Uploading);
                straggler_wait_j += profile.waiting_w * barrier.as_secs_f64();
            }
            if !self.config.preloaded_data {
                breakdown.collection_j +=
                    k as f64 * self.iot.upload_energy_joules(NB_IOT_JOULES_PER_BYTE);
            }
            wall_clock += round_span;
        }
        (
            ExperimentRun {
                k,
                e: epochs,
                rounds,
                breakdown,
                wall_clock,
            },
            straggler_wait_j,
        )
    }

    fn select_round(&self, round: usize, k: usize, rng: &mut DetRng) -> Vec<usize> {
        // Uniformly random K-subset per round, matching the FL runtime's
        // strategy (the specific subset does not change energy because the
        // devices are homogeneous; it does change which timeline carries
        // the jitter).
        let _ = round;
        rng.sample_indices(self.config.num_devices, k)
    }
}

impl Default for Testbed {
    fn default() -> Self {
        Self::paper_prototype()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_timeline_walks_the_four_steps() {
        let tb = Testbed::paper_prototype();
        let mut rng = DetRng::new(1);
        let tl = tb.device_round_timeline(true, 10, 5, &mut rng);
        let states: Vec<PowerState> = tl.segments().iter().map(|s| s.state).collect();
        assert_eq!(
            states,
            vec![
                PowerState::Waiting,
                PowerState::Downloading,
                PowerState::Training,
                PowerState::Uploading
            ]
        );
    }

    #[test]
    fn unselected_device_just_waits() {
        let tb = Testbed::paper_prototype();
        let mut rng = DetRng::new(1);
        let tl = tb.device_round_timeline(false, 10, 5, &mut rng);
        assert_eq!(tl.segments().len(), 1);
        assert_eq!(tl.segments()[0].state, PowerState::Waiting);
    }

    #[test]
    fn energy_scales_with_t_and_k() {
        let tb = Testbed::paper_prototype();
        let base = tb.run(5, 10, 10).breakdown.total_joules();
        let double_t = tb.run(5, 10, 20).breakdown.total_joules();
        let double_k = tb.run(10, 10, 10).breakdown.total_joules();
        assert!(
            (double_t / base - 2.0).abs() < 0.05,
            "T scaling: {}",
            double_t / base
        );
        // Doubling K doubles per-round energy except the upload-contention
        // stretch, which grows superlinearly.
        assert!(double_k / base > 1.9, "K scaling: {}", double_k / base);
    }

    #[test]
    fn training_energy_dominates_at_large_e() {
        let tb = Testbed::paper_prototype();
        let run = tb.run(1, 200, 5);
        let b = &run.breakdown;
        assert!(b.training_j > b.download_j + b.upload_j + b.waiting_j);
    }

    #[test]
    fn collection_energy_matches_eq4_when_not_preloaded() {
        let config = TestbedConfig {
            preloaded_data: false,
            ..Default::default()
        };
        let tb = Testbed::new(config, RaspberryPi::paper_calibrated());
        let run = tb.run(3, 1, 7);
        let expected = 3.0 * 7.0 * 3_000.0 * 785.0 * NB_IOT_JOULES_PER_BYTE;
        assert!((run.breakdown.collection_j - expected).abs() < 1e-6);
        // Pre-loaded prototype (the default) excludes collection entirely.
        let preloaded = Testbed::paper_prototype().run(3, 1, 7);
        assert_eq!(preloaded.breakdown.collection_j, 0.0);
    }

    #[test]
    fn idle_fleet_accounting_is_optional() {
        let config = TestbedConfig {
            include_idle_of_unselected: true,
            ..Default::default()
        };
        let with_idle = Testbed::new(config, RaspberryPi::paper_calibrated());
        let without_idle = Testbed::paper_prototype();
        let a = with_idle.run(1, 10, 5).breakdown.total_joules();
        let b = without_idle.run(1, 10, 5).breakdown.total_joules();
        assert!(a > b, "counting 19 idle Pis must increase energy");
    }

    #[test]
    fn fig3_trace_covers_two_rounds_with_four_plateaus() {
        let tb = Testbed::paper_prototype();
        let (tl, trace) = tb.fig3_trace(40, 2);
        // Two rounds x four states.
        assert_eq!(tl.segments().len(), 8);
        assert!(!trace.is_empty());
        // The trace's energy is close to the exact timeline integral.
        let exact = tl.energy_joules(tb.pi().profile());
        assert!((trace.energy_joules() - exact).abs() / exact < 0.05);
    }

    #[test]
    fn energy_model_matches_paper_constants() {
        let tb = Testbed::paper_prototype();
        let m = tb.energy_model();
        assert!(
            (m.compute().c0() - 7.79e-5).abs() / 7.79e-5 < 0.15,
            "c0 {}",
            m.compute().c0()
        );
        assert_eq!(m.n_k(), 3_000);
        assert!(m.b0() > 0.0 && m.b1() > 0.0);
        // Pre-loaded prototype: no collection term in B1.
        assert_eq!(m.data().rho(), 0.0);
        // Full EE-FEI deployment: NB-IoT collection dominates B1.
        let full = Testbed::new(
            TestbedConfig {
                preloaded_data: false,
                ..Default::default()
            },
            RaspberryPi::paper_calibrated(),
        );
        assert!(full.energy_model().b1() > 1_000.0);
    }

    #[test]
    fn runs_are_deterministic() {
        let tb = Testbed::paper_prototype();
        let a = tb.run(5, 20, 3);
        let b = tb.run(5, 20, 3);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "K out of range")]
    fn rejects_k_beyond_fleet() {
        let _ = Testbed::paper_prototype().run(21, 1, 1);
    }

    #[test]
    fn homogeneous_synchronous_run_has_tiny_barrier() {
        let tb = Testbed::paper_prototype();
        let (run, straggle) = tb.run_synchronous(5, 20, 4);
        // Jitter-sized barriers only: a few percent of total energy at most.
        assert!(straggle < run.total_joules() * 0.03, "straggle {straggle}");
    }

    #[test]
    fn slow_devices_create_straggler_waste() {
        let mut speeds = vec![1.0; 20];
        speeds[0] = 0.25; // one device at quarter speed
        let uniform = Testbed::paper_prototype();
        let mixed = Testbed::paper_prototype().with_speed_factors(speeds);
        // K = 20 guarantees the slow device participates every round.
        let (u_run, u_straggle) = uniform.run_synchronous(20, 20, 3);
        let (m_run, m_straggle) = mixed.run_synchronous(20, 20, 3);
        assert!(
            m_straggle > u_straggle * 10.0,
            "{m_straggle} vs {u_straggle}"
        );
        assert!(m_run.wall_clock > u_run.wall_clock);
        assert!(m_run.total_joules() > u_run.total_joules());
    }

    #[test]
    fn speed_factors_scale_training_time() {
        let slow_fleet = Testbed::paper_prototype().with_speed_factors(vec![0.5; 20]);
        let (slow, _) = slow_fleet.run_synchronous(1, 40, 2);
        let (fast, _) = Testbed::paper_prototype().run_synchronous(1, 40, 2);
        let ratio = slow.breakdown.training_j / fast.breakdown.training_j;
        assert!((ratio - 2.0).abs() < 0.1, "training energy ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "one factor per device")]
    fn rejects_wrong_factor_count() {
        let _ = Testbed::paper_prototype().with_speed_factors(vec![1.0; 3]);
    }
}
