//! Glue: real FedAvg training on synthetic MNIST, parameterized like the
//! paper's evaluation.
//!
//! The paper uniformly spreads 60 000 training samples over 20 servers and
//! measures convergence for combinations of `(K, E)`. [`FlExperiment`]
//! reproduces that campaign at a configurable scale factor (`scale = 1.0`
//! is the paper's full size; benches default to a laptop-friendly fraction,
//! which preserves curve shapes because the data generator's difficulty is
//! scale-free).

use fei_data::{Dataset, Partition, SyntheticMnist, SyntheticMnistConfig};
use fei_fl::{FedAvg, FedAvgConfig, StopCondition, ThreadedFedAvg, TrainingHistory, WireConfig};
use fei_ml::SgdConfig;
use fei_sim::DetRng;
use serde::{Deserialize, Serialize};

/// The "relatively low" accuracy target of Fig. 4(b) — reached quickly at
/// any `K`. (Paper: 0.89 on MNIST; same position relative to our synthetic
/// ceiling of ~0.925.)
pub const EASY_TARGET: f64 = 0.89;

/// The stringent accuracy target of the paper's energy experiments
/// (Figs. 5–6 fix 92 %). Our synthetic ceiling sits at ~0.925, mirroring
/// multinomial LR's ~92.6 % on MNIST, so the same 0.92 is used.
pub const STRINGENT_TARGET: f64 = 0.92;

/// How training data is spread across the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PartitionStrategy {
    /// Uniform random split — the paper's prototype setting.
    #[default]
    Iid,
    /// Symmetric Dirichlet label skew; smaller `alpha` = more heterogeneous.
    Dirichlet {
        /// Concentration parameter.
        alpha: f64,
    },
    /// Pathological label sharding (each client sees few classes).
    LabelShards {
        /// Shards dealt to each client.
        shards_per_client: usize,
    },
}

/// Configuration of an FL convergence campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlExperimentConfig {
    /// Number of edge servers `N`.
    pub num_devices: usize,
    /// Fraction of the paper's 60 000-sample training set to generate.
    pub scale: f64,
    /// Fraction of the paper's 10 000-sample test set to generate (kept
    /// larger than `scale` in small campaigns so accuracy granularity stays
    /// fine enough to resolve the targets).
    pub test_scale: f64,
    /// Synthetic data difficulty.
    pub data: SyntheticMnistConfig,
    /// Local optimizer settings.
    pub sgd: SgdConfig,
    /// Evaluate the global model every this many rounds.
    pub eval_every: usize,
    /// How the training data is spread across devices.
    pub partition: PartitionStrategy,
    /// Uplink wire encoding for model uploads (lossless `F64` by default;
    /// see [`fei_fl::WireConfig`]).
    #[serde(default)]
    pub transport: WireConfig,
    /// Seed for partitioning and client selection.
    pub seed: u64,
}

impl Default for FlExperimentConfig {
    fn default() -> Self {
        Self {
            num_devices: 20,
            scale: 0.05,
            test_scale: 0.2,
            data: SyntheticMnistConfig::default(),
            sgd: SgdConfig::paper_default(),
            eval_every: 1,
            partition: PartitionStrategy::Iid,
            transport: WireConfig::default(),
            seed: 0xF1,
        }
    }
}

impl FlExperimentConfig {
    /// The tuned campaign used by the table/figure benches: a 20-server
    /// fleet on a scaled synthetic-MNIST task whose convergence structure
    /// matches the paper's (finite `T` at `E = 1`, interior optimum of
    /// `E·T`, near-linear `T` reduction in `K` at the stringent target).
    ///
    /// Slower-than-Table-II SGD (lr 0.005, decay 0.998) compensates for the
    /// synthetic task being better conditioned than MNIST; see
    /// EXPERIMENTS.md.
    pub fn paper_like() -> Self {
        Self {
            num_devices: 20,
            scale: 0.05,
            test_scale: 0.2,
            data: SyntheticMnistConfig {
                pixel_noise_std: 0.5,
                ..Default::default()
            },
            sgd: SgdConfig::new(0.005, 0.998, None),
            eval_every: 1,
            partition: PartitionStrategy::Iid,
            transport: WireConfig::default(),
            seed: 0xF1,
        }
    }

    /// The same campaign under a different uplink wire encoding.
    pub fn with_transport(mut self, transport: WireConfig) -> Self {
        self.transport = transport;
        self
    }
}

/// A prepared FL campaign: generated data, fixed partition, reusable across
/// `(K, E)` combinations so every run sees identical datasets.
#[derive(Debug, Clone)]
pub struct FlExperiment {
    config: FlExperimentConfig,
    clients: Vec<Dataset>,
    test: Dataset,
}

impl FlExperiment {
    /// Generates data and partitions it IID across the fleet.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0`, `scale <= 0`, or the scaled dataset is
    /// too small to give every device a sample.
    pub fn prepare(config: FlExperimentConfig) -> Self {
        assert!(config.num_devices > 0, "need at least one device");
        assert!(config.scale > 0.0, "scale must be positive");
        assert!(config.test_scale > 0.0, "test_scale must be positive");
        let gen = SyntheticMnist::new(config.data.clone());
        let train = gen.generate((60_000.0 * config.scale).round() as usize, 0);
        let test = gen.generate((10_000.0 * config.test_scale).round() as usize, 1);
        assert!(
            train.len() >= config.num_devices,
            "scaled train set ({}) smaller than fleet ({})",
            train.len(),
            config.num_devices
        );
        let mut part_rng = DetRng::new(config.seed).fork(0x9A87);
        let partition = match config.partition {
            PartitionStrategy::Iid => {
                Partition::iid(train.len(), config.num_devices, &mut part_rng)
            }
            PartitionStrategy::Dirichlet { alpha } => {
                Partition::dirichlet(&train, config.num_devices, alpha, &mut part_rng)
            }
            PartitionStrategy::LabelShards { shards_per_client } => Partition::by_label_shards(
                &train,
                config.num_devices,
                shards_per_client,
                &mut part_rng,
            ),
        };
        let clients = partition.apply(&train);
        Self {
            config,
            clients,
            test,
        }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &FlExperimentConfig {
        &self.config
    }

    /// Samples held by the first device (`n_k`; exactly equal across devices
    /// only under the IID split).
    pub fn samples_per_device(&self) -> usize {
        self.clients[0].len()
    }

    /// Per-device sample counts.
    pub fn device_sample_counts(&self) -> Vec<usize> {
        self.clients.iter().map(Dataset::len).collect()
    }

    /// The held-out test set.
    pub fn test_set(&self) -> &Dataset {
        &self.test
    }

    /// The union of all client datasets — the centralized view used to
    /// estimate the minimal loss `F(ω*)` for bound calibration.
    pub fn training_union(&self) -> Dataset {
        let mut union = Dataset::empty(self.clients[0].dim(), self.clients[0].num_classes());
        for client in &self.clients {
            for (x, y) in client.iter() {
                union.push(x, y);
            }
        }
        union
    }

    /// Builds the FedAvg engine for one `(K, E)` combination.
    pub fn engine(&self, k: usize, e: usize) -> FedAvg {
        let config = FedAvgConfig {
            clients_per_round: k,
            local_epochs: e,
            sgd: self.config.sgd.clone(),
            eval_every: self.config.eval_every,
            transport: self.config.transport,
            seed: self.config.seed ^ ((k as u64) << 32) ^ e as u64,
            ..Default::default()
        };
        FedAvg::new(config, self.clients.clone(), self.test.clone())
    }

    /// Builds the thread-per-server transport-backed engine for the same
    /// `(K, E)` combination — configured identically to
    /// [`FlExperiment::engine`], so the two runs are bit-for-bit
    /// interchangeable (see `tests/golden_numerics.rs`).
    pub fn threaded_engine(&self, k: usize, e: usize) -> ThreadedFedAvg {
        let config = FedAvgConfig {
            clients_per_round: k,
            local_epochs: e,
            sgd: self.config.sgd.clone(),
            eval_every: self.config.eval_every,
            transport: self.config.transport,
            seed: self.config.seed ^ ((k as u64) << 32) ^ e as u64,
            ..Default::default()
        };
        ThreadedFedAvg::new(config, self.clients.clone(), self.test.clone())
    }

    /// Builds a fault-injected FedAvg engine for `(K, E)`: the injector
    /// perturbs every round and the coordinator responds with `tolerance`
    /// (over-selection, deadline, retry, quorum).
    pub fn faulty_engine(
        &self,
        k: usize,
        e: usize,
        tolerance: fei_fl::ToleranceConfig,
        injector: fei_fl::FaultInjector,
    ) -> FedAvg {
        let config = FedAvgConfig {
            clients_per_round: k,
            local_epochs: e,
            sgd: self.config.sgd.clone(),
            eval_every: self.config.eval_every,
            transport: self.config.transport,
            seed: self.config.seed ^ ((k as u64) << 32) ^ e as u64,
            tolerance,
            ..Default::default()
        };
        FedAvg::new(config, self.clients.clone(), self.test.clone()).with_faults(injector)
    }

    /// Builds a FedAvg engine for `(K, E)` under Byzantine conditions: an
    /// optional fault schedule, an optional adversarial cohort, and an
    /// optional coordinator defense (screen + robust rule). All three
    /// `None` reproduces [`FlExperiment::engine`] exactly.
    pub fn byzantine_engine(
        &self,
        k: usize,
        e: usize,
        tolerance: fei_fl::ToleranceConfig,
        injector: Option<fei_fl::FaultInjector>,
        adversary: Option<fei_fl::AdversarySpec>,
        defense: Option<fei_fl::DefenseConfig>,
    ) -> FedAvg {
        let config = FedAvgConfig {
            clients_per_round: k,
            local_epochs: e,
            sgd: self.config.sgd.clone(),
            eval_every: self.config.eval_every,
            transport: self.config.transport,
            seed: self.config.seed ^ ((k as u64) << 32) ^ e as u64,
            tolerance,
            defense,
            ..Default::default()
        };
        let mut engine = FedAvg::new(config, self.clients.clone(), self.test.clone());
        if let Some(injector) = injector {
            engine = engine.with_faults(injector);
        }
        if let Some(spec) = adversary {
            engine = engine.with_adversary(spec);
        }
        engine
    }

    /// Runs `(K, E)` for a fixed number of rounds.
    pub fn run_rounds(&self, k: usize, e: usize, rounds: usize) -> TrainingHistory {
        self.engine(k, e).run_until(StopCondition::rounds(rounds))
    }

    /// Runs `(K, E)` until `target_accuracy`, capped at `max_rounds`.
    /// Returns the history and `T(target)` — the paper's required number of
    /// global coordinations — when reached.
    pub fn run_to_accuracy(
        &self,
        k: usize,
        e: usize,
        target_accuracy: f64,
        max_rounds: usize,
    ) -> (TrainingHistory, Option<usize>) {
        let history = self
            .engine(k, e)
            .run_until(StopCondition::accuracy(target_accuracy, max_rounds));
        let t = history.rounds_to_accuracy(target_accuracy);
        (history, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FlExperimentConfig {
        FlExperimentConfig {
            num_devices: 5,
            scale: 0.01,
            test_scale: 0.01,
            data: SyntheticMnistConfig {
                pixel_noise_std: 0.2,
                label_flip_prob: 0.0,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn prepare_splits_evenly() {
        let exp = FlExperiment::prepare(small_config());
        assert_eq!(exp.samples_per_device(), 600 / 5);
        assert_eq!(exp.test_set().len(), 100);
    }

    #[test]
    fn run_rounds_produces_history() {
        let exp = FlExperiment::prepare(small_config());
        let h = exp.run_rounds(2, 3, 4);
        assert_eq!(h.len(), 4);
        assert_eq!(h.total_local_epochs(), 4 * 2 * 3);
    }

    #[test]
    fn identical_campaigns_are_reproducible() {
        let a = FlExperiment::prepare(small_config()).run_rounds(2, 2, 3);
        let b = FlExperiment::prepare(small_config()).run_rounds(2, 2, 3);
        assert_eq!(a.records(), b.records());
    }

    #[test]
    fn run_to_accuracy_reports_t() {
        let mut cfg = small_config();
        cfg.sgd = SgdConfig::new(0.3, 1.0, None);
        let exp = FlExperiment::prepare(cfg);
        let (history, t) = exp.run_to_accuracy(5, 5, 0.6, 300);
        let t = t.expect("should reach 60% on clean data");
        assert!(t <= 300);
        assert_eq!(history.rounds_to_accuracy(0.6), Some(t));
    }

    #[test]
    fn more_epochs_converge_in_fewer_rounds() {
        // The paper's central observation (Fig. 4c-d): larger E cuts the
        // required T.
        let mut cfg = small_config();
        cfg.sgd = SgdConfig::new(0.1, 1.0, None);
        let exp = FlExperiment::prepare(cfg);
        let (_, t_e1) = exp.run_to_accuracy(5, 1, 0.6, 400);
        let (_, t_e10) = exp.run_to_accuracy(5, 10, 0.6, 400);
        let (t_e1, t_e10) = (t_e1.unwrap(), t_e10.unwrap());
        assert!(
            t_e10 < t_e1,
            "E=10 needed {t_e10} rounds, E=1 needed {t_e1}"
        );
    }

    #[test]
    fn dirichlet_partition_skews_devices() {
        let mut cfg = small_config();
        cfg.partition = PartitionStrategy::Dirichlet { alpha: 0.1 };
        let exp = FlExperiment::prepare(cfg);
        let counts = exp.device_sample_counts();
        assert_eq!(counts.iter().sum::<usize>(), 600);
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max > min,
            "Dirichlet(0.1) should produce uneven devices: {counts:?}"
        );
    }

    #[test]
    fn label_shards_partition_trains() {
        let mut cfg = small_config();
        cfg.partition = PartitionStrategy::LabelShards {
            shards_per_client: 2,
        };
        let exp = FlExperiment::prepare(cfg);
        let h = exp.run_rounds(5, 2, 3);
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn noniid_converges_slower_than_iid() {
        // The mechanism behind the paper's K* = 1 caveat: heterogeneity
        // slows small-K convergence.
        let mut iid_cfg = small_config();
        iid_cfg.sgd = SgdConfig::new(0.05, 1.0, None);
        let mut skew_cfg = iid_cfg.clone();
        skew_cfg.partition = PartitionStrategy::LabelShards {
            shards_per_client: 1,
        };
        let iid = FlExperiment::prepare(iid_cfg);
        let skewed = FlExperiment::prepare(skew_cfg);
        let (_, t_iid) = iid.run_to_accuracy(1, 5, 0.6, 300);
        let (_, t_skew) = skewed.run_to_accuracy(1, 5, 0.6, 300);
        let t_iid = t_iid.expect("IID converges");
        // A skewed split never reaching the target is the extreme slow case.
        if let Some(t) = t_skew {
            assert!(t >= t_iid, "skewed ({t}) vs IID ({t_iid})");
        }
    }

    #[test]
    #[should_panic(expected = "smaller than fleet")]
    fn rejects_overscaled_fleet() {
        let mut cfg = small_config();
        cfg.num_devices = 1_000;
        let _ = FlExperiment::prepare(cfg);
    }
}
