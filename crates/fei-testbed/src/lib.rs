//! The simulated hardware prototype.
//!
//! The paper's measurements come from 20 Raspberry Pi 4B edge servers, a
//! laptop coordinator, a TP-Link WiFi router, and POWER-Z KM001C USB meters.
//! This crate assembles the workspace substrates into that prototype:
//!
//! * [`device::RaspberryPi`] — power plateaus (from `fei-power`) plus the
//!   Table-I-calibrated training-time law;
//! * [`testbed::Testbed`] — builds per-device power timelines for FL rounds,
//!   integrates energy, and samples meter traces (Fig. 3);
//! * [`fl::FlExperiment`] — glue that runs real FedAvg training (from
//!   `fei-fl`) on synthetic MNIST to obtain the `T(K, E)` round counts and
//!   loss curves behind Figs. 4–6;
//! * [`experiment`] — measurement campaigns: regenerate Table I, produce
//!   "measured" energy-vs-`K`/`E` curves, and extract calibration
//!   observations for the bound fit.

#![forbid(unsafe_code)]

pub mod chaos;
pub mod des;
pub mod device;
pub mod experiment;
pub mod faults;
pub mod fl;
pub mod testbed;

pub use chaos::{ChaosCampaign, ChaosCampaignConfig, ChaosCampaignReport, ChaosRun};
pub use device::RaspberryPi;
pub use experiment::{EnergyBreakdown, ExperimentRun};
pub use faults::{FaultCampaign, FaultCampaignReport, ReplanEvent};
pub use fl::{FlExperiment, FlExperimentConfig, PartitionStrategy, EASY_TARGET, STRINGENT_TARGET};
pub use testbed::{Testbed, TestbedConfig};
