//! Measurement artifacts and campaign helpers.

use fei_core::calibration::GapObservation;
use fei_fl::TrainingHistory;
use fei_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Energy attribution across the paper's steps, in joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// IoT data collection (Eq. 4).
    pub collection_j: f64,
    /// Idle/waiting draw of measured devices.
    pub waiting_j: f64,
    /// Global-model download (step 2).
    pub download_j: f64,
    /// Local training (step 3).
    pub training_j: f64,
    /// Model upload (step 4).
    pub upload_j: f64,
}

impl EnergyBreakdown {
    /// Total energy across all components.
    pub fn total_joules(&self) -> f64 {
        self.collection_j + self.waiting_j + self.download_j + self.training_j + self.upload_j
    }
}

/// Result of one `(K, E, T)` testbed experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRun {
    /// Participants per round.
    pub k: usize,
    /// Local epochs per round.
    pub e: usize,
    /// Global rounds executed.
    pub rounds: usize,
    /// Measured energy attribution.
    pub breakdown: EnergyBreakdown,
    /// Wall-clock span of the experiment (sum of round spans).
    pub wall_clock: SimDuration,
}

impl ExperimentRun {
    /// Total measured energy, joules.
    pub fn total_joules(&self) -> f64 {
        self.breakdown.total_joules()
    }

    /// Mean power over the experiment, watts.
    pub fn mean_power_watts(&self) -> f64 {
        let secs = self.wall_clock.as_secs_f64();
        // fei-lint: allow(float-eq, reason = "zero-duration division guard: an empty experiment has exactly zero wall clock")
        if secs == 0.0 {
            0.0
        } else {
            self.total_joules() / secs
        }
    }
}

/// Extracts convergence-bound calibration observations from a training
/// history: one gap measurement per evaluated round, using `f_star` as the
/// estimate of the minimal loss `F(ω*)`.
///
/// Rounds with loss at or below `f_star` are skipped (they would produce
/// non-positive gaps that the Eq. 10 model cannot represent). `burn_in`
/// initial rounds are skipped too — the bound describes asymptotic
/// behaviour, and the first rounds of zero-initialized training are far from
/// its regime.
pub fn gap_observations(
    history: &TrainingHistory,
    epochs: usize,
    clients: usize,
    f_star: f64,
    burn_in: usize,
) -> Vec<GapObservation> {
    history
        .records()
        .iter()
        .filter(|r| r.round >= burn_in)
        .filter_map(|r| {
            let loss = r.global_train_loss?;
            let gap = loss - f_star;
            (gap > 0.0).then_some(GapObservation {
                rounds: r.round + 1,
                epochs,
                clients,
                gap,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use fei_fl::RoundRecord;
    use fei_ml::Evaluation;

    use super::*;

    fn record(round: usize, loss: Option<f64>) -> RoundRecord {
        RoundRecord {
            round,
            selected: vec![0],
            responded: vec![0],
            local_stats: vec![],
            global_train_loss: loss,
            test_eval: loss.map(|l| Evaluation {
                loss: l,
                accuracy: 0.5,
            }),
            outcome: fei_fl::RoundOutcome::Full,
            faults: fei_fl::RoundFaultStats::default(),
        }
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = EnergyBreakdown {
            collection_j: 1.0,
            waiting_j: 2.0,
            download_j: 3.0,
            training_j: 4.0,
            upload_j: 5.0,
        };
        assert_eq!(b.total_joules(), 15.0);
        assert_eq!(EnergyBreakdown::default().total_joules(), 0.0);
    }

    #[test]
    fn mean_power_is_energy_over_time() {
        let run = ExperimentRun {
            k: 1,
            e: 1,
            rounds: 1,
            breakdown: EnergyBreakdown {
                training_j: 10.0,
                ..Default::default()
            },
            wall_clock: SimDuration::from_secs(2),
        };
        assert_eq!(run.mean_power_watts(), 5.0);
        let zero = ExperimentRun {
            wall_clock: SimDuration::ZERO,
            ..run
        };
        assert_eq!(zero.mean_power_watts(), 0.0);
    }

    #[test]
    fn gap_observations_skip_burn_in_and_nonpositive() {
        let mut history = TrainingHistory::new();
        history.push(record(0, Some(2.0)));
        history.push(record(1, Some(1.0)));
        history.push(record(2, Some(0.5)));
        history.push(record(3, None));
        history.push(record(4, Some(0.299))); // below f_star -> skipped
        let obs = gap_observations(&history, 5, 3, 0.3, 1);
        assert_eq!(obs.len(), 2);
        assert_eq!(obs[0].rounds, 2);
        assert!((obs[0].gap - 0.7).abs() < 1e-12);
        assert_eq!(obs[0].epochs, 5);
        assert_eq!(obs[0].clients, 3);
        assert_eq!(obs[1].rounds, 3);
    }

    #[test]
    fn gap_observations_empty_history() {
        let history = TrainingHistory::new();
        assert!(gap_observations(&history, 1, 1, 0.0, 0).is_empty());
    }
}
