//! Fault-injected campaigns with energy attribution and live re-planning.
//!
//! The paper's measurements assume a cooperative fleet: every selected Pi
//! answers every round. [`FaultCampaign`] replays the same training under a
//! seeded [`FaultSpec`] and accounts for where the energy actually went:
//!
//! * **useful** joules — rounds that committed and moved the global model;
//! * **wasted** joules — abandoned rounds and devices that trained but never
//!   delivered (crash recovery, exhausted retries, deadline misses);
//! * **retransmit** joules — extra upload airtime burned re-sending lost or
//!   corrupted frames;
//! * **poisoned** joules — spend by compromised devices
//!   ([`FaultCampaign::with_adversary`]) and on honest updates the
//!   coordinator's screen rejected ([`FaultCampaign::with_defense`]).
//!
//! With a planner attached ([`FaultCampaign::with_replanning`]), the
//! coordinator reacts to permanent crashes: when the live fleet falls below
//! the current `K`, it re-runs ACS against the survivors and continues
//! training at the fresh `(K*, E*)` without restarting — the paper's
//! optimization loop made crash-aware.

use fei_core::ledger::{EnergyLedger, EnergyUse};
use fei_core::planner::EeFeiPlanner;
use fei_fl::{
    Adversary, AdversarySpec, DefenseConfig, FaultInjector, FaultSpec, FlError, RoundRecord,
    StopCondition, ToleranceConfig, TrainingHistory,
};
use fei_net::link::Link;

use crate::fl::FlExperiment;
use crate::testbed::Testbed;

/// One live re-planning decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplanEvent {
    /// Round at which the re-plan was applied.
    pub round: usize,
    /// Devices still up when it triggered.
    pub surviving: usize,
    /// The fresh `K*`.
    pub k: usize,
    /// The fresh `E*`.
    pub e: usize,
}

/// Everything a fault campaign produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultCampaignReport {
    /// Per-round training records (outcomes and fault stats included).
    pub history: TrainingHistory,
    /// Where the energy went.
    pub ledger: EnergyLedger,
    /// Re-planning decisions, in order.
    pub replans: Vec<ReplanEvent>,
    /// `(K, E)` in force when the campaign ended.
    pub final_k: usize,
    /// See `final_k`.
    pub final_e: usize,
    /// Terminal error, when the fleet fell below quorum and no re-plan could
    /// save the campaign.
    pub aborted: Option<FlError>,
}

impl FaultCampaignReport {
    /// Rounds until `target` test accuracy, if ever reached.
    pub fn rounds_to_accuracy(&self, target: f64) -> Option<usize> {
        self.history.rounds_to_accuracy(target)
    }
}

/// A fault-injected FL campaign over the simulated prototype.
#[derive(Debug, Clone)]
pub struct FaultCampaign {
    experiment: FlExperiment,
    testbed: Testbed,
    spec: FaultSpec,
    tolerance: ToleranceConfig,
    planner: Option<EeFeiPlanner>,
    adversary: Option<AdversarySpec>,
    defense: Option<DefenseConfig>,
}

impl FaultCampaign {
    /// Builds a campaign from a prepared experiment, the energy testbed, a
    /// fault schedule, and the coordinator's tolerance settings.
    pub fn new(
        experiment: FlExperiment,
        testbed: Testbed,
        spec: FaultSpec,
        tolerance: ToleranceConfig,
    ) -> Self {
        Self {
            experiment,
            testbed,
            spec,
            tolerance,
            planner: None,
            adversary: None,
            defense: None,
        }
    }

    /// Attaches a planner for live re-planning: whenever the live fleet
    /// falls below the current `K`, ACS is re-run against the survivors and
    /// training continues at the fresh `(K*, E*)`. With an adversary also
    /// attached, re-planning prices in the expected screening loss via
    /// [`EeFeiPlanner::replan_for_fleet_under_attack`].
    pub fn with_replanning(mut self, planner: EeFeiPlanner) -> Self {
        self.planner = Some(planner);
        self
    }

    /// Compromises a seeded fraction of the fleet: those devices run
    /// `spec.behavior` every round, and their spend is charged to the
    /// ledger's poisoned category.
    pub fn with_adversary(mut self, spec: AdversarySpec) -> Self {
        self.adversary = Some(spec);
        self
    }

    /// Arms the coordinator's defense: every arriving update is screened
    /// and the survivors are combined with the configured robust rule.
    pub fn with_defense(mut self, defense: DefenseConfig) -> Self {
        self.defense = Some(defense);
        self
    }

    /// The fault schedule in force.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Runs the campaign from `(k, e)` until `stop`, charging every joule to
    /// the ledger as it is spent.
    ///
    /// # Panics
    ///
    /// Panics on an invalid `(k, e)` for the experiment's fleet.
    pub fn run(&self, k: usize, e: usize, stop: StopCondition) -> FaultCampaignReport {
        let injector = FaultInjector::new(self.spec.clone());
        let mut engine = self.experiment.byzantine_engine(
            k,
            e,
            self.tolerance.clone(),
            Some(injector),
            self.adversary,
            self.defense,
        );
        let mut history = TrainingHistory::new();
        let mut ledger = EnergyLedger::new();
        let mut replans = Vec::new();
        let (mut k, mut e) = (k, e);
        let mut reached = false;
        let mut aborted = None;

        while history.len() < stop.max_rounds {
            if let Some(planner) = &self.planner {
                let alive = engine.live_fleet().len();
                if alive > 0 && alive < k {
                    // Under attack, the expected screening loss shrinks the
                    // effective fleet below the survivor count.
                    let replanned = match &self.adversary {
                        Some(spec) => planner.replan_for_fleet_under_attack(alive, spec.fraction),
                        None => planner.replan_for_fleet(alive),
                    };
                    if let Ok(plan) = replanned {
                        let new_k = plan.solution.k.clamp(1, alive);
                        let new_e = plan.solution.e.max(1);
                        if (new_k, new_e) != (k, e) {
                            engine.set_participation(new_k, new_e);
                            (k, e) = (new_k, new_e);
                            replans.push(ReplanEvent {
                                round: engine.rounds_completed(),
                                surviving: alive,
                                k,
                                e,
                            });
                        }
                    }
                }
            }
            match engine.try_run_round() {
                Ok(record) => {
                    self.charge_round(&mut ledger, &record, e, k, engine.adversary());
                    if let (Some(target), Some(eval)) = (stop.target_accuracy, &record.test_eval) {
                        reached = eval.accuracy >= target;
                    }
                    history.push(record);
                    if reached {
                        break;
                    }
                }
                Err(err) => {
                    aborted = Some(err);
                    break;
                }
            }
        }
        if let (Some(target), false) = (stop.target_accuracy, reached) {
            history.record_missed_target(target);
        }
        FaultCampaignReport {
            history,
            ledger,
            replans,
            final_k: k,
            final_e: e,
            aborted,
        }
    }

    /// `(download, training, upload)` joules of one selected device's round
    /// at the current `(E, K)`, from the testbed's calibrated plateaus.
    fn device_joules(&self, epochs: usize, k_concurrent: usize) -> (f64, f64, f64) {
        let profile = self.testbed.pi().profile();
        let samples = self.testbed.config().samples_per_device;
        let download = profile.downloading_w * self.testbed.download_duration().as_secs_f64();
        let training = profile.training_w
            * self
                .testbed
                .pi()
                .training_duration(epochs, samples)
                .as_secs_f64();
        let upload = profile.uploading_w * self.testbed.upload_duration(k_concurrent).as_secs_f64();
        (download, training, upload)
    }

    fn charge_round(
        &self,
        ledger: &mut EnergyLedger,
        record: &RoundRecord,
        epochs: usize,
        k_concurrent: usize,
        adversary: Option<&Adversary>,
    ) {
        let (download_j, training_j, upload_j) = self.device_joules(epochs, k_concurrent);
        let device_j = download_j + training_j + upload_j;

        // Split the responders three ways: compromised devices (their spend
        // served the attack), honest devices whose update the screen
        // rejected anyway (a false positive — spent, delivered, discarded),
        // and productive devices whose update reached aggregation.
        let responders = record.responded.len();
        let compromised = adversary
            .map(|adv| {
                record
                    .responded
                    .iter()
                    .filter(|&&device| adv.is_malicious(device))
                    .count()
            })
            .unwrap_or(0);
        let honest_screened = record
            .faults
            .screened_updates
            .saturating_sub(compromised)
            .min(responders - compromised);
        let productive = responders - compromised - honest_screened;

        // Productive spend: useful on a committed round, pure waste on an
        // abandoned one.
        let usage = if record.outcome.committed() {
            EnergyUse::Useful
        } else {
            EnergyUse::Wasted
        };
        if productive > 0 {
            ledger.charge(
                record.round,
                usage,
                productive as f64 * device_j,
                "device rounds",
            );
        }
        if compromised > 0 {
            ledger.charge(
                record.round,
                EnergyUse::Poisoned,
                compromised as f64 * device_j,
                "compromised device rounds",
            );
        }
        if honest_screened > 0 {
            ledger.charge(
                record.round,
                EnergyUse::Poisoned,
                honest_screened as f64 * device_j,
                "screened-out updates",
            );
        }

        // Selected devices that were up but never made the aggregate —
        // exhausted retries, deadline misses, over-selection surplus. They
        // trained and uploaded for nothing. Crashed devices spend nothing.
        let silent = record
            .selected
            .len()
            .saturating_sub(responders + record.faults.crashed);
        if silent > 0 {
            ledger.charge(
                record.round,
                EnergyUse::Wasted,
                silent as f64 * device_j,
                "undelivered updates",
            );
        }

        // Every retried upload attempt is extra airtime at upload power.
        if record.faults.upload_retries > 0 {
            ledger.charge(
                record.round,
                EnergyUse::Retransmit,
                record.faults.upload_retries as f64 * upload_j,
                "upload retries",
            );
        }

        // Coordinator-protocol control frames: selection notices and the
        // round verdict ride the downlink, heartbeats the uplink. The
        // byte counts mirror exactly what the engines charge to
        // `TransportStats::bytes_control`.
        let selected = record.selected.len();
        let heartbeats = selected.saturating_sub(record.faults.crashed);
        let close = if record.outcome.committed() {
            fei_proto::frames::commit_frame_len(record.responded.len())
        } else {
            fei_proto::frames::abort_frame_len()
        };
        let down_bytes = selected * (fei_proto::frames::select_frame_len(0) + close);
        let up_bytes = heartbeats * fei_proto::frames::heartbeat_frame_len();
        let control_j = Link::wifi_downlink().transfer_energy_joules(down_bytes)
            + Link::wifi_uplink().transfer_energy_joules(up_bytes);
        if control_j > 0.0 {
            ledger.charge(
                record.round,
                EnergyUse::Control,
                control_j,
                "control frames",
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use fei_core::ConvergenceBound;
    use fei_data::SyntheticMnistConfig;
    use fei_fl::RoundOutcome;

    use crate::fl::FlExperimentConfig;
    use crate::testbed::TestbedConfig;
    use crate::RaspberryPi;

    use super::*;

    fn small_experiment() -> FlExperiment {
        FlExperiment::prepare(FlExperimentConfig {
            num_devices: 5,
            scale: 0.01,
            test_scale: 0.01,
            data: SyntheticMnistConfig {
                pixel_noise_std: 0.2,
                label_flip_prob: 0.0,
                ..Default::default()
            },
            ..Default::default()
        })
    }

    fn small_testbed() -> Testbed {
        let config = TestbedConfig {
            num_devices: 5,
            ..Default::default()
        };
        Testbed::new(config, RaspberryPi::paper_calibrated())
    }

    fn planner(testbed: &Testbed) -> EeFeiPlanner {
        let bound = ConvergenceBound::new(1.0, 0.05, 1e-4).unwrap();
        EeFeiPlanner::new(testbed.energy_model(), bound, 0.1, 5).unwrap()
    }

    #[test]
    fn clean_campaign_matches_faultless_run_and_wastes_nothing() {
        let exp = small_experiment();
        let campaign = FaultCampaign::new(
            exp.clone(),
            small_testbed(),
            FaultSpec::default(),
            ToleranceConfig::default(),
        );
        let report = campaign.run(3, 2, StopCondition::rounds(4));
        assert_eq!(report.history.records(), exp.run_rounds(3, 2, 4).records());
        assert_eq!(report.ledger.wasted_joules(), 0.0);
        assert_eq!(report.ledger.retransmit_joules(), 0.0);
        assert_eq!(report.ledger.poisoned_joules(), 0.0);
        assert!(report.ledger.useful_joules() > 0.0);
        assert!(report.replans.is_empty());
        assert!(report.aborted.is_none());
    }

    #[test]
    fn campaigns_are_deterministic() {
        let spec = FaultSpec {
            crash_prob: 0.05,
            upload_loss_prob: 0.2,
            straggler_prob: 0.2,
            ..Default::default()
        };
        let make = || {
            FaultCampaign::new(
                small_experiment(),
                small_testbed(),
                spec.clone(),
                ToleranceConfig::default(),
            )
            .run(3, 2, StopCondition::rounds(6))
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn lossy_uplinks_charge_retransmit_energy() {
        let spec = FaultSpec {
            upload_loss_prob: 0.4,
            ..Default::default()
        };
        let campaign = FaultCampaign::new(
            small_experiment(),
            small_testbed(),
            spec,
            ToleranceConfig::default(),
        );
        let report = campaign.run(4, 2, StopCondition::rounds(8));
        assert!(
            report.ledger.retransmit_joules() > 0.0,
            "{:?}",
            report.ledger
        );
        let retries: usize = report
            .history
            .records()
            .iter()
            .map(|r| r.faults.upload_retries)
            .sum();
        assert!(retries > 0);
    }

    #[test]
    fn quorum_misses_waste_the_round() {
        // Lossy enough that some round misses a full-fleet quorum.
        let spec = FaultSpec {
            upload_loss_prob: 0.6,
            ..Default::default()
        };
        let tolerance = ToleranceConfig {
            quorum: Some(4),
            ..Default::default()
        };
        let campaign = FaultCampaign::new(small_experiment(), small_testbed(), spec, tolerance);
        let report = campaign.run(4, 1, StopCondition::rounds(10));
        let abandoned = report
            .history
            .records()
            .iter()
            .filter(|r| r.outcome == RoundOutcome::Abandoned)
            .count();
        assert!(abandoned > 0, "expected at least one abandoned round");
        assert!(report.ledger.wasted_joules() > 0.0);
    }

    #[test]
    fn permanent_crashes_trigger_replanning() {
        let spec = FaultSpec {
            crash_prob: 0.15,
            restart_rounds: 0, // permanent
            ..Default::default()
        };
        let testbed = small_testbed();
        let planner = planner(&testbed);
        let campaign = FaultCampaign::new(
            small_experiment(),
            testbed,
            spec,
            ToleranceConfig::default(),
        )
        .with_replanning(planner);
        let report = campaign.run(5, 2, StopCondition::rounds(20));
        assert!(
            !report.replans.is_empty(),
            "fleet attrition should force a re-plan"
        );
        assert!(report.final_k < 5, "K must shrink with the fleet");
        for event in &report.replans {
            assert!(event.k <= event.surviving);
        }
    }

    #[test]
    fn adversarial_campaign_charges_poisoned_energy() {
        use fei_fl::{DefenseConfig, RobustRule};
        let campaign = FaultCampaign::new(
            small_experiment(),
            small_testbed(),
            FaultSpec::default(),
            ToleranceConfig::default(),
        )
        .with_adversary(AdversarySpec::sign_flip(0.4))
        .with_defense(DefenseConfig::with_rule(RobustRule::CoordinateMedian {
            assumed_byzantine: 2,
        }));
        let report = campaign.run(5, 2, StopCondition::rounds(4));
        // ⌊0.4 · 5⌋ = 2 compromised devices respond every full-fleet round.
        assert!(report.ledger.poisoned_joules() > 0.0, "{:?}", report.ledger);
        // Poisoned spend counts toward overhead, never toward useful.
        assert!(report.ledger.overhead_fraction() > 0.0);
        assert!(report.ledger.useful_joules() > 0.0);
    }

    #[test]
    fn adversarial_campaigns_are_deterministic() {
        use fei_fl::{DefenseConfig, RobustRule};
        let make = || {
            FaultCampaign::new(
                small_experiment(),
                small_testbed(),
                FaultSpec {
                    upload_loss_prob: 0.2,
                    ..Default::default()
                },
                ToleranceConfig::default(),
            )
            .with_adversary(AdversarySpec::sign_flip(0.4))
            .with_defense(DefenseConfig::with_rule(RobustRule::MultiKrum {
                assumed_byzantine: 2,
            }))
            .run(4, 2, StopCondition::rounds(5))
        };
        assert_eq!(make(), make());
    }

    #[test]
    fn replanning_under_attack_prices_in_the_attacker_fraction() {
        let spec = FaultSpec {
            crash_prob: 0.15,
            restart_rounds: 0, // permanent
            ..Default::default()
        };
        let testbed = small_testbed();
        let planner = planner(&testbed);
        let campaign = FaultCampaign::new(
            small_experiment(),
            testbed,
            spec,
            ToleranceConfig::default(),
        )
        .with_adversary(AdversarySpec::sign_flip(0.2))
        .with_replanning(planner);
        let report = campaign.run(5, 2, StopCondition::rounds(20));
        // Whenever attrition forces a re-plan, the fresh K* must fit the
        // honest core of the survivors, not the full survivor count.
        for event in &report.replans {
            let honest = (event.surviving as f64 * 0.8).floor() as usize;
            assert!(
                event.k <= honest.max(1),
                "K* = {} exceeds honest core {honest} of {} survivors",
                event.k,
                event.surviving
            );
        }
    }

    #[test]
    fn missed_target_is_recorded() {
        let campaign = FaultCampaign::new(
            small_experiment(),
            small_testbed(),
            FaultSpec::default(),
            ToleranceConfig::default(),
        );
        let report = campaign.run(3, 1, StopCondition::accuracy(0.999, 3));
        assert_eq!(report.history.missed_target(), Some(0.999));
        assert_eq!(report.rounds_to_accuracy(0.999), None);
    }
}
