//! Discrete-event execution of testbed experiments.
//!
//! [`crate::Testbed::run_synchronous`] computes round timelines in closed
//! form. This module executes the *same* experiment as a discrete-event
//! simulation on the `fei-sim` kernel: downloads, per-device training
//! completions, the synchronous barrier, and the shared upload window are
//! all scheduled as events. Both paths consume identical random draws, so
//! they must produce identical energies — an equivalence the tests (and the
//! `des_matches_closed_form` integration test) pin down. The DES path is
//! the extension point for behaviours closed forms cannot express
//! (asynchronous aggregation, in-round failures, queueing at the router).

use fei_power::{PowerState, PowerTimeline};
use fei_sim::{DetRng, SimDuration, SimTime, Simulation};

use crate::experiment::{EnergyBreakdown, ExperimentRun};
use crate::testbed::Testbed;

/// Events of one experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// A new global round begins.
    RoundStart { round: usize },
    /// A selected device finished its local training.
    TrainDone { slot: usize, round: usize },
    /// The synchronized upload window completed; the round is over.
    UploadDone { round: usize },
}

/// Per-round scratch state while its events are in flight.
#[derive(Debug, Clone)]
struct RoundState {
    /// Selected device ids, in selection order.
    devices: Vec<usize>,
    /// Training durations per slot.
    train: Vec<SimDuration>,
    /// Training-completion instants per slot.
    train_done_at: Vec<Option<SimTime>>,
    /// Remaining TrainDone events.
    pending: usize,
    /// Round start instant.
    started_at: SimTime,
}

impl Testbed {
    /// Runs a `(K, E, T)` experiment by discrete-event simulation, with
    /// synchronous-barrier semantics identical to
    /// [`Testbed::run_synchronous`]. Returns the run and the straggler-wait
    /// energy.
    ///
    /// # Panics
    ///
    /// Same domain checks as [`Testbed::run`].
    pub fn run_des(&self, k: usize, epochs: usize, rounds: usize) -> (ExperimentRun, f64) {
        assert!(k >= 1 && k <= self.config().num_devices, "K out of range");
        assert!(epochs >= 1, "E must be at least 1");
        assert!(rounds >= 1, "T must be at least 1");
        // The same RNG stream as run_synchronous, consumed in the same
        // order (selection, then per-slot training durations).
        let mut rng = DetRng::new(self.config().seed).fork(0xE1);
        let waiting = SimDuration::from_secs_f64(self.config().waiting_secs);
        let download = self.download_duration();
        let upload = self.upload_duration(k);
        let profile = *self.pi().profile();

        let mut sim: Simulation<Event> = Simulation::new();
        sim.schedule_at(SimTime::ZERO, Event::RoundStart { round: 0 });

        let mut state: Option<RoundState> = None;
        let mut breakdown = EnergyBreakdown::default();
        let mut straggler_wait_j = 0.0;
        let mut wall_clock = SimDuration::ZERO;

        while let Some((now, event)) = sim.step() {
            match event {
                Event::RoundStart { round } => {
                    let devices = rng.sample_indices(self.config().num_devices, k);
                    let train: Vec<SimDuration> = devices
                        .iter()
                        .map(|&d| {
                            self.pi()
                                .measure_training_duration(
                                    epochs,
                                    self.config().samples_per_device,
                                    &mut rng,
                                )
                                .mul_f64(1.0 / self.speed_factors()[d])
                        })
                        .collect();
                    for (slot, &dur) in train.iter().enumerate() {
                        sim.schedule_at(
                            now + waiting + download + dur,
                            Event::TrainDone { slot, round },
                        );
                    }
                    state = Some(RoundState {
                        devices,
                        train,
                        train_done_at: vec![None; k],
                        pending: k,
                        started_at: now,
                    });
                }
                Event::TrainDone { slot, round } => {
                    let st = state.as_mut().expect(
                        "invariant: TrainDone is only scheduled by RoundStart, which set the state",
                    );
                    st.train_done_at[slot] = Some(now);
                    st.pending -= 1;
                    if st.pending == 0 {
                        // Barrier reached: all devices upload together.
                        sim.schedule_at(now + upload, Event::UploadDone { round });
                    }
                }
                Event::UploadDone { round } => {
                    let st = state.take().expect("invariant: UploadDone is only scheduled at the barrier, while the state is live");
                    let barrier_end = now.duration_since(st.started_at) - upload;
                    for slot in 0..st.devices.len() {
                        let train = st.train[slot];
                        let done = st.train_done_at[slot].expect(
                            "invariant: the barrier fires only after every slot recorded TrainDone",
                        );
                        // Idle between this slot's TrainDone and the barrier.
                        let idle_after_training =
                            (st.started_at + barrier_end).duration_since(done);
                        let mut tl = PowerTimeline::new();
                        tl.push(PowerState::Waiting, waiting);
                        tl.push(PowerState::Downloading, download);
                        tl.push(PowerState::Training, train);
                        tl.push(PowerState::Waiting, idle_after_training);
                        tl.push(PowerState::Uploading, upload);
                        breakdown.waiting_j +=
                            tl.energy_in_state_joules(&profile, PowerState::Waiting);
                        breakdown.download_j +=
                            tl.energy_in_state_joules(&profile, PowerState::Downloading);
                        breakdown.training_j +=
                            tl.energy_in_state_joules(&profile, PowerState::Training);
                        breakdown.upload_j +=
                            tl.energy_in_state_joules(&profile, PowerState::Uploading);
                        straggler_wait_j += profile.waiting_w * idle_after_training.as_secs_f64();
                    }
                    if !self.config().preloaded_data {
                        breakdown.collection_j += k as f64
                            * fei_data::IotStream::with_defaults(self.config().samples_per_device)
                                .upload_energy_joules(fei_data::stream::NB_IOT_JOULES_PER_BYTE);
                    }
                    wall_clock += now.duration_since(st.started_at);
                    if round + 1 < rounds {
                        sim.schedule_at(now, Event::RoundStart { round: round + 1 });
                    }
                }
            }
        }

        (
            ExperimentRun {
                k,
                e: epochs,
                rounds,
                breakdown,
                wall_clock,
            },
            straggler_wait_j,
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::testbed::TestbedConfig;
    use crate::RaspberryPi;

    use super::*;

    #[test]
    fn des_matches_closed_form_on_homogeneous_fleet() {
        let tb = Testbed::paper_prototype();
        let (closed, closed_straggle) = tb.run_synchronous(5, 20, 4);
        let (des, des_straggle) = tb.run_des(5, 20, 4);
        assert!((closed.total_joules() - des.total_joules()).abs() < 1e-6);
        assert!((closed_straggle - des_straggle).abs() < 1e-6);
        assert_eq!(closed.wall_clock, des.wall_clock);
    }

    #[test]
    fn des_matches_closed_form_on_heterogeneous_fleet() {
        let mut speeds = vec![1.0; 20];
        speeds[3] = 0.4;
        speeds[11] = 1.6;
        let tb = Testbed::paper_prototype().with_speed_factors(speeds);
        let (closed, closed_straggle) = tb.run_synchronous(20, 10, 3);
        let (des, des_straggle) = tb.run_des(20, 10, 3);
        assert!(
            (closed.total_joules() - des.total_joules()).abs() < 1e-6,
            "closed {} vs des {}",
            closed.total_joules(),
            des.total_joules()
        );
        assert!((closed_straggle - des_straggle).abs() < 1e-6);
    }

    #[test]
    fn des_accounts_collection_when_not_preloaded() {
        let tb = Testbed::new(
            TestbedConfig {
                preloaded_data: false,
                ..Default::default()
            },
            RaspberryPi::paper_calibrated(),
        );
        let (des, _) = tb.run_des(2, 1, 3);
        assert!(des.breakdown.collection_j > 0.0);
        let (closed, _) = tb.run_synchronous(2, 1, 3);
        assert!((des.breakdown.collection_j - closed.breakdown.collection_j).abs() < 1e-9);
    }

    #[test]
    fn des_wall_clock_tracks_slowest_chain() {
        let tb = Testbed::paper_prototype();
        let (one_round, _) = tb.run_des(3, 40, 1);
        // One round: waiting + download + slowest training + upload.
        let lower_bound = tb
            .pi()
            .training_duration(40, tb.config().samples_per_device)
            .as_secs_f64()
            * 0.9;
        assert!(one_round.wall_clock.as_secs_f64() > lower_bound);
    }
}
