//! Wire-level chaos campaigns over the protocol cluster.
//!
//! A [`ChaosCampaign`] drives the fei-proto [`Cluster`] — coordinator,
//! participant fleet, and two lossy links — across a matrix of chaos
//! seeds, and audits the two protocol guarantees under fire:
//!
//! * **liveness** — every run closes its target number of rounds (each
//!   committed or aborted) inside the tick budget;
//! * **safety** — no commit ever aggregates an update from a client whose
//!   heartbeat lease had lapsed (probed by heartbeat-muted participants).
//!
//! The campaign also closes two loops with the rest of the workspace:
//! control-plane bytes are charged to an [`EnergyLedger`] under
//! [`EnergyUse::Control`] at WiFi link energy, and fleet-shrink cues from
//! the coordinator are answered by [`EeFeiPlanner::replan_for_fleet`] —
//! the paper's `(K*, E*)` optimization re-run against the survivors.

use fei_core::ledger::{EnergyLedger, EnergyUse};
use fei_core::planner::EeFeiPlanner;
use fei_net::link::Link;
use fei_proto::{
    ChaosConfig, Cluster, ClusterConfig, ClusterReport, CoordinatorConfig, CoordinatorCrash,
    ParticipantConfig,
};
use fei_sim::DetRng;

/// Stream id for deriving per-seed coordinator crash schedules.
const CRASH_STREAM: u64 = 0xC4A5;

/// One chaos campaign: a misbehaviour profile swept over a seed matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCampaignConfig {
    /// Coordinator protocol parameters shared by every run.
    pub coordinator: CoordinatorConfig,
    /// Honest (heartbeating) participants.
    pub fleet: u64,
    /// Heartbeat-muted participants probing the expiry safety invariant.
    pub muted: u64,
    /// Rounds each run must close.
    pub rounds_per_seed: u64,
    /// Tick budget per run.
    pub max_ticks: u64,
    /// Chaos probabilities applied to both links (per-run seeds are derived
    /// from the matrix below; this profile's own seed is ignored).
    pub profile: ChaosConfig,
    /// Coordinator crashes per run; each run's kill/restart schedule is
    /// derived purely from its seed, so replays stay bit-identical.
    pub coordinator_crashes: u64,
    /// Seed matrix; one cluster run per entry.
    pub seeds: Vec<u64>,
}

impl ChaosCampaignConfig {
    /// The default campaign: 5 honest + 1 muted participant, moderate
    /// four-way chaos, five rounds per seed.
    pub fn default_matrix(seeds: Vec<u64>) -> Self {
        Self {
            coordinator: CoordinatorConfig {
                k: 3,
                over_select: 1,
                quorum: 2,
                epochs: 5,
                heartbeat_interval: 5,
                heartbeat_timeout: 20,
                round_deadline: 40,
            },
            fleet: 5,
            muted: 1,
            rounds_per_seed: 5,
            max_ticks: 5_000,
            profile: ChaosConfig {
                drop_prob: 0.08,
                dup_prob: 0.08,
                reorder_prob: 0.08,
                corrupt_prob: 0.04,
                seed: 0,
            },
            coordinator_crashes: 0,
            seeds,
        }
    }

    /// The same campaign with `crashes` seeded coordinator kill/restart
    /// events per run.
    pub fn with_coordinator_crashes(mut self, crashes: u64) -> Self {
        self.coordinator_crashes = crashes;
        self
    }
}

/// One seed's run, audited.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRun {
    /// The seed that drove both links.
    pub seed: u64,
    /// The cluster's full report.
    pub report: ClusterReport,
    /// Joules charged for this run's control traffic.
    pub control_joules: f64,
    /// `K*` from re-planning against the smallest fleet the coordinator
    /// saw, when a planner was attached and a shrink cue fired.
    pub replanned_k: Option<usize>,
}

/// Everything a chaos campaign produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosCampaignReport {
    /// Per-seed runs, in matrix order.
    pub runs: Vec<ChaosRun>,
    /// Control-plane energy, one [`EnergyUse::Control`] charge per run.
    pub ledger: EnergyLedger,
}

impl ChaosCampaignReport {
    /// Whether every run closed every targeted round in budget.
    pub fn liveness_ok(&self) -> bool {
        self.runs.iter().all(|r| r.report.liveness_ok())
    }

    /// Whether no run ever aggregated an expired client's update.
    pub fn safety_ok(&self) -> bool {
        self.runs.iter().all(|r| r.report.safety_ok())
    }

    /// Whether every coordinator crash recovered cleanly: no double
    /// aggregation across restarts, every pre-crash round settled in budget.
    pub fn recovery_ok(&self) -> bool {
        self.runs.iter().all(|r| r.report.recovery_ok())
    }

    /// Coordinator crashes executed across the whole matrix.
    pub fn total_crashes(&self) -> u64 {
        self.runs.iter().map(|r| r.report.coordinator_crashes).sum()
    }

    /// Rounds committed across the whole matrix.
    pub fn total_committed(&self) -> u64 {
        self.runs.iter().map(|r| r.report.committed).sum()
    }

    /// Rounds aborted across the whole matrix.
    pub fn total_aborted(&self) -> u64 {
        self.runs.iter().map(|r| r.report.aborted).sum()
    }
}

/// The campaign driver.
#[derive(Debug)]
pub struct ChaosCampaign {
    config: ChaosCampaignConfig,
    planner: Option<EeFeiPlanner>,
}

impl ChaosCampaign {
    /// Creates a campaign without re-planning.
    pub fn new(config: ChaosCampaignConfig) -> Self {
        Self {
            config,
            planner: None,
        }
    }

    /// Attaches a planner answering the coordinator's fleet-shrink cues
    /// with a fresh `(K*, E*)` against the survivors.
    pub fn with_replanning(mut self, planner: EeFeiPlanner) -> Self {
        self.planner = Some(planner);
        self
    }

    /// Runs the whole seed matrix and reports.
    pub fn run(&self) -> ChaosCampaignReport {
        let uplink_energy = Link::wifi_uplink();
        let downlink_energy = Link::wifi_downlink();
        let mut runs = Vec::with_capacity(self.config.seeds.len());
        let mut ledger = EnergyLedger::new();
        for (index, &seed) in self.config.seeds.iter().enumerate() {
            let report = Cluster::new(self.cluster_config(seed)).run();

            // Control-plane energy at WiFi link rates, split by direction.
            let control_joules = uplink_energy
                .transfer_energy_joules(report.control_bytes_up as usize)
                + downlink_energy.transfer_energy_joules(report.control_bytes_down as usize);
            ledger.charge(index, EnergyUse::Control, control_joules, "control frames");

            // Uploads buffered into rounds a crash recovery abandoned:
            // radio energy the fleet spent for nothing, billed as waste so
            // the campaign's re-planning sees the true cost of a crash.
            if report.coordinator.wasted_update_bytes > 0 {
                let wasted_joules = uplink_energy
                    .transfer_energy_joules(report.coordinator.wasted_update_bytes as usize);
                ledger.charge(index, EnergyUse::Wasted, wasted_joules, "pre-crash uploads");
            }

            // Graceful degradation: answer the deepest shrink cue with a
            // re-plan for the surviving fleet, exactly as a live
            // coordinator driver would.
            let replanned_k = self.planner.as_ref().and_then(|planner| {
                report
                    .replan_events
                    .iter()
                    .map(|&(_, alive)| alive)
                    .min()
                    .filter(|&alive| alive > 0)
                    .and_then(|alive| planner.replan_for_fleet(alive).ok())
                    .map(|plan| plan.solution.k)
            });

            runs.push(ChaosRun {
                seed,
                report,
                control_joules,
                replanned_k,
            });
        }
        ChaosCampaignReport { runs, ledger }
    }

    fn cluster_config(&self, seed: u64) -> ClusterConfig {
        let mut participants: Vec<ParticipantConfig> = (0..self.config.fleet)
            .map(|client| ParticipantConfig::new(client, 3))
            .collect();
        for client in self.config.fleet..self.config.fleet + self.config.muted {
            participants.push(ParticipantConfig {
                mute_heartbeats: true,
                ..ParticipantConfig::new(client, 3)
            });
        }
        ClusterConfig {
            coordinator: self.config.coordinator.clone(),
            participants,
            uplink: ChaosConfig {
                seed: seed.wrapping_mul(2).wrapping_add(1),
                ..self.config.profile
            },
            downlink: ChaosConfig {
                seed: seed.wrapping_mul(2).wrapping_add(2),
                ..self.config.profile
            },
            target_rounds: self.config.rounds_per_seed,
            max_ticks: self.config.max_ticks,
            global_payload: vec![0xEE; 64],
            crashes: self.crash_schedule(seed),
        }
    }

    /// Derives one run's coordinator kill/restart schedule purely from its
    /// seed: crashes land in the busy early window (so they hit open
    /// rounds) with outages short enough for leases to survive recovery.
    fn crash_schedule(&self, seed: u64) -> Vec<CoordinatorCrash> {
        let mut rng = DetRng::new(seed).fork(CRASH_STREAM);
        let window = self.config.max_ticks.clamp(1, 200);
        (0..self.config.coordinator_crashes)
            .map(|_| CoordinatorCrash {
                at_tick: 10 + rng.next_below(window),
                down_ticks: 2 + rng.next_below(10),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use fei_core::bound::ConvergenceBound;
    use fei_core::energy::RoundEnergyModel;

    use super::*;

    fn planner() -> EeFeiPlanner {
        let energy = RoundEnergyModel::paper_default();
        let bound = ConvergenceBound::new(1.0, 0.05, 1e-4).expect("valid bound");
        EeFeiPlanner::new(energy, bound, 0.1, 20).expect("paper-default planner")
    }

    #[test]
    fn campaign_is_live_and_safe_across_the_matrix() {
        let report = ChaosCampaign::new(ChaosCampaignConfig::default_matrix(vec![1, 2, 3])).run();
        assert!(report.liveness_ok(), "liveness failed: {report:?}");
        assert!(report.safety_ok(), "safety failed: {report:?}");
        assert_eq!(report.total_committed() + report.total_aborted(), 15);
        assert!(report.ledger.control_joules() > 0.0);
        assert_eq!(report.ledger.entries().len(), 3);
    }

    #[test]
    fn campaign_replays_bit_identically_per_seed() {
        let config = ChaosCampaignConfig::default_matrix(vec![7, 8]);
        let a = ChaosCampaign::new(config.clone()).run();
        let b = ChaosCampaign::new(config).run();
        assert_eq!(a, b);
    }

    #[test]
    fn crash_campaign_recovers_and_bills_wasted_work() {
        let config = ChaosCampaignConfig::default_matrix(vec![1, 2, 3]).with_coordinator_crashes(2);
        let report = ChaosCampaign::new(config.clone()).run();
        assert!(report.liveness_ok(), "liveness failed: {report:?}");
        assert!(report.safety_ok(), "safety failed: {report:?}");
        assert!(report.recovery_ok(), "recovery failed: {report:?}");
        assert!(report.total_crashes() > 0, "no crash ever executed");
        // Crash schedules are pure in the seed: replays stay bit-identical.
        let again = ChaosCampaign::new(config).run();
        assert_eq!(report, again);
        // Any round abandoned by recovery had its pre-crash uploads billed
        // as wasted energy.
        let abandoned: u64 = report
            .runs
            .iter()
            .map(|r| r.report.coordinator.aborts.coordinator_crash)
            .sum();
        let wasted: u64 = report
            .runs
            .iter()
            .map(|r| r.report.coordinator.wasted_update_bytes)
            .sum();
        if wasted > 0 {
            assert!(report.ledger.wasted_joules() > 0.0, "{report:?}");
        }
        assert!(
            abandoned > 0 || wasted == 0,
            "wasted bytes without an abandoned round: {report:?}"
        );
    }

    #[test]
    fn shrink_cues_are_answered_with_a_replan() {
        // K = 3 but only 2 participants exist: every round opens shrunken.
        let mut config = ChaosCampaignConfig::default_matrix(vec![4]);
        config.fleet = 2;
        config.muted = 0;
        config.coordinator.quorum = 2;
        config.profile = ChaosConfig::quiet(0);
        let report = ChaosCampaign::new(config).with_replanning(planner()).run();
        assert!(report.liveness_ok(), "{report:?}");
        let run = &report.runs[0];
        assert!(!run.report.replan_events.is_empty());
        let k_star = run.replanned_k.expect("planner attached and cue fired");
        assert!((1..=2).contains(&k_star), "K* = {k_star} for 2 survivors");
    }
}
