//! The Raspberry Pi 4B edge-server model.

use fei_core::calibration::{fit_timing_model, paper_table1, TimingFit, TimingRow};
use fei_power::PowerProfile;
use fei_sim::{DetRng, SimDuration};
use serde::{Deserialize, Serialize};

/// A Raspberry Pi 4B edge server: the paper's measured power plateaus plus
/// the Table-I-calibrated training-time law, with a configurable relative
/// timing jitter.
///
/// # Example
///
/// ```
/// use fei_testbed::RaspberryPi;
///
/// let pi = RaspberryPi::paper_calibrated();
/// let d = pi.training_duration(10, 1000);
/// // Table I row (10, 1000) is 0.1471 s; the fitted law is within a few ms.
/// assert!((d.as_secs_f64() - 0.1471).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaspberryPi {
    profile: PowerProfile,
    timing: TimingFit,
    /// Relative standard deviation of per-measurement timing jitter.
    timing_jitter_frac: f64,
}

impl RaspberryPi {
    /// A Pi calibrated to the paper: power plateaus from §VI-B and the
    /// timing law least-squares-fit to Table I.
    pub fn paper_calibrated() -> Self {
        let timing = fit_timing_model(&paper_table1())
            .expect("invariant: the paper's Table I constants form a well-posed regression");
        Self {
            profile: PowerProfile::raspberry_pi_4b(),
            timing,
            timing_jitter_frac: 0.015,
        }
    }

    /// Creates a Pi with explicit characteristics.
    ///
    /// # Panics
    ///
    /// Panics if `timing_jitter_frac` is negative or not finite.
    pub fn new(profile: PowerProfile, timing: TimingFit, timing_jitter_frac: f64) -> Self {
        assert!(
            timing_jitter_frac.is_finite() && timing_jitter_frac >= 0.0,
            "jitter must be finite and non-negative"
        );
        Self {
            profile,
            timing,
            timing_jitter_frac,
        }
    }

    /// The device's power plateaus.
    pub fn profile(&self) -> &PowerProfile {
        &self.profile
    }

    /// The calibrated timing law.
    pub fn timing(&self) -> &TimingFit {
        &self.timing
    }

    /// Deterministic (noise-free) duration of step (3): `E` local epochs
    /// over `n_k` samples.
    pub fn training_duration(&self, epochs: usize, samples: usize) -> SimDuration {
        SimDuration::from_secs_f64(self.timing.predict_seconds(epochs, samples))
    }

    /// One *measured* duration of step (3): the law plus multiplicative
    /// Gaussian jitter — what the prototype's stopwatch would record.
    pub fn measure_training_duration(
        &self,
        epochs: usize,
        samples: usize,
        rng: &mut DetRng,
    ) -> SimDuration {
        let base = self.timing.predict_seconds(epochs, samples);
        let jittered = base * rng.gaussian_with(1.0, self.timing_jitter_frac).max(0.1);
        SimDuration::from_secs_f64(jittered)
    }

    /// Regenerates a Table-I-shaped measurement campaign: one measured
    /// duration for each `(E, n_k)` in the paper's grid.
    pub fn measure_table1(&self, rng: &mut DetRng) -> Vec<TimingRow> {
        let mut rows = Vec::with_capacity(12);
        for &epochs in &[10usize, 20, 40] {
            for &samples in &[100usize, 500, 1000, 2000] {
                rows.push(TimingRow {
                    epochs,
                    samples,
                    seconds: self
                        .measure_training_duration(epochs, samples, rng)
                        .as_secs_f64(),
                });
            }
        }
        rows
    }
}

impl Default for RaspberryPi {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use fei_core::calibration::TRAINING_POWER_WATTS;

    use super::*;

    #[test]
    fn calibrated_pi_reproduces_table1_within_tolerance() {
        let pi = RaspberryPi::paper_calibrated();
        for row in paper_table1() {
            let predicted = pi.training_duration(row.epochs, row.samples).as_secs_f64();
            let rel = (predicted - row.seconds).abs() / row.seconds;
            assert!(
                rel < 0.25,
                "({}, {}): predicted {predicted} vs measured {} ({:.1}% off)",
                row.epochs,
                row.samples,
                row.seconds,
                rel * 100.0
            );
        }
    }

    #[test]
    fn training_time_scales_linearly_with_samples_and_epochs() {
        let pi = RaspberryPi::paper_calibrated();
        let base = pi.training_duration(10, 1000).as_secs_f64();
        let double_n = pi.training_duration(10, 2000).as_secs_f64();
        let double_e = pi.training_duration(20, 1000).as_secs_f64();
        // Table I: time grows near-linearly in n_k; exactly linearly in E.
        assert!((double_e - 2.0 * base).abs() < 1e-9);
        assert!(double_n > 1.8 * base && double_n < 2.2 * base);
    }

    #[test]
    fn measured_durations_jitter_around_the_law() {
        let pi = RaspberryPi::paper_calibrated();
        let mut rng = DetRng::new(3);
        let base = pi.training_duration(20, 1000).as_secs_f64();
        let n = 200;
        let mean: f64 = (0..n)
            .map(|_| {
                pi.measure_training_duration(20, 1000, &mut rng)
                    .as_secs_f64()
            })
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean - base).abs() / base < 0.01,
            "mean {mean} vs law {base}"
        );
    }

    #[test]
    fn zero_jitter_measures_exactly() {
        let pi = RaspberryPi::new(
            PowerProfile::raspberry_pi_4b(),
            *RaspberryPi::paper_calibrated().timing(),
            0.0,
        );
        let mut rng = DetRng::new(1);
        assert_eq!(
            pi.measure_training_duration(10, 500, &mut rng),
            pi.training_duration(10, 500)
        );
    }

    #[test]
    fn table1_campaign_matches_paper_grid() {
        let pi = RaspberryPi::paper_calibrated();
        let rows = pi.measure_table1(&mut DetRng::new(5));
        assert_eq!(rows.len(), 12);
        // Refitting the measured campaign recovers c0 close to the paper's.
        let fit = fit_timing_model(&rows).unwrap();
        let c0 = fit.seconds_per_sample_epoch * TRAINING_POWER_WATTS;
        assert!((c0 - 7.79e-5).abs() / 7.79e-5 < 0.15, "c0 = {c0}");
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn rejects_negative_jitter() {
        let _ = RaspberryPi::new(
            PowerProfile::raspberry_pi_4b(),
            *RaspberryPi::paper_calibrated().timing(),
            -0.1,
        );
    }
}
