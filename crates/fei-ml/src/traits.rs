//! The [`Model`] abstraction: anything FedAvg can train.
//!
//! The paper evaluates multinomial logistic regression, but its framework is
//! model-agnostic — FedAvg only needs flat parameters to average and a
//! gradient oracle to descend. This trait captures exactly that surface, so
//! the runtime in `fei-fl` trains [`crate::LogisticRegression`] and
//! [`crate::Mlp`] (and any future model) through one code path.

use std::sync::Arc;

use fei_data::Dataset;

use crate::pool::WorkerPool;
use crate::scratch::GradScratch;

/// A trainable classification model with flat-vector parameters.
///
/// The flat representation is the unit of FedAvg aggregation (Eq. 2) and of
/// network transfer, so implementations must keep it stable: `set_flat(
/// to_flat() )` is the identity, and two models of the same architecture
/// have equal [`Model::num_params`].
pub trait Model: Clone + Send + 'static {
    /// Input feature dimension.
    fn dim(&self) -> usize;

    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// Total number of parameters.
    fn num_params(&self) -> usize;

    /// Borrows the flat parameter vector.
    fn to_flat(&self) -> &[f64];

    /// Replaces the parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if `flat.len() != self.num_params()`.
    fn set_flat(&mut self, flat: &[f64]);

    /// Most likely class for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    fn predict(&self, x: &[f64]) -> usize;

    /// Mean loss over a dataset.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or shapes mismatch.
    fn loss(&self, data: &Dataset) -> f64;

    /// Mean loss and flat gradient over the given sample indices.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of bounds, or shapes mismatch.
    fn loss_and_gradient(&self, data: &Dataset, indices: &[usize]) -> (f64, Vec<f64>);

    /// Applies `params -= step * gradient`.
    ///
    /// # Panics
    ///
    /// Panics on gradient length mismatch.
    fn apply_gradient(&mut self, gradient: &[f64], step: f64);

    /// Applies L2 weight decay to the weight parameters (implementations
    /// decide which parameters count as weights vs biases).
    fn apply_weight_decay(&mut self, step: f64, decay: f64);

    /// Mean loss over the given sample indices with the gradient written
    /// into a reused workspace (`scratch.grad()` afterwards).
    ///
    /// Models with a fused kernel override this to run allocation-free and,
    /// with `threads > 1`, bit-identically in parallel. The default falls
    /// back to [`Model::loss_and_gradient`] and stores the allocated
    /// gradient (counted by the scratch's allocation counter, which is how
    /// the perf harness tells fused from fallback paths).
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of bounds, or shapes mismatch.
    fn loss_and_gradient_into(
        &self,
        data: &Dataset,
        indices: &[usize],
        scratch: &mut GradScratch,
        _threads: usize,
    ) -> f64 {
        let (loss, grad) = self.loss_and_gradient(data, indices);
        scratch.store_allocated_grad(grad);
        loss
    }

    /// Mean loss over a dataset against a reused workspace. Must be
    /// **bit-identical** to [`Model::loss`]; implementations override it
    /// only to avoid per-sample allocations on the fast path. The default
    /// simply delegates.
    fn loss_with(&self, data: &Dataset, _scratch: &mut GradScratch) -> f64 {
        self.loss(data)
    }

    /// [`Model::loss_and_gradient_into`] executed on a persistent
    /// [`WorkerPool`]. Must be bit-identical to `loss_and_gradient_into`
    /// for every pool size; the default ignores the pool and runs the
    /// scoped/fallback path with `threads = pool.size()`, which satisfies
    /// the contract trivially. Models with a pool-aware kernel (the fused
    /// logistic regression) override this to skip per-step thread
    /// spawn/join.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of bounds, or shapes mismatch.
    fn loss_and_gradient_pooled(
        &self,
        data: &Arc<Dataset>,
        indices: &[usize],
        scratch: &mut GradScratch,
        pool: &WorkerPool,
    ) -> f64 {
        self.loss_and_gradient_into(data, indices, scratch, pool.size().max(1))
    }

    /// Gradient step fused with weight decay: equivalent to
    /// [`Model::apply_gradient`] followed by [`Model::apply_weight_decay`]
    /// when `decay > 0`, and to the plain step when `decay == 0`.
    /// Implementations may override with a single-pass kernel.
    fn apply_gradient_decayed(&mut self, gradient: &[f64], step: f64, decay: f64) {
        self.apply_gradient(gradient, step);
        if decay > 0.0 {
            self.apply_weight_decay(step, decay);
        }
    }

    /// Size in bytes of the flat `f64` parameter block — the model-upload
    /// payload of the paper's step (3).
    fn payload_bytes(&self) -> usize {
        self.num_params() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LogisticRegression;

    // Generic helpers compile against the trait — the real test is that the
    // trait surface is sufficient for a FedAvg-style loop.
    fn one_sgd_step<M: Model>(model: &mut M, data: &Dataset, lr: f64) -> f64 {
        let all: Vec<usize> = (0..data.len()).collect();
        let (loss, grad) = model.loss_and_gradient(data, &all);
        model.apply_gradient(&grad, lr);
        loss
    }

    #[test]
    fn logistic_regression_satisfies_the_trait() {
        let data = Dataset::from_parts(2, vec![0.0, 0.0, 1.0, 1.0], vec![0, 1], 2);
        let mut model = LogisticRegression::zeros(2, 2);
        let before = one_sgd_step(&mut model, &data, 0.5);
        let after = Model::loss(&model, &data);
        assert!(after < before);
        assert_eq!(Model::num_params(&model), 6);
        assert_eq!(Model::payload_bytes(&model), 48);
    }

    #[test]
    fn flat_round_trip_through_the_trait() {
        let mut a = LogisticRegression::zeros(2, 2);
        let mut b = LogisticRegression::zeros(2, 2);
        Model::set_flat(&mut a, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        Model::set_flat(&mut b, Model::to_flat(&a));
        assert_eq!(a, b);
    }
}
