//! Persistent worker-thread pool with deterministic job routing.
//!
//! The fused parallel gradient kernel, the threaded federated engine, and
//! anything else that wants intra-step parallelism share one
//! [`WorkerPool`] instead of re-spawning `std::thread::scope` workers on
//! every call — on a 10-epoch round the scoped version pays thread
//! spawn/join per gradient step, the pool pays it once per process.
//!
//! **Determinism contract.** The pool itself performs no scheduling
//! decisions that could affect numerics: job `w` submitted through
//! [`WorkerPool::submit`] always runs on worker thread `w % size`, each
//! worker runs its jobs strictly in submission order (a private FIFO
//! channel per worker), and the pool never splits, merges, or re-routes
//! work. Callers partition work *statically* — the gradient kernel deals
//! chunk bands by the same `base + (w < extra)` formula for every pool
//! size — and combine results on the submitting thread in a fixed order,
//! so results are bit-identical for any worker count (including zero
//! workers, where callers fall back to inline execution).
//!
//! Jobs are `'static` closures; callers that need to lend buffers move
//! them into the job and receive them back through their own result
//! channel (see `LogisticRegression::pooled_loss_and_gradient_into`).
//! A panicking job is contained (`catch_unwind`) so the worker thread —
//! and every queued job behind the panic — survives; job authors that
//! must observe panics send them through their result channel.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads with per-worker FIFO
/// queues.
///
/// Dropping the pool closes every queue and joins every worker, so no
/// thread outlives the pool.
pub struct WorkerPool {
    senders: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `size` worker threads. A `size` of zero is allowed and
    /// spawns nothing — [`WorkerPool::submit`] then panics, and callers
    /// are expected to run inline instead (checked via
    /// [`WorkerPool::size`]).
    pub fn new(size: usize) -> Self {
        let mut senders = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        for w in 0..size {
            let (tx, rx) = channel::<Job>();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("fei-pool-{w}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        // Contain panics so one bad job cannot take the
                        // worker (and all jobs queued behind it) down.
                        let _ = catch_unwind(AssertUnwindSafe(job));
                    }
                })
                .expect("invariant: spawning a pool worker thread cannot fail");
            handles.push(handle);
        }
        Self { senders, handles }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Enqueues `job` on worker `worker % size`. Jobs submitted to the
    /// same worker run in submission order; jobs on different workers run
    /// concurrently.
    ///
    /// # Panics
    ///
    /// Panics if the pool has zero workers.
    pub fn submit(&self, worker: usize, job: impl FnOnce() + Send + 'static) {
        assert!(
            !self.senders.is_empty(),
            "cannot submit to an empty WorkerPool"
        );
        let w = worker % self.senders.len();
        self.senders[w]
            .send(Box::new(job))
            .expect("invariant: pool workers outlive the pool handle");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channels ends each worker's recv loop; join so no
        // worker outlives the pool.
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("size", &self.senders.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc::channel;
    use std::sync::Arc;

    use super::*;

    #[test]
    fn runs_jobs_and_reports_size() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.size(), 3);
        let counter = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = channel();
        for w in 0..9 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(w, move || {
                counter.fetch_add(1, Ordering::SeqCst);
                tx.send(w).expect("invariant: test receiver alive");
            });
        }
        let mut seen: Vec<usize> = (0..9).map(|_| rx.recv().expect("job ran")).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..9).collect::<Vec<_>>());
        assert_eq!(counter.load(Ordering::SeqCst), 9);
    }

    #[test]
    fn same_worker_jobs_run_in_submission_order() {
        let pool = WorkerPool::new(1);
        let (tx, rx) = channel();
        for i in 0..32 {
            let tx = tx.clone();
            pool.submit(0, move || {
                tx.send(i).expect("invariant: test receiver alive");
            });
        }
        let order: Vec<i32> = (0..32).map(|_| rx.recv().expect("job ran")).collect();
        assert_eq!(order, (0..32).collect::<Vec<_>>(), "FIFO per worker");
    }

    #[test]
    fn worker_survives_a_panicking_job() {
        let pool = WorkerPool::new(1);
        pool.submit(0, || panic!("job blew up"));
        let (tx, rx) = channel();
        pool.submit(0, move || {
            tx.send(42).expect("invariant: test receiver alive");
        });
        assert_eq!(rx.recv().expect("worker still alive"), 42);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(4);
        let (tx, rx) = channel();
        for w in 0..4 {
            let tx = tx.clone();
            pool.submit(w, move || {
                tx.send(w).expect("invariant: test receiver alive");
            });
        }
        drop(pool); // must not hang, must not lose queued jobs
        drop(tx); // the jobs' clones are gone once the jobs ran
        let mut seen: Vec<usize> = rx.iter().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "empty WorkerPool")]
    fn submit_to_empty_pool_panics() {
        let pool = WorkerPool::new(0);
        pool.submit(0, || {});
    }
}
