//! Preallocated gradient workspace for the fused training fast path.
//!
//! Every buffer the fused logistic-regression kernel needs — the flat
//! gradient, per-chunk partial gradients, per-chunk loss partials, and
//! per-worker logits — lives here, so a trainer that reuses one
//! [`GradScratch`] across epochs (and across rounds) performs **zero heap
//! allocations per epoch** in steady state. The workspace also counts its own
//! allocation events, which the perf harness reports in `BENCH_perf.json`
//! (see EXPERIMENTS.md): after warm-up, the counter must stop moving.

/// Reusable buffers for one trainer's gradient computations.
///
/// Buffers grow on demand (counted via [`GradScratch::allocations`]) and are
/// never shrunk, so a scratch sized by its first full-batch call stays
/// allocation-free for the rest of its life.
#[derive(Debug, Clone, Default)]
pub struct GradScratch {
    /// Final mean gradient, `num_params` long after a kernel call.
    grad: Vec<f64>,
    /// Flattened per-chunk unnormalized gradients: `n_chunks × num_params`.
    partials: Vec<f64>,
    /// Per-chunk unnormalized loss sums: `n_chunks` long.
    losses: Vec<f64>,
    /// Per-worker logits rows: `workers × num_classes`.
    logits: Vec<f64>,
    /// Number of buffer-growth events since construction.
    allocations: u64,
}

impl GradScratch {
    /// Creates an empty workspace; buffers are sized lazily by the first
    /// kernel call.
    pub fn new() -> Self {
        Self::default()
    }

    /// The gradient produced by the most recent kernel call.
    pub fn grad(&self) -> &[f64] {
        &self.grad
    }

    /// Number of buffer-growth (heap allocation) events so far. Constant in
    /// steady state — the property the perf harness asserts.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Grows `buf` to at least `need` elements, counting a heap allocation
    /// only when the existing capacity is insufficient.
    fn ensure(buf: &mut Vec<f64>, need: usize, allocations: &mut u64) {
        if buf.len() < need {
            if need > buf.capacity() {
                *allocations += 1;
            }
            buf.resize(need, 0.0);
        }
    }

    /// Sizes every buffer for a kernel invocation and zeroes the accumulation
    /// regions (a fill, not an allocation, once capacity exists).
    pub(crate) fn prepare(
        &mut self,
        num_params: usize,
        num_classes: usize,
        n_chunks: usize,
        workers: usize,
    ) {
        Self::ensure(&mut self.grad, num_params, &mut self.allocations);
        Self::ensure(
            &mut self.partials,
            n_chunks * num_params,
            &mut self.allocations,
        );
        Self::ensure(&mut self.losses, n_chunks, &mut self.allocations);
        Self::ensure(
            &mut self.logits,
            workers.max(1) * num_classes,
            &mut self.allocations,
        );
        self.partials[..n_chunks * num_params].fill(0.0);
        self.losses[..n_chunks].fill(0.0);
    }

    /// Mutable views for one kernel invocation: `(grad, partials, losses,
    /// logits)`, each truncated to the sizes passed to
    /// [`GradScratch::prepare`].
    pub(crate) fn views(
        &mut self,
        num_params: usize,
        num_classes: usize,
        n_chunks: usize,
        workers: usize,
    ) -> (&mut [f64], &mut [f64], &mut [f64], &mut [f64]) {
        (
            &mut self.grad[..num_params],
            &mut self.partials[..n_chunks * num_params],
            &mut self.losses[..n_chunks],
            &mut self.logits[..workers.max(1) * num_classes],
        )
    }

    /// Stores an externally-computed gradient (the allocating fallback used
    /// by models without a fused kernel). Always counts one allocation: the
    /// fallback allocated to produce `grad`.
    pub(crate) fn store_allocated_grad(&mut self, grad: Vec<f64>) {
        self.grad = grad;
        self.allocations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_prepare_allocates_once() {
        let mut s = GradScratch::new();
        s.prepare(100, 10, 4, 2);
        let after_first = s.allocations();
        assert!(after_first >= 1);
        for _ in 0..50 {
            s.prepare(100, 10, 4, 2);
        }
        assert_eq!(
            s.allocations(),
            after_first,
            "steady state must not allocate"
        );
    }

    #[test]
    fn growth_is_counted() {
        let mut s = GradScratch::new();
        s.prepare(10, 2, 1, 1);
        let small = s.allocations();
        s.prepare(1000, 2, 8, 4);
        assert!(s.allocations() > small);
    }

    #[test]
    fn prepare_zeroes_accumulators() {
        let mut s = GradScratch::new();
        s.prepare(3, 2, 2, 1);
        {
            let (_, partials, losses, _) = s.views(3, 2, 2, 1);
            partials.fill(7.0);
            losses.fill(7.0);
        }
        s.prepare(3, 2, 2, 1);
        let (_, partials, losses, _) = s.views(3, 2, 2, 1);
        assert!(partials.iter().all(|&x| x == 0.0));
        assert!(losses.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn fallback_counts_allocation() {
        let mut s = GradScratch::new();
        s.store_allocated_grad(vec![1.0, 2.0]);
        assert_eq!(s.grad(), &[1.0, 2.0]);
        assert_eq!(s.allocations(), 1);
    }
}
