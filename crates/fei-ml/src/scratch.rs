//! Preallocated gradient workspace for the fused training fast path.
//!
//! Every buffer the fused logistic-regression kernel needs — the flat
//! gradient, per-chunk partial gradients, per-chunk loss partials, per-worker
//! [`ChunkWork`] buffers (logits row, error matrix, gather block, GEMM pack
//! scratch), and the per-worker [`BandState`]s plus model snapshot used by
//! the pooled kernel — lives here, so a trainer that reuses one
//! [`GradScratch`] across epochs (and across rounds) performs **zero heap
//! allocations per epoch** in steady state. The workspace also counts its own
//! allocation events (including those of the nested
//! [`fei_math::MatScratch`] pack buffers), which the perf harness reports in
//! `BENCH_perf.json` (see EXPERIMENTS.md): after warm-up, the counter must
//! stop moving.

use std::sync::Arc;

use fei_math::MatScratch;

use crate::model::LogisticRegression;

/// Grows `buf` to at least `need` elements, counting a heap allocation only
/// when the existing capacity is insufficient, then truncates to exactly
/// `need` so `chunks`-style iteration sees the active region only.
/// (Truncation never releases capacity, so a buffer sized by its largest
/// call stays allocation-free for smaller ones.)
fn ensure_exact<T: Clone + Default>(buf: &mut Vec<T>, need: usize, allocations: &mut u64) {
    if buf.len() < need {
        if need > buf.capacity() {
            *allocations += 1;
        }
        buf.resize(need, T::default());
    }
    buf.truncate(need);
}

/// Per-worker working buffers for the fused gradient kernel's chunk loop:
/// one logits row, the chunk's error matrix `E` (`GRAD_CHUNK × num_classes`,
/// row per sample), a gather block for non-consecutive mini-batch chunks,
/// and the pack scratch for the `G += Eᵀ X` GEMM.
#[derive(Debug, Clone, Default)]
pub(crate) struct ChunkWork {
    /// Logits / probabilities row: `num_classes` long.
    pub(crate) logits: Vec<f64>,
    /// Softmax error rows for one chunk: `GRAD_CHUNK × num_classes`.
    pub(crate) errs: Vec<f64>,
    /// Gathered sample rows (`chunk_len × dim`) when the chunk's indices are
    /// not one consecutive run; sized lazily, so full-batch training never
    /// pays for it.
    pub(crate) xgather: Vec<f64>,
    /// Pack buffers for the chunk-gradient GEMM.
    pub(crate) pack: MatScratch,
    allocations: u64,
}

impl ChunkWork {
    /// Sizes the fixed-shape buffers (logits row, error matrix).
    pub(crate) fn prepare(&mut self, num_classes: usize) {
        ensure_exact(&mut self.logits, num_classes, &mut self.allocations);
        ensure_exact(
            &mut self.errs,
            crate::model::GRAD_CHUNK * num_classes,
            &mut self.allocations,
        );
    }

    /// Sizes the gather block for a `chunk_len × dim` copy and returns it.
    pub(crate) fn gather_block(&mut self, chunk_len: usize, dim: usize) -> &mut [f64] {
        ensure_exact(&mut self.xgather, chunk_len * dim, &mut self.allocations);
        &mut self.xgather
    }

    /// Allocation events of this worker's buffers, pack scratch included.
    pub(crate) fn allocations(&self) -> u64 {
        self.allocations + self.pack.allocations()
    }
}

/// Everything one pool worker owns while computing its band of chunks:
/// partial gradients and loss sums for the band, the band's sample indices,
/// and its [`ChunkWork`]. The state is `take`n out of the scratch, moved
/// into the pool job, and returned through the caller's result channel, so
/// the buffers survive (and stay warm) across gradient steps without any
/// shared-memory aliasing between workers.
#[derive(Debug, Clone, Default)]
pub(crate) struct BandState {
    /// Flattened per-chunk unnormalized gradients: `band_chunks × num_params`.
    pub(crate) partials: Vec<f64>,
    /// Per-chunk unnormalized loss sums: `band_chunks` long.
    pub(crate) losses: Vec<f64>,
    /// The band's sample indices (a contiguous slice of the batch order).
    pub(crate) indices: Vec<usize>,
    /// The worker's chunk-loop buffers.
    pub(crate) work: ChunkWork,
    allocations: u64,
}

impl BandState {
    /// Sizes the band for `band_chunks` chunks covering `band_indices`,
    /// zeroes the gradient accumulators, and copies the indices in.
    pub(crate) fn load(
        &mut self,
        num_params: usize,
        num_classes: usize,
        band_chunks: usize,
        band_indices: &[usize],
    ) {
        ensure_exact(
            &mut self.partials,
            band_chunks * num_params,
            &mut self.allocations,
        );
        self.partials.fill(0.0);
        ensure_exact(&mut self.losses, band_chunks, &mut self.allocations);
        ensure_exact(&mut self.indices, band_indices.len(), &mut self.allocations);
        self.indices.copy_from_slice(band_indices);
        self.work.prepare(num_classes);
    }

    /// Allocation events of this band's buffers, worker buffers included.
    pub(crate) fn allocations(&self) -> u64 {
        self.allocations + self.work.allocations()
    }
}

/// Reusable buffers for one trainer's gradient computations.
///
/// Buffers grow on demand (counted via [`GradScratch::allocations`]) and are
/// never shrunk, so a scratch sized by its first full-batch call stays
/// allocation-free for the rest of its life.
#[derive(Debug, Clone, Default)]
pub struct GradScratch {
    /// Final mean gradient, `num_params` long after a kernel call.
    grad: Vec<f64>,
    /// Flattened per-chunk unnormalized gradients: `n_chunks × num_params`.
    partials: Vec<f64>,
    /// Per-chunk unnormalized loss sums: `n_chunks` long.
    losses: Vec<f64>,
    /// Per-worker chunk-loop buffers for the scoped-thread / serial paths.
    works: Vec<ChunkWork>,
    /// Per-worker band states for the pooled path.
    bands: Vec<BandState>,
    /// Immutable parameter snapshot shared with pool workers. Outside a
    /// pooled kernel call the scratch holds the only handle, so the next
    /// call can refresh it in place via [`Arc::get_mut`] without allocating.
    snapshot: Option<Arc<LogisticRegression>>,
    /// Number of buffer-growth events since construction (this struct's own
    /// vectors; nested worker buffers self-count and are summed in
    /// [`GradScratch::allocations`]).
    allocations: u64,
}

impl GradScratch {
    /// Creates an empty workspace; buffers are sized lazily by the first
    /// kernel call.
    pub fn new() -> Self {
        Self::default()
    }

    /// The gradient produced by the most recent kernel call.
    pub fn grad(&self) -> &[f64] {
        &self.grad
    }

    /// Number of buffer-growth (heap allocation) events so far, across the
    /// scratch's own vectors, every worker's chunk buffers and GEMM pack
    /// scratch, every pooled band, and the snapshot. Constant in steady
    /// state — the property the perf harness asserts.
    pub fn allocations(&self) -> u64 {
        self.allocations
            + self.works.iter().map(ChunkWork::allocations).sum::<u64>()
            + self.bands.iter().map(BandState::allocations).sum::<u64>()
    }

    /// Grows `buf` to at least `need` elements, counting a heap allocation
    /// only when the existing capacity is insufficient.
    fn ensure(buf: &mut Vec<f64>, need: usize, allocations: &mut u64) {
        if buf.len() < need {
            if need > buf.capacity() {
                *allocations += 1;
            }
            buf.resize(need, 0.0);
        }
    }

    /// Sizes every buffer for a kernel invocation and zeroes the accumulation
    /// regions (a fill, not an allocation, once capacity exists).
    pub(crate) fn prepare(
        &mut self,
        num_params: usize,
        num_classes: usize,
        n_chunks: usize,
        workers: usize,
    ) {
        Self::ensure(&mut self.grad, num_params, &mut self.allocations);
        Self::ensure(
            &mut self.partials,
            n_chunks * num_params,
            &mut self.allocations,
        );
        Self::ensure(&mut self.losses, n_chunks, &mut self.allocations);
        let workers = workers.max(1);
        if self.works.len() < workers {
            self.allocations += 1;
            self.works.resize_with(workers, ChunkWork::default);
        }
        for work in &mut self.works[..workers] {
            work.prepare(num_classes);
        }
        self.partials[..n_chunks * num_params].fill(0.0);
        self.losses[..n_chunks].fill(0.0);
    }

    /// Mutable views for one kernel invocation: `(grad, partials, losses,
    /// works)`, each truncated to the sizes passed to
    /// [`GradScratch::prepare`].
    pub(crate) fn views(
        &mut self,
        num_params: usize,
        num_classes: usize,
        n_chunks: usize,
        workers: usize,
    ) -> (&mut [f64], &mut [f64], &mut [f64], &mut [ChunkWork]) {
        let _ = num_classes;
        (
            &mut self.grad[..num_params],
            &mut self.partials[..n_chunks * num_params],
            &mut self.losses[..n_chunks],
            &mut self.works[..workers.max(1)],
        )
    }

    /// Mutable views over just the reduction buffers — `(grad, partials,
    /// losses)` — for paths (the pooled kernel) whose per-worker buffers
    /// live in [`BandState`]s rather than `works`.
    pub(crate) fn reduce_views(
        &mut self,
        num_params: usize,
        n_chunks: usize,
    ) -> (&mut [f64], &mut [f64], &mut [f64]) {
        (
            &mut self.grad[..num_params],
            &mut self.partials[..n_chunks * num_params],
            &mut self.losses[..n_chunks],
        )
    }

    /// A prepared worker-0 [`ChunkWork`] for single-threaded helpers (the
    /// buffer-reusing loss pass).
    pub(crate) fn loss_work(&mut self, num_classes: usize) -> &mut ChunkWork {
        if self.works.is_empty() {
            self.allocations += 1;
            self.works.push(ChunkWork::default());
        }
        self.works[0].prepare(num_classes);
        &mut self.works[0]
    }

    /// Sizes the reduction buffers and band table for a pooled kernel call.
    /// Band partials are zeroed per band in [`BandState::load`]; the main
    /// `partials`/`losses` regions are fully overwritten by
    /// [`GradScratch::absorb_band`] copies, so they are *not* zero-filled
    /// here.
    pub(crate) fn prepare_pooled(&mut self, num_params: usize, n_chunks: usize, workers: usize) {
        Self::ensure(&mut self.grad, num_params, &mut self.allocations);
        Self::ensure(
            &mut self.partials,
            n_chunks * num_params,
            &mut self.allocations,
        );
        Self::ensure(&mut self.losses, n_chunks, &mut self.allocations);
        if self.bands.len() < workers {
            self.allocations += 1;
            self.bands.resize_with(workers, BandState::default);
        }
    }

    /// Moves band `w`'s state out so it can be shipped into a pool job.
    pub(crate) fn take_band(&mut self, w: usize) -> BandState {
        std::mem::take(&mut self.bands[w])
    }

    /// Returns a computed band: copies its partial gradients and loss sums
    /// into the band's slots of the main reduction buffers (band `w` covers
    /// chunks `[start_chunk, start_chunk + band_chunks)`) and stores the
    /// buffers for reuse by the next call.
    pub(crate) fn absorb_band(
        &mut self,
        w: usize,
        state: BandState,
        num_params: usize,
        start_chunk: usize,
        band_chunks: usize,
    ) {
        let p0 = start_chunk * num_params;
        let plen = band_chunks * num_params;
        self.partials[p0..p0 + plen].copy_from_slice(&state.partials[..plen]);
        self.losses[start_chunk..start_chunk + band_chunks]
            .copy_from_slice(&state.losses[..band_chunks]);
        self.bands[w] = state;
    }

    /// A shared snapshot of `model` for pool workers. Refreshed in place
    /// (no allocation) when the scratch holds the sole handle and the shape
    /// matches; cloned fresh (counted) otherwise — the cold path on first
    /// use or after a worker panic leaked a handle.
    pub(crate) fn refresh_snapshot(
        &mut self,
        model: &LogisticRegression,
    ) -> Arc<LogisticRegression> {
        let reused = match self.snapshot.as_mut().and_then(Arc::get_mut) {
            Some(snap)
                if snap.dim() == model.dim() && snap.num_classes() == model.num_classes() =>
            {
                snap.set_flat(model.to_flat());
                true
            }
            _ => false,
        };
        if !reused {
            self.allocations += 1;
            self.snapshot = Some(Arc::new(model.clone()));
        }
        Arc::clone(
            self.snapshot
                .as_ref()
                .expect("invariant: snapshot installed just above"),
        )
    }

    /// Stores an externally-computed gradient (the allocating fallback used
    /// by models without a fused kernel). Always counts one allocation: the
    /// fallback allocated to produce `grad`.
    pub(crate) fn store_allocated_grad(&mut self, grad: Vec<f64>) {
        self.grad = grad;
        self.allocations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeat_prepare_allocates_once() {
        let mut s = GradScratch::new();
        s.prepare(100, 10, 4, 2);
        let after_first = s.allocations();
        assert!(after_first >= 1);
        for _ in 0..50 {
            s.prepare(100, 10, 4, 2);
        }
        assert_eq!(
            s.allocations(),
            after_first,
            "steady state must not allocate"
        );
    }

    #[test]
    fn growth_is_counted() {
        let mut s = GradScratch::new();
        s.prepare(10, 2, 1, 1);
        let small = s.allocations();
        s.prepare(1000, 2, 8, 4);
        assert!(s.allocations() > small);
    }

    #[test]
    fn prepare_zeroes_accumulators() {
        let mut s = GradScratch::new();
        s.prepare(3, 2, 2, 1);
        {
            let (_, partials, losses, _) = s.views(3, 2, 2, 1);
            partials.fill(7.0);
            losses.fill(7.0);
        }
        s.prepare(3, 2, 2, 1);
        let (_, partials, losses, _) = s.views(3, 2, 2, 1);
        assert!(partials.iter().all(|&x| x == 0.0));
        assert!(losses.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn fallback_counts_allocation() {
        let mut s = GradScratch::new();
        s.store_allocated_grad(vec![1.0, 2.0]);
        assert_eq!(s.grad(), &[1.0, 2.0]);
        assert_eq!(s.allocations(), 1);
    }

    #[test]
    fn pooled_band_round_trip_is_allocation_free_when_warm() {
        let mut s = GradScratch::new();
        let np = 12;
        for _ in 0..3 {
            s.prepare_pooled(np, 4, 2);
            for w in 0..2 {
                let mut band = s.take_band(w);
                band.load(np, 3, 2, &[0, 1, 2, 3]);
                band.partials[..2 * np].fill(w as f64 + 1.0);
                band.losses.fill(w as f64 + 1.0);
                s.absorb_band(w, band, np, w * 2, 2);
            }
        }
        let warm = s.allocations();
        s.prepare_pooled(np, 4, 2);
        for w in 0..2 {
            let mut band = s.take_band(w);
            band.load(np, 3, 2, &[0, 1, 2, 3]);
            band.partials[..2 * np].fill(w as f64 + 1.0);
            band.losses.fill(w as f64 + 1.0);
            s.absorb_band(w, band, np, w * 2, 2);
        }
        assert_eq!(s.allocations(), warm, "warm pooled bands must not allocate");
        let (_, partials, losses) = s.reduce_views(np, 4);
        assert_eq!(partials[0], 1.0, "band 0 copied into chunk slot 0");
        assert_eq!(partials[2 * np], 2.0, "band 1 copied into chunk slot 2");
        assert_eq!(losses[3], 2.0);
    }

    #[test]
    fn snapshot_refresh_reuses_the_sole_handle() {
        let mut s = GradScratch::new();
        let mut model = LogisticRegression::zeros(3, 2);
        let first = s.refresh_snapshot(&model);
        let after_first = s.allocations();
        drop(first);
        model.set_flat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 0.5, -0.5]);
        let second = s.refresh_snapshot(&model);
        assert_eq!(second.to_flat(), model.to_flat());
        assert_eq!(
            s.allocations(),
            after_first,
            "refresh with a sole handle must not allocate"
        );
        // A leaked handle forces (and counts) a fresh clone.
        let _leak = Arc::clone(&second);
        drop(second);
        let third = s.refresh_snapshot(&model);
        assert_eq!(third.to_flat(), model.to_flat());
        assert!(s.allocations() > after_first);
    }
}
