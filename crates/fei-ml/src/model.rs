//! The multinomial logistic-regression model.

use fei_data::Dataset;
use fei_math::func::{argmax, log_sum_exp, softmax_in_place};
use fei_math::matrix::{dot, Matrix};
use serde::{Deserialize, Serialize};

/// Multinomial logistic regression: `logits = W x + b`, class probabilities
/// via softmax.
///
/// Parameters are a `num_classes × dim` weight matrix plus a bias vector.
/// [`LogisticRegression::to_flat`] / [`LogisticRegression::from_flat`]
/// expose the parameters as one flat vector — the unit of exchange for
/// FedAvg aggregation and network transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    dim: usize,
    num_classes: usize,
    /// Flat row-major `num_classes × dim` weights followed by `num_classes`
    /// biases.
    params: Vec<f64>,
}

impl LogisticRegression {
    /// Creates a zero-initialized model (the paper's starting point `ω₀`).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `num_classes < 2`.
    pub fn zeros(dim: usize, num_classes: usize) -> Self {
        assert!(dim > 0, "dimension must be non-zero");
        assert!(num_classes >= 2, "need at least two classes");
        Self {
            dim,
            num_classes,
            params: vec![0.0; num_classes * dim + num_classes],
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total number of parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Size in bytes of the flat `f64` parameter block (the model-upload
    /// payload of step (3) in the paper).
    pub fn payload_bytes(&self) -> usize {
        self.params.len() * std::mem::size_of::<f64>()
    }

    /// Borrows the flat parameter vector.
    pub fn to_flat(&self) -> &[f64] {
        &self.params
    }

    /// Replaces the parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match [`LogisticRegression::num_params`].
    pub fn set_flat(&mut self, flat: &[f64]) {
        assert_eq!(
            flat.len(),
            self.params.len(),
            "flat parameter length mismatch"
        );
        self.params.copy_from_slice(flat);
    }

    /// Builds a model of the given shape from a flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the shape.
    pub fn from_flat(dim: usize, num_classes: usize, flat: Vec<f64>) -> Self {
        let mut m = Self::zeros(dim, num_classes);
        m.set_flat(&flat);
        m
    }

    /// Weight row for `class` (length `dim`).
    fn weights_row(&self, class: usize) -> &[f64] {
        &self.params[class * self.dim..(class + 1) * self.dim]
    }

    /// Bias for `class`.
    fn bias(&self, class: usize) -> f64 {
        self.params[self.num_classes * self.dim + class]
    }

    /// Raw logits `W x + b` for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "input has wrong dimension");
        (0..self.num_classes)
            .map(|c| dot(self.weights_row(c), x) + self.bias(c))
            .collect()
    }

    /// Class probabilities for one sample.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut logits = self.logits(x);
        softmax_in_place(&mut logits);
        logits
    }

    /// Most likely class for one sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.logits(x))
    }

    /// Mean cross-entropy loss over a dataset (the local loss `F_k`, Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or its shape mismatches the model.
    pub fn loss(&self, data: &Dataset) -> f64 {
        assert!(!data.is_empty(), "loss over empty dataset");
        self.check_shape(data);
        let mut total = 0.0;
        for (x, y) in data.iter() {
            let logits = self.logits(x);
            total += log_sum_exp(&logits) - logits[y];
        }
        total / data.len() as f64
    }

    /// Mean cross-entropy loss and its gradient over `indices` of `data`
    /// (full batch when `indices` covers the dataset).
    ///
    /// The gradient is returned flat, in the same layout as
    /// [`LogisticRegression::to_flat`].
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of bounds, or shapes mismatch.
    pub fn loss_and_gradient(&self, data: &Dataset, indices: &[usize]) -> (f64, Vec<f64>) {
        assert!(!indices.is_empty(), "gradient over empty batch");
        self.check_shape(data);
        let mut grad = vec![0.0; self.params.len()];
        let mut total_loss = 0.0;
        let bias_base = self.num_classes * self.dim;
        for &i in indices {
            let x = data.sample(i);
            let y = data.label(i);
            let logits = self.logits(x);
            total_loss += log_sum_exp(&logits) - logits[y];
            let mut probs = logits;
            softmax_in_place(&mut probs);
            for (c, &p) in probs.iter().enumerate() {
                let err = p - f64::from(u8::from(c == y));
                // fei-lint: allow(float-eq, reason = "exact-zero gradient sparsity skip; tolerance would bias the accumulated gradient")
                if err == 0.0 {
                    continue;
                }
                let row = &mut grad[c * self.dim..(c + 1) * self.dim];
                for (g, &xi) in row.iter_mut().zip(x) {
                    *g += err * xi;
                }
                grad[bias_base + c] += err;
            }
        }
        let inv_n = 1.0 / indices.len() as f64;
        for g in &mut grad {
            *g *= inv_n;
        }
        (total_loss * inv_n, grad)
    }

    /// Applies `params -= step * gradient` in place.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length mismatches.
    pub fn apply_gradient(&mut self, gradient: &[f64], step: f64) {
        assert_eq!(
            gradient.len(),
            self.params.len(),
            "gradient length mismatch"
        );
        for (p, &g) in self.params.iter_mut().zip(gradient) {
            *p -= step * g;
        }
    }

    /// Applies L2 weight decay in place: `W -= step * decay * W` over the
    /// weight block (biases are left untouched, per convention).
    ///
    /// # Panics
    ///
    /// Panics if `step * decay` is negative or not finite.
    pub fn apply_weight_decay(&mut self, step: f64, decay: f64) {
        let shrink = step * decay;
        assert!(
            shrink.is_finite() && shrink >= 0.0,
            "decay step must be non-negative"
        );
        let weight_len = self.num_classes * self.dim;
        for w in &mut self.params[..weight_len] {
            *w -= shrink * *w;
        }
    }

    /// Squared L2 distance between this model's parameters and another's
    /// (`||ω − ω'||²`, the quantity in the convergence bound).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn param_distance_sq(&self, other: &LogisticRegression) -> f64 {
        assert_eq!(
            (self.dim, self.num_classes),
            (other.dim, other.num_classes),
            "model shapes differ"
        );
        self.params
            .iter()
            .zip(&other.params)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// The weights as a `num_classes × dim` matrix (copy).
    pub fn weights_matrix(&self) -> Matrix {
        Matrix::from_vec(
            self.num_classes,
            self.dim,
            self.params[..self.num_classes * self.dim].to_vec(),
        )
    }

    fn check_shape(&self, data: &Dataset) {
        assert_eq!(data.dim(), self.dim, "dataset dimension mismatch");
        assert_eq!(data.num_classes(), self.num_classes, "class count mismatch");
    }
}

impl crate::traits::Model for LogisticRegression {
    fn dim(&self) -> usize {
        LogisticRegression::dim(self)
    }

    fn num_classes(&self) -> usize {
        LogisticRegression::num_classes(self)
    }

    fn num_params(&self) -> usize {
        LogisticRegression::num_params(self)
    }

    fn to_flat(&self) -> &[f64] {
        LogisticRegression::to_flat(self)
    }

    fn set_flat(&mut self, flat: &[f64]) {
        LogisticRegression::set_flat(self, flat);
    }

    fn predict(&self, x: &[f64]) -> usize {
        LogisticRegression::predict(self, x)
    }

    fn loss(&self, data: &Dataset) -> f64 {
        LogisticRegression::loss(self, data)
    }

    fn loss_and_gradient(&self, data: &Dataset, indices: &[usize]) -> (f64, Vec<f64>) {
        LogisticRegression::loss_and_gradient(self, data, indices)
    }

    fn apply_gradient(&mut self, gradient: &[f64], step: f64) {
        LogisticRegression::apply_gradient(self, gradient, step);
    }

    fn apply_weight_decay(&mut self, step: f64, decay: f64) {
        LogisticRegression::apply_weight_decay(self, step, decay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like_dataset() -> Dataset {
        // Two linearly separable clusters in 2-D.
        Dataset::from_parts(
            2,
            vec![
                0.0, 0.0, //
                0.2, 0.1, //
                1.0, 1.0, //
                0.9, 0.8,
            ],
            vec![0, 0, 1, 1],
            2,
        )
    }

    #[test]
    fn zero_model_is_uniform() {
        let m = LogisticRegression::zeros(3, 4);
        let p = m.predict_proba(&[1.0, 2.0, 3.0]);
        for &pi in &p {
            assert!((pi - 0.25).abs() < 1e-12);
        }
        assert_eq!(m.num_params(), 3 * 4 + 4);
        assert_eq!(m.payload_bytes(), (3 * 4 + 4) * 8);
    }

    #[test]
    fn zero_model_loss_is_log_c() {
        let m = LogisticRegression::zeros(2, 2);
        let loss = m.loss(&xor_like_dataset());
        assert!((loss - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn flat_round_trip() {
        let mut m = LogisticRegression::zeros(2, 2);
        m.set_flat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let copy = LogisticRegression::from_flat(2, 2, m.to_flat().to_vec());
        assert_eq!(m, copy);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_flat_rejects_bad_length() {
        LogisticRegression::zeros(2, 2).set_flat(&[0.0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let data = xor_like_dataset();
        let mut m = LogisticRegression::zeros(2, 2);
        m.set_flat(&[0.3, -0.2, 0.1, 0.4, 0.05, -0.1]);
        let indices: Vec<usize> = (0..data.len()).collect();
        let (_, grad) = m.loss_and_gradient(&data, &indices);

        let eps = 1e-6;
        let mut flat = m.to_flat().to_vec();
        for j in 0..flat.len() {
            let orig = flat[j];
            flat[j] = orig + eps;
            let up = LogisticRegression::from_flat(2, 2, flat.clone()).loss(&data);
            flat[j] = orig - eps;
            let down = LogisticRegression::from_flat(2, 2, flat.clone()).loss(&data);
            flat[j] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grad[j]).abs() < 1e-6,
                "param {j}: numeric {numeric} vs analytic {}",
                grad[j]
            );
        }
    }

    #[test]
    fn gradient_step_decreases_loss() {
        let data = xor_like_dataset();
        let mut m = LogisticRegression::zeros(2, 2);
        let indices: Vec<usize> = (0..data.len()).collect();
        for _ in 0..50 {
            let (loss_before, grad) = m.loss_and_gradient(&data, &indices);
            m.apply_gradient(&grad, 0.5);
            let loss_after = m.loss(&data);
            assert!(loss_after <= loss_before + 1e-12);
        }
        // Separable data: the trained model classifies everything correctly.
        for (x, y) in data.iter() {
            assert_eq!(m.predict(x), y);
        }
    }

    #[test]
    fn minibatch_gradient_averages_subsets() {
        let data = xor_like_dataset();
        let mut m = LogisticRegression::zeros(2, 2);
        m.set_flat(&[0.1, 0.2, -0.1, 0.0, 0.3, -0.3]);
        let (_, g_full) = m.loss_and_gradient(&data, &[0, 1, 2, 3]);
        let (_, g_a) = m.loss_and_gradient(&data, &[0, 1]);
        let (_, g_b) = m.loss_and_gradient(&data, &[2, 3]);
        for j in 0..g_full.len() {
            assert!((g_full[j] - 0.5 * (g_a[j] + g_b[j])).abs() < 1e-12);
        }
    }

    #[test]
    fn weight_decay_shrinks_weights_not_biases() {
        let mut m = LogisticRegression::from_flat(1, 2, vec![2.0, -4.0, 1.0, 3.0]);
        m.apply_weight_decay(0.5, 0.1);
        // Weights shrink by factor (1 - 0.05); biases untouched.
        assert_eq!(m.to_flat(), &[1.9, -3.8, 1.0, 3.0]);
        m.apply_weight_decay(1.0, 0.0);
        assert_eq!(m.to_flat(), &[1.9, -3.8, 1.0, 3.0]);
    }

    #[test]
    fn param_distance_is_squared_l2() {
        let a = LogisticRegression::from_flat(1, 2, vec![0.0, 0.0, 0.0, 0.0]);
        let b = LogisticRegression::from_flat(1, 2, vec![1.0, 2.0, 0.0, 2.0]);
        assert_eq!(a.param_distance_sq(&b), 9.0);
    }

    #[test]
    fn weights_matrix_shape() {
        let m = LogisticRegression::zeros(3, 2);
        let w = m.weights_matrix();
        assert_eq!((w.rows(), w.cols()), (2, 3));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn loss_rejects_mismatched_dataset() {
        let data = xor_like_dataset();
        let m = LogisticRegression::zeros(3, 2);
        let _ = m.loss(&data);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Probabilities always form a distribution, whatever the parameters.
        #[test]
        fn predict_proba_is_distribution(
            params in proptest::collection::vec(-5.0f64..5.0, 8),
            x in proptest::collection::vec(-5.0f64..5.0, 3),
        ) {
            // 2 classes x 3 dims + 2 biases = 8 parameters.
            let m = LogisticRegression::from_flat(3, 2, params);
            let p = m.predict_proba(&x);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        /// A gradient step with a small enough rate never increases the loss
        /// on the batch it was computed from (descent direction property).
        #[test]
        fn small_gradient_step_descends(
            params in proptest::collection::vec(-1.0f64..1.0, 8),
        ) {
            let data = Dataset::from_parts(
                3,
                vec![0.1, 0.9, 0.3, 0.8, 0.2, 0.7],
                vec![0, 1],
                2,
            );
            let mut m = LogisticRegression::from_flat(3, 2, params);
            let (before, grad) = m.loss_and_gradient(&data, &[0, 1]);
            m.apply_gradient(&grad, 1e-3);
            prop_assert!(m.loss(&data) <= before + 1e-9);
        }
    }
}
