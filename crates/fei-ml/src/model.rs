//! The multinomial logistic-regression model.

use std::sync::Arc;

use fei_data::Dataset;
use fei_math::func::{argmax, log_sum_exp, softmax_in_place};
use fei_math::matrix::{dot, Matrix};
use fei_math::pack::{packed_gemm, AOrder};
use fei_math::reduce;
use serde::{Deserialize, Serialize};

use crate::pool::WorkerPool;
use crate::scratch::{BandState, ChunkWork, GradScratch};

/// Samples per fixed-shape chunk in the fused gradient kernel.
///
/// The fused path computes one unnormalized partial gradient per chunk and
/// combines the partials with a fixed pairwise tree
/// ([`fei_math::reduce::tree_reduce_into_first`]). Because the chunking is a
/// pure function of the batch length — never of thread count — the serial
/// and parallel evaluations produce the same bits. The value is part of the
/// numeric contract pinned by the golden-model suite, so it is fixed and
/// public.
pub const GRAD_CHUNK: usize = 64;

/// Multinomial logistic regression: `logits = W x + b`, class probabilities
/// via softmax.
///
/// Parameters are a `num_classes × dim` weight matrix plus a bias vector.
/// [`LogisticRegression::to_flat`] / [`LogisticRegression::from_flat`]
/// expose the parameters as one flat vector — the unit of exchange for
/// FedAvg aggregation and network transfer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    dim: usize,
    num_classes: usize,
    /// Flat row-major `num_classes × dim` weights followed by `num_classes`
    /// biases.
    params: Vec<f64>,
}

impl LogisticRegression {
    /// Creates a zero-initialized model (the paper's starting point `ω₀`).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `num_classes < 2`.
    pub fn zeros(dim: usize, num_classes: usize) -> Self {
        assert!(dim > 0, "dimension must be non-zero");
        assert!(num_classes >= 2, "need at least two classes");
        Self {
            dim,
            num_classes,
            params: vec![0.0; num_classes * dim + num_classes],
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Total number of parameters (weights + biases).
    pub fn num_params(&self) -> usize {
        self.params.len()
    }

    /// Size in bytes of the flat `f64` parameter block (the model-upload
    /// payload of step (3) in the paper).
    pub fn payload_bytes(&self) -> usize {
        self.params.len() * std::mem::size_of::<f64>()
    }

    /// Borrows the flat parameter vector.
    pub fn to_flat(&self) -> &[f64] {
        &self.params
    }

    /// Replaces the parameters from a flat vector.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match [`LogisticRegression::num_params`].
    pub fn set_flat(&mut self, flat: &[f64]) {
        assert_eq!(
            flat.len(),
            self.params.len(),
            "flat parameter length mismatch"
        );
        self.params.copy_from_slice(flat);
    }

    /// Builds a model of the given shape from a flat parameter vector.
    ///
    /// # Panics
    ///
    /// Panics if the length does not match the shape.
    pub fn from_flat(dim: usize, num_classes: usize, flat: Vec<f64>) -> Self {
        let mut m = Self::zeros(dim, num_classes);
        m.set_flat(&flat);
        m
    }

    /// Weight row for `class` (length `dim`).
    fn weights_row(&self, class: usize) -> &[f64] {
        &self.params[class * self.dim..(class + 1) * self.dim]
    }

    /// Bias for `class`.
    fn bias(&self, class: usize) -> f64 {
        self.params[self.num_classes * self.dim + class]
    }

    /// Raw logits `W x + b` for one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim, "input has wrong dimension");
        (0..self.num_classes)
            .map(|c| dot(self.weights_row(c), x) + self.bias(c))
            .collect()
    }

    /// [`LogisticRegression::logits`] into a caller-provided row. Pairs of
    /// weight rows go through [`fei_math::reduce::dot2`], which shares each
    /// load of `x` between two rows; `dot2` is bit-identical to two
    /// [`dot`] calls, so this matches the allocating version exactly.
    fn logits_into(&self, x: &[f64], logits: &mut [f64]) {
        let nc = self.num_classes;
        let mut c = 0;
        while c + 1 < nc {
            let (d0, d1) = reduce::dot2(self.weights_row(c), self.weights_row(c + 1), x);
            logits[c] = d0 + self.bias(c);
            logits[c + 1] = d1 + self.bias(c + 1);
            c += 2;
        }
        if c < nc {
            logits[c] = dot(self.weights_row(c), x) + self.bias(c);
        }
    }

    /// Class probabilities for one sample.
    pub fn predict_proba(&self, x: &[f64]) -> Vec<f64> {
        let mut logits = self.logits(x);
        softmax_in_place(&mut logits);
        logits
    }

    /// Most likely class for one sample.
    pub fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.logits(x))
    }

    /// Mean cross-entropy loss over a dataset (the local loss `F_k`, Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or its shape mismatches the model.
    pub fn loss(&self, data: &Dataset) -> f64 {
        assert!(!data.is_empty(), "loss over empty dataset");
        self.check_shape(data);
        let mut total = 0.0;
        for (x, y) in data.iter() {
            let logits = self.logits(x);
            total += log_sum_exp(&logits) - logits[y];
        }
        total / data.len() as f64
    }

    /// [`LogisticRegression::loss`] against a reused workspace: same
    /// sample-ascending accumulation and the same (striped) dot kernel, but
    /// zero heap allocations once `scratch` is warm. Bit-identical to
    /// [`LogisticRegression::loss`] — the fused trainer paths use it for
    /// their before/after loss measurements.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty or its shape mismatches the model.
    pub fn loss_with(&self, data: &Dataset, scratch: &mut GradScratch) -> f64 {
        assert!(!data.is_empty(), "loss over empty dataset");
        self.check_shape(data);
        let nc = self.num_classes;
        let work = scratch.loss_work(nc);
        let logits = &mut work.logits[..nc];
        let mut total = 0.0;
        for (x, y) in data.iter() {
            self.logits_into(x, logits);
            total += log_sum_exp(logits) - logits[y];
        }
        total / data.len() as f64
    }

    /// Mean cross-entropy loss and its gradient over `indices` of `data`
    /// (full batch when `indices` covers the dataset).
    ///
    /// This is the **reference (naive) kernel**: per-sample logit allocation,
    /// serial dot products, one serial accumulator — the pre-fast-path
    /// arithmetic, kept intact as the baseline that
    /// [`crate::optimizer::GradReduction::Naive`] dispatches to and the perf
    /// harness measures `speedup_vs_naive` against. Hot paths should use
    /// [`LogisticRegression::fused_loss_and_gradient_into`].
    ///
    /// The gradient is returned flat, in the same layout as
    /// [`LogisticRegression::to_flat`].
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of bounds, or shapes mismatch.
    pub fn loss_and_gradient(&self, data: &Dataset, indices: &[usize]) -> (f64, Vec<f64>) {
        assert!(!indices.is_empty(), "gradient over empty batch");
        self.check_shape(data);
        let mut grad = vec![0.0; self.params.len()];
        let mut total_loss = 0.0;
        let bias_base = self.num_classes * self.dim;
        for &i in indices {
            let x = data.sample(i);
            let y = data.label(i);
            let logits: Vec<f64> = (0..self.num_classes)
                .map(|c| reduce::dot_serial(self.weights_row(c), x) + self.bias(c))
                .collect();
            total_loss += log_sum_exp(&logits) - logits[y];
            let mut probs = logits;
            softmax_in_place(&mut probs);
            for (c, &p) in probs.iter().enumerate() {
                let err = p - f64::from(u8::from(c == y));
                // fei-lint: allow(float-eq, reason = "exact-zero gradient sparsity skip mirrored by the packed kernel, keeping the fused path bit-identical; a tolerance would bias the gradient")
                if err == 0.0 {
                    continue;
                }
                let row = &mut grad[c * self.dim..(c + 1) * self.dim];
                for (g, &xi) in row.iter_mut().zip(x) {
                    *g += err * xi;
                }
                grad[bias_base + c] += err;
            }
        }
        let inv_n = 1.0 / indices.len() as f64;
        for g in &mut grad {
            *g *= inv_n;
        }
        (total_loss * inv_n, grad)
    }

    /// Fused single-pass loss + gradient into a reused workspace: per sample,
    /// logits → softmax → gradient accumulation run back-to-back against
    /// scratch buffers, with zero heap allocations once `scratch` is warm.
    ///
    /// The batch is split into fixed [`GRAD_CHUNK`]-sample chunks; each chunk
    /// accumulates an unnormalized partial gradient and loss, and the
    /// partials are combined by the fixed pairwise tree in
    /// [`fei_math::reduce`]. With `threads <= 1` the chunks run on the
    /// calling thread; with `threads > 1` they are dealt to scoped worker
    /// threads in contiguous bands. Either way each chunk's arithmetic and
    /// the combination schedule are pure functions of `indices.len()`, so
    /// **the result is bit-identical for every thread count**.
    ///
    /// Returns the mean loss; the mean gradient is left in `scratch.grad()`.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of bounds, or shapes mismatch.
    pub fn fused_loss_and_gradient_into(
        &self,
        data: &Dataset,
        indices: &[usize],
        scratch: &mut GradScratch,
        threads: usize,
    ) -> f64 {
        assert!(!indices.is_empty(), "gradient over empty batch");
        self.check_shape(data);
        let np = self.params.len();
        let nc = self.num_classes;
        let n_chunks = indices.len().div_ceil(GRAD_CHUNK);
        let workers = threads.max(1).min(n_chunks);
        scratch.prepare(np, nc, n_chunks, workers);
        let (grad, partials, losses, works) = scratch.views(np, nc, n_chunks, workers);

        if workers <= 1 {
            let work = &mut works[0];
            for ((chunk, part), loss) in indices
                .chunks(GRAD_CHUNK)
                .zip(partials.chunks_mut(np))
                .zip(losses.iter_mut())
            {
                *loss = self.grad_chunk_into(data, chunk, part, work);
            }
        } else {
            // Deal chunk ids to workers in contiguous bands. Band boundaries
            // affect only which thread computes a chunk, never the chunk's
            // content or the reduction order.
            let base = n_chunks / workers;
            let extra = n_chunks % workers;
            std::thread::scope(|scope| {
                let mut rest_partials = &mut *partials;
                let mut rest_losses = &mut *losses;
                let mut rest_works = &mut *works;
                let mut chunk0 = 0usize;
                for w in 0..workers {
                    let band = base + usize::from(w < extra);
                    let (band_partials, rp) = rest_partials.split_at_mut(band * np);
                    rest_partials = rp;
                    let (band_losses, rl) = rest_losses.split_at_mut(band);
                    rest_losses = rl;
                    let (work, rw) = rest_works.split_at_mut(1);
                    rest_works = rw;
                    let work = &mut work[0];
                    let s0 = chunk0 * GRAD_CHUNK;
                    let s1 = ((chunk0 + band) * GRAD_CHUNK).min(indices.len());
                    let band_indices = &indices[s0..s1];
                    chunk0 += band;
                    scope.spawn(move || {
                        for ((chunk, part), loss) in band_indices
                            .chunks(GRAD_CHUNK)
                            .zip(band_partials.chunks_mut(np))
                            .zip(band_losses.iter_mut())
                        {
                            *loss = self.grad_chunk_into(data, chunk, part, work);
                        }
                    });
                }
            });
        }

        reduce::tree_reduce_into_first(partials, n_chunks, np);
        let total_loss = reduce::tree_reduce_scalars(losses);
        let inv_n = 1.0 / indices.len() as f64;
        for (g, &p) in grad.iter_mut().zip(partials[..np].iter()) {
            *g = p * inv_n;
        }
        total_loss * inv_n
    }

    /// One chunk of the fused kernel: accumulates the unnormalized gradient
    /// of `chunk` into `out` and returns the unnormalized loss sum. Pure in
    /// `(self, data, chunk)`, which is what makes chunk-to-thread assignment
    /// irrelevant to the result.
    ///
    /// Two phases. **Phase A** walks the chunk's samples in order: logits
    /// (paired striped dots), loss, softmax, the error row `E[s, ·]`, and
    /// the bias gradients. **Phase B** accumulates the whole weight-block
    /// gradient as one packed GEMM, `G += Eᵀ X`, over the chunk's sample
    /// rows. The packed kernel adds contributions `k`(=sample)-ascending
    /// per output element with an exact per-`(i, k)` zero skip on `E` —
    /// precisely the order and skip of the historical per-sample loop — so
    /// the restructure changes throughput, not a single output bit.
    fn grad_chunk_into(
        &self,
        data: &Dataset,
        chunk: &[usize],
        out: &mut [f64],
        work: &mut ChunkWork,
    ) -> f64 {
        let nc = self.num_classes;
        let dim = self.dim;
        let bias_base = nc * dim;
        let m = chunk.len();
        let mut loss_sum = 0.0;

        // Phase A: per-sample logits → loss → softmax → error row + bias grad.
        for (s, &i) in chunk.iter().enumerate() {
            let x = data.sample(i);
            let y = data.label(i);
            let logits = &mut work.logits[..nc];
            self.logits_into(x, logits);
            loss_sum += log_sum_exp(logits) - logits[y];
            softmax_in_place(logits);
            for c in 0..nc {
                let err = work.logits[c] - f64::from(u8::from(c == y));
                work.errs[s * nc + c] = err;
                // fei-lint: allow(float-eq, reason = "exact-zero gradient sparsity skip mirrored by the packed kernel, keeping the fused path bit-identical; a tolerance would bias the gradient")
                if err == 0.0 {
                    continue;
                }
                out[bias_base + c] += err;
            }
        }

        // Phase B: weight-block gradient as a packed GEMM. A full-batch
        // chunk is a consecutive index run, so X is borrowed straight from
        // the dataset's flat feature buffer; shuffled mini-batch chunks
        // gather their rows into the reusable block first.
        let consecutive = chunk.windows(2).all(|w| w[1] == w[0] + 1);
        let errs = &work.errs[..m * nc];
        if consecutive {
            let i0 = chunk[0];
            let x_block = &data.features_flat()[i0 * dim..(i0 + m) * dim];
            packed_gemm(
                errs,
                AOrder::Transposed,
                x_block,
                &mut out[..bias_base],
                nc,
                m,
                dim,
                &mut work.pack,
            );
        } else {
            let x_block = work.gather_block(m, dim);
            for (s, &i) in chunk.iter().enumerate() {
                x_block[s * dim..(s + 1) * dim].copy_from_slice(data.sample(i));
            }
            let errs = &work.errs[..m * nc];
            packed_gemm(
                errs,
                AOrder::Transposed,
                &work.xgather[..m * dim],
                &mut out[..bias_base],
                nc,
                m,
                dim,
                &mut work.pack,
            );
        }
        loss_sum
    }

    /// [`LogisticRegression::fused_loss_and_gradient_into`] on a persistent
    /// [`WorkerPool`] instead of per-call scoped threads: the batch is dealt
    /// to `min(pool.size(), n_chunks)` contiguous chunk bands by the same
    /// `base + (w < extra)` formula, each band is computed by pool worker
    /// `w` against worker-owned buffers (shipped in and out of the job via
    /// a result channel — no shared mutable state), and the partials are
    /// combined by the identical fixed pairwise tree. **Bit-identical to
    /// the scoped variant with `threads = pool.size()`** — and therefore to
    /// every other thread count — at a fraction of the per-step overhead,
    /// because no threads are spawned or joined per gradient step.
    ///
    /// Worker panics are re-raised on the calling thread after every band
    /// has reported, so the pool and the scratch stay reusable.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of bounds, or shapes mismatch.
    pub fn pooled_loss_and_gradient_into(
        &self,
        data: &Arc<Dataset>,
        indices: &[usize],
        scratch: &mut GradScratch,
        pool: &WorkerPool,
    ) -> f64 {
        assert!(!indices.is_empty(), "gradient over empty batch");
        self.check_shape(data);
        let np = self.params.len();
        let nc = self.num_classes;
        let n_chunks = indices.len().div_ceil(GRAD_CHUNK);
        let workers = pool.size().min(n_chunks);
        if workers <= 1 {
            return self.fused_loss_and_gradient_into(data, indices, scratch, 1);
        }
        scratch.prepare_pooled(np, n_chunks, workers);
        let snapshot = scratch.refresh_snapshot(self);

        let base = n_chunks / workers;
        let extra = n_chunks % workers;
        let (result_tx, result_rx) = std::sync::mpsc::channel();
        let mut chunk0 = 0usize;
        for w in 0..workers {
            let band = base + usize::from(w < extra);
            let s0 = chunk0 * GRAD_CHUNK;
            let s1 = ((chunk0 + band) * GRAD_CHUNK).min(indices.len());
            let mut state = scratch.take_band(w);
            state.load(np, nc, band, &indices[s0..s1]);
            chunk0 += band;
            let model = Arc::clone(&snapshot);
            let data = Arc::clone(data);
            let tx = result_tx.clone();
            pool.submit(w, move || {
                // The Arc handles ride inside the result so they are fully
                // released (on success *and* on panic) before the caller's
                // next snapshot refresh observes the refcount.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    model.run_band(&data, &mut state);
                    (state, model, data)
                }));
                let _ = tx.send((w, outcome));
            });
        }
        drop(result_tx);

        let mut worker_panic = None;
        for _ in 0..workers {
            let (w, outcome) = result_rx
                .recv()
                .expect("invariant: every pool job reports exactly once");
            match outcome {
                Ok((state, _model, _data)) => {
                    let band = base + usize::from(w < extra);
                    let start = w * base + w.min(extra);
                    scratch.absorb_band(w, state, np, start, band);
                }
                Err(payload) => worker_panic = Some(payload),
            }
        }
        drop(snapshot);
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }

        let (grad, partials, losses) = scratch.reduce_views(np, n_chunks);
        reduce::tree_reduce_into_first(partials, n_chunks, np);
        let total_loss = reduce::tree_reduce_scalars(losses);
        let inv_n = 1.0 / indices.len() as f64;
        for (g, &p) in grad.iter_mut().zip(partials[..np].iter()) {
            *g = p * inv_n;
        }
        total_loss * inv_n
    }

    /// Computes one band of chunks into `state` (the pool-worker side of
    /// [`LogisticRegression::pooled_loss_and_gradient_into`]). Chunking and
    /// per-chunk arithmetic are exactly those of the scoped-thread path.
    pub(crate) fn run_band(&self, data: &Dataset, state: &mut BandState) {
        let np = self.params.len();
        let BandState {
            partials,
            losses,
            indices,
            work,
            ..
        } = state;
        for ((chunk, part), loss) in indices
            .chunks(GRAD_CHUNK)
            .zip(partials.chunks_mut(np))
            .zip(losses.iter_mut())
        {
            *loss = self.grad_chunk_into(data, chunk, part, work);
        }
    }

    /// Applies `params -= step * gradient` in place.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length mismatches.
    pub fn apply_gradient(&mut self, gradient: &[f64], step: f64) {
        assert_eq!(
            gradient.len(),
            self.params.len(),
            "gradient length mismatch"
        );
        for (p, &g) in self.params.iter_mut().zip(gradient) {
            *p -= step * g;
        }
    }

    /// Applies L2 weight decay in place: `W -= step * decay * W` over the
    /// weight block (biases are left untouched, per convention).
    ///
    /// # Panics
    ///
    /// Panics if `step * decay` is negative or not finite.
    pub fn apply_weight_decay(&mut self, step: f64, decay: f64) {
        let shrink = step * decay;
        assert!(
            shrink.is_finite() && shrink >= 0.0,
            "decay step must be non-negative"
        );
        let weight_len = self.num_classes * self.dim;
        for w in &mut self.params[..weight_len] {
            *w -= shrink * *w;
        }
    }

    /// Fused gradient step + weight decay: one pass over the weight block
    /// via [`fei_math::reduce::fused_axpy_shrink`] (half the memory traffic
    /// of step-then-decay), plain step over the biases. Arithmetic matches
    /// [`LogisticRegression::apply_gradient`] followed by
    /// [`LogisticRegression::apply_weight_decay`] operation-for-operation.
    ///
    /// # Panics
    ///
    /// Panics if the gradient length mismatches or `step * decay` is
    /// negative or not finite.
    pub fn apply_gradient_decayed(&mut self, gradient: &[f64], step: f64, decay: f64) {
        assert_eq!(
            gradient.len(),
            self.params.len(),
            "gradient length mismatch"
        );
        let shrink = step * decay;
        assert!(
            shrink.is_finite() && shrink >= 0.0,
            "decay step must be non-negative"
        );
        // fei-lint: allow(float-eq, reason = "exact-zero shrink selects the plain step, preserving bit-identity (incl. -0.0 weights) with apply_gradient when decay is disabled")
        if shrink == 0.0 {
            self.apply_gradient(gradient, step);
            return;
        }
        let weight_len = self.num_classes * self.dim;
        reduce::fused_axpy_shrink(
            &mut self.params[..weight_len],
            -step,
            &gradient[..weight_len],
            shrink,
        );
        for (p, &g) in self.params[weight_len..]
            .iter_mut()
            .zip(&gradient[weight_len..])
        {
            *p -= step * g;
        }
    }

    /// Squared L2 distance between this model's parameters and another's
    /// (`||ω − ω'||²`, the quantity in the convergence bound).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn param_distance_sq(&self, other: &LogisticRegression) -> f64 {
        assert_eq!(
            (self.dim, self.num_classes),
            (other.dim, other.num_classes),
            "model shapes differ"
        );
        self.params
            .iter()
            .zip(&other.params)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }

    /// The weights as a `num_classes × dim` matrix (copy).
    pub fn weights_matrix(&self) -> Matrix {
        Matrix::from_vec(
            self.num_classes,
            self.dim,
            self.params[..self.num_classes * self.dim].to_vec(),
        )
    }

    fn check_shape(&self, data: &Dataset) {
        assert_eq!(data.dim(), self.dim, "dataset dimension mismatch");
        assert_eq!(data.num_classes(), self.num_classes, "class count mismatch");
    }
}

impl crate::traits::Model for LogisticRegression {
    fn dim(&self) -> usize {
        LogisticRegression::dim(self)
    }

    fn num_classes(&self) -> usize {
        LogisticRegression::num_classes(self)
    }

    fn num_params(&self) -> usize {
        LogisticRegression::num_params(self)
    }

    fn to_flat(&self) -> &[f64] {
        LogisticRegression::to_flat(self)
    }

    fn set_flat(&mut self, flat: &[f64]) {
        LogisticRegression::set_flat(self, flat);
    }

    fn predict(&self, x: &[f64]) -> usize {
        LogisticRegression::predict(self, x)
    }

    fn loss(&self, data: &Dataset) -> f64 {
        LogisticRegression::loss(self, data)
    }

    fn loss_and_gradient(&self, data: &Dataset, indices: &[usize]) -> (f64, Vec<f64>) {
        LogisticRegression::loss_and_gradient(self, data, indices)
    }

    fn apply_gradient(&mut self, gradient: &[f64], step: f64) {
        LogisticRegression::apply_gradient(self, gradient, step);
    }

    fn apply_weight_decay(&mut self, step: f64, decay: f64) {
        LogisticRegression::apply_weight_decay(self, step, decay);
    }

    fn loss_and_gradient_into(
        &self,
        data: &Dataset,
        indices: &[usize],
        scratch: &mut GradScratch,
        threads: usize,
    ) -> f64 {
        LogisticRegression::fused_loss_and_gradient_into(self, data, indices, scratch, threads)
    }

    fn loss_with(&self, data: &Dataset, scratch: &mut GradScratch) -> f64 {
        LogisticRegression::loss_with(self, data, scratch)
    }

    fn loss_and_gradient_pooled(
        &self,
        data: &Arc<Dataset>,
        indices: &[usize],
        scratch: &mut GradScratch,
        pool: &WorkerPool,
    ) -> f64 {
        LogisticRegression::pooled_loss_and_gradient_into(self, data, indices, scratch, pool)
    }

    fn apply_gradient_decayed(&mut self, gradient: &[f64], step: f64, decay: f64) {
        LogisticRegression::apply_gradient_decayed(self, gradient, step, decay);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like_dataset() -> Dataset {
        // Two linearly separable clusters in 2-D.
        Dataset::from_parts(
            2,
            vec![
                0.0, 0.0, //
                0.2, 0.1, //
                1.0, 1.0, //
                0.9, 0.8,
            ],
            vec![0, 0, 1, 1],
            2,
        )
    }

    #[test]
    fn zero_model_is_uniform() {
        let m = LogisticRegression::zeros(3, 4);
        let p = m.predict_proba(&[1.0, 2.0, 3.0]);
        for &pi in &p {
            assert!((pi - 0.25).abs() < 1e-12);
        }
        assert_eq!(m.num_params(), 3 * 4 + 4);
        assert_eq!(m.payload_bytes(), (3 * 4 + 4) * 8);
    }

    #[test]
    fn zero_model_loss_is_log_c() {
        let m = LogisticRegression::zeros(2, 2);
        let loss = m.loss(&xor_like_dataset());
        assert!((loss - (2.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn flat_round_trip() {
        let mut m = LogisticRegression::zeros(2, 2);
        m.set_flat(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let copy = LogisticRegression::from_flat(2, 2, m.to_flat().to_vec());
        assert_eq!(m, copy);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_flat_rejects_bad_length() {
        LogisticRegression::zeros(2, 2).set_flat(&[0.0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let data = xor_like_dataset();
        let mut m = LogisticRegression::zeros(2, 2);
        m.set_flat(&[0.3, -0.2, 0.1, 0.4, 0.05, -0.1]);
        let indices: Vec<usize> = (0..data.len()).collect();
        let (_, grad) = m.loss_and_gradient(&data, &indices);

        let eps = 1e-6;
        let mut flat = m.to_flat().to_vec();
        for j in 0..flat.len() {
            let orig = flat[j];
            flat[j] = orig + eps;
            let up = LogisticRegression::from_flat(2, 2, flat.clone()).loss(&data);
            flat[j] = orig - eps;
            let down = LogisticRegression::from_flat(2, 2, flat.clone()).loss(&data);
            flat[j] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - grad[j]).abs() < 1e-6,
                "param {j}: numeric {numeric} vs analytic {}",
                grad[j]
            );
        }
    }

    #[test]
    fn gradient_step_decreases_loss() {
        let data = xor_like_dataset();
        let mut m = LogisticRegression::zeros(2, 2);
        let indices: Vec<usize> = (0..data.len()).collect();
        for _ in 0..50 {
            let (loss_before, grad) = m.loss_and_gradient(&data, &indices);
            m.apply_gradient(&grad, 0.5);
            let loss_after = m.loss(&data);
            assert!(loss_after <= loss_before + 1e-12);
        }
        // Separable data: the trained model classifies everything correctly.
        for (x, y) in data.iter() {
            assert_eq!(m.predict(x), y);
        }
    }

    #[test]
    fn minibatch_gradient_averages_subsets() {
        let data = xor_like_dataset();
        let mut m = LogisticRegression::zeros(2, 2);
        m.set_flat(&[0.1, 0.2, -0.1, 0.0, 0.3, -0.3]);
        let (_, g_full) = m.loss_and_gradient(&data, &[0, 1, 2, 3]);
        let (_, g_a) = m.loss_and_gradient(&data, &[0, 1]);
        let (_, g_b) = m.loss_and_gradient(&data, &[2, 3]);
        for j in 0..g_full.len() {
            assert!((g_full[j] - 0.5 * (g_a[j] + g_b[j])).abs() < 1e-12);
        }
    }

    #[test]
    fn weight_decay_shrinks_weights_not_biases() {
        let mut m = LogisticRegression::from_flat(1, 2, vec![2.0, -4.0, 1.0, 3.0]);
        m.apply_weight_decay(0.5, 0.1);
        // Weights shrink by factor (1 - 0.05); biases untouched.
        assert_eq!(m.to_flat(), &[1.9, -3.8, 1.0, 3.0]);
        m.apply_weight_decay(1.0, 0.0);
        assert_eq!(m.to_flat(), &[1.9, -3.8, 1.0, 3.0]);
    }

    #[test]
    fn param_distance_is_squared_l2() {
        let a = LogisticRegression::from_flat(1, 2, vec![0.0, 0.0, 0.0, 0.0]);
        let b = LogisticRegression::from_flat(1, 2, vec![1.0, 2.0, 0.0, 2.0]);
        assert_eq!(a.param_distance_sq(&b), 9.0);
    }

    #[test]
    fn weights_matrix_shape() {
        let m = LogisticRegression::zeros(3, 2);
        let w = m.weights_matrix();
        assert_eq!((w.rows(), w.cols()), (2, 3));
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn loss_rejects_mismatched_dataset() {
        let data = xor_like_dataset();
        let m = LogisticRegression::zeros(3, 2);
        let _ = m.loss(&data);
    }

    /// A deterministic many-sample dataset spanning several GRAD_CHUNKs.
    pub(super) fn chunky_dataset(n: usize, dim: usize, classes: usize) -> Dataset {
        let mut xs = Vec::with_capacity(n * dim);
        let mut ys = Vec::with_capacity(n);
        let mut state = 0x5EEDu64;
        for i in 0..n {
            for _ in 0..dim {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                xs.push(((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5);
            }
            ys.push(i % classes);
        }
        Dataset::from_parts(dim, xs, ys, classes)
    }

    pub(super) fn warm_model(dim: usize, classes: usize) -> LogisticRegression {
        let mut m = LogisticRegression::zeros(dim, classes);
        let flat: Vec<f64> = (0..m.num_params())
            .map(|i| ((i * 37 % 101) as f64 - 50.0) / 200.0)
            .collect();
        m.set_flat(&flat);
        m
    }

    #[test]
    fn fused_parallel_bit_identical_to_fused_serial() {
        // 300 samples -> 5 chunks of GRAD_CHUNK=64 (last partial); every
        // thread count must produce the same bits as the serial evaluation.
        let data = chunky_dataset(300, 12, 4);
        let model = warm_model(12, 4);
        let indices: Vec<usize> = (0..data.len()).collect();

        let mut serial = GradScratch::new();
        let loss_serial = model.fused_loss_and_gradient_into(&data, &indices, &mut serial, 1);
        for threads in [2, 3, 4, 8, 64] {
            let mut parallel = GradScratch::new();
            let loss_par =
                model.fused_loss_and_gradient_into(&data, &indices, &mut parallel, threads);
            assert_eq!(
                loss_serial.to_bits(),
                loss_par.to_bits(),
                "loss differs at {threads} threads"
            );
            assert_eq!(
                serial.grad(),
                parallel.grad(),
                "gradient differs at {threads} threads"
            );
        }
    }

    #[test]
    fn fused_matches_naive_within_tolerance() {
        let data = chunky_dataset(200, 9, 3);
        let model = warm_model(9, 3);
        let indices: Vec<usize> = (0..data.len()).collect();
        let (naive_loss, naive_grad) = model.loss_and_gradient(&data, &indices);
        let mut scratch = GradScratch::new();
        let fused_loss = model.fused_loss_and_gradient_into(&data, &indices, &mut scratch, 1);
        assert!(
            (fused_loss - naive_loss).abs() < 1e-12,
            "{fused_loss} vs {naive_loss}"
        );
        for (f, n) in scratch.grad().iter().zip(&naive_grad) {
            assert!((f - n).abs() < 1e-12, "{f} vs {n}");
        }
    }

    #[test]
    fn fused_gradient_matches_finite_differences() {
        let data = xor_like_dataset();
        let mut m = LogisticRegression::zeros(2, 2);
        m.set_flat(&[0.3, -0.2, 0.1, 0.4, 0.05, -0.1]);
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut scratch = GradScratch::new();
        m.fused_loss_and_gradient_into(&data, &indices, &mut scratch, 1);

        let eps = 1e-6;
        let mut flat = m.to_flat().to_vec();
        for j in 0..flat.len() {
            let orig = flat[j];
            flat[j] = orig + eps;
            let up = LogisticRegression::from_flat(2, 2, flat.clone()).loss(&data);
            flat[j] = orig - eps;
            let down = LogisticRegression::from_flat(2, 2, flat.clone()).loss(&data);
            flat[j] = orig;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (numeric - scratch.grad()[j]).abs() < 1e-6,
                "param {j}: numeric {numeric} vs fused {}",
                scratch.grad()[j]
            );
        }
    }

    #[test]
    fn fused_kernel_is_allocation_free_when_warm() {
        let data = chunky_dataset(150, 8, 2);
        let model = warm_model(8, 2);
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut scratch = GradScratch::new();
        model.fused_loss_and_gradient_into(&data, &indices, &mut scratch, 1);
        let warm = scratch.allocations();
        for _ in 0..20 {
            model.fused_loss_and_gradient_into(&data, &indices, &mut scratch, 1);
        }
        assert_eq!(scratch.allocations(), warm, "warm kernel must not allocate");
    }

    #[test]
    fn apply_gradient_decayed_matches_two_pass() {
        // warm_model(3, 4): 3*4 weights + 4 biases = 16 parameters.
        let grad: Vec<f64> = (0..16).map(|i| (i as f64 - 7.0) / 3.0).collect();
        let (step, decay) = (0.05, 0.01);

        let mut fused = warm_model(3, 4);
        let mut two_pass = fused.clone();
        fused.apply_gradient_decayed(&grad, step, decay);
        two_pass.apply_gradient(&grad, step);
        two_pass.apply_weight_decay(step, decay);
        assert_eq!(fused.to_flat(), two_pass.to_flat());

        // decay = 0 must reduce to the plain step, bit for bit.
        let mut no_decay = warm_model(3, 4);
        let mut plain = no_decay.clone();
        no_decay.apply_gradient_decayed(&grad, step, 0.0);
        plain.apply_gradient(&grad, step);
        assert_eq!(no_decay.to_flat(), plain.to_flat());
    }

    #[test]
    fn loss_with_bit_identical_to_loss() {
        let data = chunky_dataset(130, 11, 5);
        let model = warm_model(11, 5);
        let mut scratch = GradScratch::new();
        assert_eq!(
            model.loss(&data).to_bits(),
            model.loss_with(&data, &mut scratch).to_bits()
        );
        // Odd class count exercises the single-row tail of logits_into.
        let data3 = chunky_dataset(70, 7, 3);
        let model3 = warm_model(7, 3);
        assert_eq!(
            model3.loss(&data3).to_bits(),
            model3.loss_with(&data3, &mut scratch).to_bits()
        );
    }

    #[test]
    fn pooled_kernel_bit_identical_to_scoped_for_every_pool_size() {
        let data = Arc::new(chunky_dataset(300, 12, 4));
        let model = warm_model(12, 4);
        let indices: Vec<usize> = (0..data.len()).collect();

        let mut serial = GradScratch::new();
        let loss_serial = model.fused_loss_and_gradient_into(&data, &indices, &mut serial, 1);
        for size in 1..=8 {
            let pool = WorkerPool::new(size);
            let mut pooled = GradScratch::new();
            let loss_pooled =
                model.pooled_loss_and_gradient_into(&data, &indices, &mut pooled, &pool);
            assert_eq!(
                loss_serial.to_bits(),
                loss_pooled.to_bits(),
                "loss differs at pool size {size}"
            );
            assert_eq!(
                serial.grad(),
                pooled.grad(),
                "gradient differs at pool size {size}"
            );
        }
    }

    #[test]
    fn pooled_kernel_handles_shuffled_indices_via_gather() {
        // Non-consecutive indices force the mini-batch gather path in every
        // chunk; the result must still match the scoped kernel bit for bit.
        let data = Arc::new(chunky_dataset(260, 10, 3));
        let model = warm_model(10, 3);
        let mut indices: Vec<usize> = (0..data.len()).rev().collect();
        indices.swap(5, 170);

        let mut serial = GradScratch::new();
        let loss_serial = model.fused_loss_and_gradient_into(&data, &indices, &mut serial, 1);
        let pool = WorkerPool::new(3);
        let mut pooled = GradScratch::new();
        let loss_pooled = model.pooled_loss_and_gradient_into(&data, &indices, &mut pooled, &pool);
        assert_eq!(loss_serial.to_bits(), loss_pooled.to_bits());
        assert_eq!(serial.grad(), pooled.grad());
    }

    #[test]
    fn pooled_kernel_is_allocation_free_when_warm() {
        let data = Arc::new(chunky_dataset(300, 12, 4));
        let model = warm_model(12, 4);
        let indices: Vec<usize> = (0..data.len()).collect();
        let pool = WorkerPool::new(4);
        let mut scratch = GradScratch::new();
        model.pooled_loss_and_gradient_into(&data, &indices, &mut scratch, &pool);
        let warm = scratch.allocations();
        for _ in 0..20 {
            model.pooled_loss_and_gradient_into(&data, &indices, &mut scratch, &pool);
        }
        assert_eq!(
            scratch.allocations(),
            warm,
            "warm pooled kernel must not allocate"
        );
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Probabilities always form a distribution, whatever the parameters.
        #[test]
        fn predict_proba_is_distribution(
            params in proptest::collection::vec(-5.0f64..5.0, 8),
            x in proptest::collection::vec(-5.0f64..5.0, 3),
        ) {
            // 2 classes x 3 dims + 2 biases = 8 parameters.
            let m = LogisticRegression::from_flat(3, 2, params);
            let p = m.predict_proba(&x);
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }

        /// A gradient step with a small enough rate never increases the loss
        /// on the batch it was computed from (descent direction property).
        #[test]
        fn small_gradient_step_descends(
            params in proptest::collection::vec(-1.0f64..1.0, 8),
        ) {
            let data = Dataset::from_parts(
                3,
                vec![0.1, 0.9, 0.3, 0.8, 0.2, 0.7],
                vec![0, 1],
                2,
            );
            let mut m = LogisticRegression::from_flat(3, 2, params);
            let (before, grad) = m.loss_and_gradient(&data, &[0, 1]);
            m.apply_gradient(&grad, 1e-3);
            prop_assert!(m.loss(&data) <= before + 1e-9);
        }

        /// Pool partitioning is a pure function of chunk count, never
        /// worker count: for any batch size and any pool size 1..=8 the
        /// pooled kernel lands on exactly the serial evaluation's bits.
        #[test]
        fn pooled_partitioning_matches_serial_for_any_pool_size(
            n in 65usize..300,
            size in 1usize..=8,
        ) {
            let data = std::sync::Arc::new(super::tests::chunky_dataset(n, 9, 3));
            let model = super::tests::warm_model(9, 3);
            let indices: Vec<usize> = (0..n).collect();

            let mut serial = GradScratch::new();
            let loss_serial =
                model.fused_loss_and_gradient_into(&data, &indices, &mut serial, 1);

            let pool = WorkerPool::new(size);
            let mut pooled = GradScratch::new();
            let loss_pooled =
                model.pooled_loss_and_gradient_into(&data, &indices, &mut pooled, &pool);
            prop_assert_eq!(loss_serial.to_bits(), loss_pooled.to_bits());
            prop_assert_eq!(serial.grad(), pooled.grad());
        }
    }
}
