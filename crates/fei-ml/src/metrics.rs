//! Model-quality metrics: accuracy and loss over a dataset.

use fei_data::Dataset;
use serde::{Deserialize, Serialize};

use crate::traits::Model;

/// Classification accuracy of `model` on `data`, in `[0, 1]`.
///
/// # Panics
///
/// Panics if `data` is empty or shapes mismatch.
///
/// # Example
///
/// ```
/// use fei_data::Dataset;
/// use fei_ml::{accuracy, LogisticRegression};
///
/// let data = Dataset::from_parts(1, vec![0.0, 1.0], vec![0, 1], 2);
/// let model = LogisticRegression::from_flat(1, 2, vec![-4.0, 4.0, 0.0, 0.0]);
/// assert_eq!(accuracy(&model, &data), 1.0);
/// ```
pub fn accuracy<M: Model>(model: &M, data: &Dataset) -> f64 {
    assert!(!data.is_empty(), "accuracy over empty dataset");
    let correct = data.iter().filter(|(x, y)| model.predict(x) == *y).count();
    correct as f64 / data.len() as f64
}

/// A paired loss/accuracy measurement of a model on a dataset — one point of
/// the convergence curves in Fig. 4.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Classification accuracy in `[0, 1]`.
    pub accuracy: f64,
}

impl Evaluation {
    /// Evaluates `model` on `data`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or shapes mismatch.
    pub fn of<M: Model>(model: &M, data: &Dataset) -> Self {
        Self {
            loss: model.loss(data),
            accuracy: accuracy(model, data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LogisticRegression;

    fn two_point_data() -> Dataset {
        Dataset::from_parts(1, vec![-1.0, 1.0], vec![0, 1], 2)
    }

    #[test]
    fn perfect_and_inverted_classifiers() {
        let data = two_point_data();
        // Class-1 weight positive: x=1 -> class 1.
        let good = LogisticRegression::from_flat(1, 2, vec![-3.0, 3.0, 0.0, 0.0]);
        assert_eq!(accuracy(&good, &data), 1.0);
        let bad = LogisticRegression::from_flat(1, 2, vec![3.0, -3.0, 0.0, 0.0]);
        assert_eq!(accuracy(&bad, &data), 0.0);
    }

    #[test]
    fn zero_model_accuracy_is_first_class_rate() {
        // Uniform probabilities -> argmax ties resolve to class 0.
        let data = two_point_data();
        let model = LogisticRegression::zeros(1, 2);
        assert_eq!(accuracy(&model, &data), 0.5);
    }

    #[test]
    fn evaluation_pairs_loss_and_accuracy() {
        let data = two_point_data();
        let model = LogisticRegression::zeros(1, 2);
        let eval = Evaluation::of(&model, &data);
        assert!((eval.loss - (2.0f64).ln()).abs() < 1e-12);
        assert_eq!(eval.accuracy, 0.5);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn accuracy_rejects_empty() {
        let model = LogisticRegression::zeros(1, 2);
        let _ = accuracy(&model, &Dataset::empty(1, 2));
    }
}
