//! A one-hidden-layer perceptron — the "more complex model" direction the
//! paper motivates (its intro cites model-training complexity as the driver
//! of edge energy costs).
//!
//! Architecture: `dim → hidden (tanh) → classes (softmax)`, trained with the
//! same softmax cross-entropy as the logistic regression. Parameters live in
//! one flat vector (`W1 | b1 | W2 | b2`) so FedAvg averages and ships MLPs
//! exactly like any other [`crate::Model`].

use fei_data::Dataset;
use fei_math::func::{argmax, log_sum_exp, softmax_in_place};
use fei_math::matrix::dot;
use fei_sim::DetRng;
use serde::{Deserialize, Serialize};

use crate::traits::Model;

/// A one-hidden-layer tanh MLP with softmax output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    dim: usize,
    hidden: usize,
    num_classes: usize,
    /// `W1 (hidden×dim) | b1 (hidden) | W2 (classes×hidden) | b2 (classes)`.
    params: Vec<f64>,
}

impl Mlp {
    /// Creates an MLP with small deterministic Gaussian-initialized weights
    /// (zero init would leave all hidden units identical forever).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `num_classes < 2`.
    pub fn new(dim: usize, hidden: usize, num_classes: usize, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be non-zero");
        assert!(hidden > 0, "hidden layer must be non-zero");
        assert!(num_classes >= 2, "need at least two classes");
        let mut rng = DetRng::new(seed).fork(0x3117);
        let n = hidden * dim + hidden + num_classes * hidden + num_classes;
        // Xavier-ish scale for tanh.
        let w1_scale = (1.0 / dim as f64).sqrt();
        let w2_scale = (1.0 / hidden as f64).sqrt();
        let mut params = Vec::with_capacity(n);
        for _ in 0..hidden * dim {
            params.push(rng.gaussian_with(0.0, w1_scale));
        }
        params.extend(std::iter::repeat_n(0.0, hidden));
        for _ in 0..num_classes * hidden {
            params.push(rng.gaussian_with(0.0, w2_scale));
        }
        params.extend(std::iter::repeat_n(0.0, num_classes));
        Self {
            dim,
            hidden,
            num_classes,
            params,
        }
    }

    /// Hidden-layer width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    fn w1(&self) -> &[f64] {
        &self.params[..self.hidden * self.dim]
    }

    fn b1(&self) -> &[f64] {
        let start = self.hidden * self.dim;
        &self.params[start..start + self.hidden]
    }

    fn w2(&self) -> &[f64] {
        let start = self.hidden * self.dim + self.hidden;
        &self.params[start..start + self.num_classes * self.hidden]
    }

    fn b2(&self) -> &[f64] {
        &self.params[self.params.len() - self.num_classes..]
    }

    /// Forward pass: returns `(hidden activations, logits)`.
    fn forward(&self, x: &[f64]) -> (Vec<f64>, Vec<f64>) {
        assert_eq!(x.len(), self.dim, "input has wrong dimension");
        let h: Vec<f64> = (0..self.hidden)
            .map(|j| (dot(&self.w1()[j * self.dim..(j + 1) * self.dim], x) + self.b1()[j]).tanh())
            .collect();
        let logits: Vec<f64> = (0..self.num_classes)
            .map(|c| dot(&self.w2()[c * self.hidden..(c + 1) * self.hidden], &h) + self.b2()[c])
            .collect();
        (h, logits)
    }

    fn check_shape(&self, data: &Dataset) {
        assert_eq!(data.dim(), self.dim, "dataset dimension mismatch");
        assert_eq!(data.num_classes(), self.num_classes, "class count mismatch");
    }
}

impl Model for Mlp {
    fn dim(&self) -> usize {
        self.dim
    }

    fn num_classes(&self) -> usize {
        self.num_classes
    }

    fn num_params(&self) -> usize {
        self.params.len()
    }

    fn to_flat(&self) -> &[f64] {
        &self.params
    }

    fn set_flat(&mut self, flat: &[f64]) {
        assert_eq!(
            flat.len(),
            self.params.len(),
            "flat parameter length mismatch"
        );
        self.params.copy_from_slice(flat);
    }

    fn predict(&self, x: &[f64]) -> usize {
        argmax(&self.forward(x).1)
    }

    fn loss(&self, data: &Dataset) -> f64 {
        assert!(!data.is_empty(), "loss over empty dataset");
        self.check_shape(data);
        let mut total = 0.0;
        for (x, y) in data.iter() {
            let (_, logits) = self.forward(x);
            total += log_sum_exp(&logits) - logits[y];
        }
        total / data.len() as f64
    }

    fn loss_and_gradient(&self, data: &Dataset, indices: &[usize]) -> (f64, Vec<f64>) {
        assert!(!indices.is_empty(), "gradient over empty batch");
        self.check_shape(data);
        let (h_n, c_n, d_n) = (self.hidden, self.num_classes, self.dim);
        let w1_len = h_n * d_n;
        let w2_start = w1_len + h_n;
        let b2_start = w2_start + c_n * h_n;

        let mut grad = vec![0.0; self.params.len()];
        let mut total_loss = 0.0;
        for &i in indices {
            let x = data.sample(i);
            let y = data.label(i);
            let (h, logits) = self.forward(x);
            total_loss += log_sum_exp(&logits) - logits[y];
            let mut probs = logits;
            softmax_in_place(&mut probs);

            // Output-layer error delta2_c = p_c - 1{c == y}.
            // Accumulate W2/b2 gradients and backprop into the hidden layer.
            let mut delta_h = vec![0.0; h_n];
            for (c, &p) in probs.iter().enumerate() {
                let err = p - f64::from(u8::from(c == y));
                // fei-lint: allow(float-eq, reason = "exact-zero gradient sparsity skip mirrored by the packed kernel, keeping the fused path bit-identical; a tolerance would bias the gradient")
                if err == 0.0 {
                    continue;
                }
                let row = &self.w2()[c * h_n..(c + 1) * h_n];
                let grow = &mut grad[w2_start + c * h_n..w2_start + (c + 1) * h_n];
                for j in 0..h_n {
                    grow[j] += err * h[j];
                    delta_h[j] += err * row[j];
                }
                grad[b2_start + c] += err;
            }
            // Hidden-layer error through tanh': (1 - h^2).
            for j in 0..h_n {
                let dj = delta_h[j] * (1.0 - h[j] * h[j]);
                // fei-lint: allow(float-eq, reason = "exact-zero gradient sparsity skip mirrored by the packed kernel, keeping the fused path bit-identical; a tolerance would bias the gradient")
                if dj == 0.0 {
                    continue;
                }
                let grow = &mut grad[j * d_n..(j + 1) * d_n];
                for (g, &xi) in grow.iter_mut().zip(x) {
                    *g += dj * xi;
                }
                grad[w1_len + j] += dj;
            }
        }
        let inv_n = 1.0 / indices.len() as f64;
        for g in &mut grad {
            *g *= inv_n;
        }
        (total_loss * inv_n, grad)
    }

    fn apply_gradient(&mut self, gradient: &[f64], step: f64) {
        assert_eq!(
            gradient.len(),
            self.params.len(),
            "gradient length mismatch"
        );
        for (p, &g) in self.params.iter_mut().zip(gradient) {
            *p -= step * g;
        }
    }

    fn apply_weight_decay(&mut self, step: f64, decay: f64) {
        let shrink = step * decay;
        assert!(
            shrink.is_finite() && shrink >= 0.0,
            "decay step must be non-negative"
        );
        // Decay W1 and W2, leave b1/b2 alone.
        let w1_len = self.hidden * self.dim;
        let w2_start = w1_len + self.hidden;
        let w2_end = w2_start + self.num_classes * self.hidden;
        for w in &mut self.params[..w1_len] {
            *w -= shrink * *w;
        }
        for w in &mut self.params[w2_start..w2_end] {
            *w -= shrink * *w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_data() -> Dataset {
        // XOR-ish: not linearly separable, so the hidden layer has work to do.
        Dataset::from_parts(
            2,
            vec![
                0.0, 0.0, //
                1.0, 1.0, //
                0.0, 1.0, //
                1.0, 0.0,
            ],
            vec![0, 0, 1, 1],
            2,
        )
    }

    #[test]
    fn shapes_and_flat_round_trip() {
        let mlp = Mlp::new(3, 4, 2, 7);
        assert_eq!(mlp.dim(), 3);
        assert_eq!(mlp.hidden(), 4);
        assert_eq!(Model::num_classes(&mlp), 2);
        assert_eq!(Model::num_params(&mlp), 3 * 4 + 4 + 2 * 4 + 2);
        let mut copy = Mlp::new(3, 4, 2, 99);
        copy.set_flat(mlp.to_flat());
        assert_eq!(copy.to_flat(), mlp.to_flat());
    }

    #[test]
    fn initialization_is_seeded_and_nonzero() {
        let a = Mlp::new(4, 3, 2, 1);
        let b = Mlp::new(4, 3, 2, 1);
        let c = Mlp::new(4, 3, 2, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.to_flat().iter().any(|&w| w != 0.0));
        // Biases start at zero.
        assert!(a.b1().iter().all(|&b| b == 0.0));
        assert!(a.b2().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let data = tiny_data();
        let mlp = Mlp::new(2, 3, 2, 11);
        let indices: Vec<usize> = (0..data.len()).collect();
        let (_, grad) = mlp.loss_and_gradient(&data, &indices);

        let eps = 1e-6;
        let mut flat = mlp.to_flat().to_vec();
        for j in 0..flat.len() {
            let orig = flat[j];
            flat[j] = orig + eps;
            let mut up = mlp.clone();
            up.set_flat(&flat);
            let up_loss = up.loss(&data);
            flat[j] = orig - eps;
            let mut down = mlp.clone();
            down.set_flat(&flat);
            let down_loss = down.loss(&data);
            flat[j] = orig;
            let numeric = (up_loss - down_loss) / (2.0 * eps);
            assert!(
                (numeric - grad[j]).abs() < 1e-6,
                "param {j}: numeric {numeric} vs analytic {}",
                grad[j]
            );
        }
    }

    #[test]
    fn mlp_solves_xor_where_linear_cannot() {
        let data = tiny_data();
        let mut mlp = Mlp::new(2, 8, 2, 5);
        let indices: Vec<usize> = (0..data.len()).collect();
        for _ in 0..3_000 {
            let (_, grad) = mlp.loss_and_gradient(&data, &indices);
            mlp.apply_gradient(&grad, 0.5);
        }
        for (x, y) in data.iter() {
            assert_eq!(mlp.predict(x), y, "misclassified {x:?}");
        }
        // Linear LR cannot exceed 75% on XOR; verify the contrast.
        let mut lr = crate::LogisticRegression::zeros(2, 2);
        for _ in 0..3_000 {
            let (_, grad) = lr.loss_and_gradient(&data, &indices);
            lr.apply_gradient(&grad, 0.5);
        }
        let lr_correct = data.iter().filter(|(x, y)| lr.predict(x) == *y).count();
        assert!(
            lr_correct < 4,
            "LR should not solve XOR, got {lr_correct}/4"
        );
    }

    #[test]
    fn weight_decay_spares_biases() {
        let mut mlp = Mlp::new(2, 2, 2, 3);
        let mut flat = mlp.to_flat().to_vec();
        // Force known biases.
        let w1_len = 4;
        flat[w1_len] = 5.0; // b1[0]
        let b2_start = flat.len() - 2;
        flat[b2_start] = 7.0;
        mlp.set_flat(&flat);
        mlp.apply_weight_decay(1.0, 0.1);
        assert_eq!(mlp.b1()[0], 5.0);
        assert_eq!(mlp.b2()[0], 7.0);
        // Weights shrank by exactly 10%.
        for (before, after) in flat[..w1_len].iter().zip(mlp.w1()) {
            assert!((after - before * 0.9).abs() < 1e-12);
        }
    }

    #[test]
    fn trainer_accepts_mlp() {
        use crate::{LocalTrainer, SgdConfig};
        let data = tiny_data();
        let mut mlp = Mlp::new(2, 4, 2, 9);
        let stats = LocalTrainer::new(SgdConfig::new(0.5, 1.0, None)).train(&mut mlp, &data, 50, 0);
        assert!(stats.final_loss < stats.initial_loss);
    }

    #[test]
    #[should_panic(expected = "hidden layer")]
    fn rejects_zero_hidden() {
        let _ = Mlp::new(2, 0, 2, 0);
    }
}
