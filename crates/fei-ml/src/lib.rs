//! Multinomial logistic regression and SGD training for EE-FEI.
//!
//! Implements exactly the learner the paper evaluates (Table II): a
//! 784 → 10 multinomial logistic-regression classifier trained with SGD at
//! learning rate 0.01 and a 0.99 decay per global round, full-batch by
//! default. The model exposes flat parameter (de)serialization so the
//! federated runtime in `fei-fl` can average and ship models as byte
//! payloads.
//!
//! # Example
//!
//! ```
//! use fei_data::{SyntheticMnist, SyntheticMnistConfig};
//! use fei_ml::{LogisticRegression, SgdConfig, LocalTrainer};
//!
//! let gen = SyntheticMnist::new(SyntheticMnistConfig::default());
//! let train = gen.generate(200, 0);
//! let mut model = LogisticRegression::zeros(train.dim(), train.num_classes());
//! let trainer = LocalTrainer::new(SgdConfig::paper_default());
//! let stats = trainer.train(&mut model, &train, 5, 0);
//! assert_eq!(stats.epochs_run, 5);
//! ```

#![forbid(unsafe_code)]

pub mod metrics;
pub mod mlp;
pub mod model;
pub mod optimizer;
pub mod pool;
pub mod scratch;
pub mod trainer;
pub mod traits;

pub use metrics::{accuracy, Evaluation};
pub use mlp::Mlp;
pub use model::{LogisticRegression, GRAD_CHUNK};
pub use optimizer::{GradReduction, SgdConfig};
pub use pool::WorkerPool;
pub use scratch::GradScratch;
pub use trainer::{LocalTrainer, TrainStats};
pub use traits::Model;
