//! Local training: `E` epochs of SGD on one edge server's dataset.

use std::sync::Arc;

use fei_data::Dataset;
use fei_sim::DetRng;
use serde::{Deserialize, Serialize};

use crate::optimizer::{GradReduction, SgdConfig};
use crate::pool::WorkerPool;
use crate::scratch::GradScratch;
use crate::traits::Model;

/// Statistics from one local-training invocation (one edge server, one global
/// round).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainStats {
    /// Number of local epochs executed (`E`).
    pub epochs_run: usize,
    /// Number of gradient steps taken (epochs × batches-per-epoch).
    pub gradient_steps: usize,
    /// Training loss measured before the first step.
    pub initial_loss: f64,
    /// Training loss measured after the last step.
    pub final_loss: f64,
    /// Number of samples in the local dataset (`n_k`).
    pub samples: usize,
}

/// Runs local SGD epochs with a fixed configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LocalTrainer {
    config: SgdConfig,
}

impl LocalTrainer {
    /// Creates a trainer with the given SGD configuration.
    pub fn new(config: SgdConfig) -> Self {
        Self { config }
    }

    /// The trainer's SGD configuration.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Trains `model` in place for `epochs` epochs on `data`, using the
    /// learning rate scheduled for global round `round`.
    ///
    /// Convenience wrapper over [`LocalTrainer::train_with`] that allocates a
    /// throwaway workspace. Callers in a loop (the federated engines) should
    /// hold a [`GradScratch`] and call `train_with` so the workspace — and
    /// its zero-allocations-per-epoch steady state — survives across rounds.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or shapes mismatch.
    pub fn train<M: Model>(
        &self,
        model: &mut M,
        data: &Dataset,
        epochs: usize,
        round: usize,
    ) -> TrainStats {
        let mut scratch = GradScratch::new();
        self.train_with(model, data, epochs, round, &mut scratch)
    }

    /// [`LocalTrainer::train`] with an explicit reusable workspace.
    ///
    /// Full-batch mode (the paper's setting) performs one gradient step per
    /// epoch over the whole dataset; mini-batch mode shuffles deterministic
    /// batches via an internal generator seeded from `(round, data length)`.
    /// The gradient kernel is selected by [`SgdConfig::grad`]; the fused
    /// variants run against `scratch` without per-epoch heap allocations,
    /// and [`GradReduction::FusedParallel`] is bit-identical to
    /// [`GradReduction::FusedSerial`] (see DESIGN.md §10).
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or shapes mismatch.
    pub fn train_with<M: Model>(
        &self,
        model: &mut M,
        data: &Dataset,
        epochs: usize,
        round: usize,
        scratch: &mut GradScratch,
    ) -> TrainStats {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let lr = self.config.lr_for_round(round);
        let initial_loss = self.eval_loss(model, data, scratch);
        let all: Vec<usize> = (0..data.len()).collect();
        let mut gradient_steps = 0;

        match self.config.batch_size {
            None => {
                for _ in 0..epochs {
                    self.step(model, data, &all, lr, scratch);
                    gradient_steps += 1;
                }
            }
            Some(batch) => {
                let mut rng = DetRng::new(0xBA7C_0000 ^ round as u64).fork(data.len() as u64);
                let mut order = all.clone();
                for _ in 0..epochs {
                    rng.shuffle(&mut order);
                    for chunk in order.chunks(batch) {
                        self.step(model, data, chunk, lr, scratch);
                        gradient_steps += 1;
                    }
                }
            }
        }

        TrainStats {
            epochs_run: epochs,
            gradient_steps,
            initial_loss,
            final_loss: self.eval_loss(model, data, scratch),
            samples: data.len(),
        }
    }

    /// [`LocalTrainer::train_with`] with gradient steps executed on a
    /// persistent [`WorkerPool`] when the configuration asks for parallel
    /// reduction. Bit-identical to `train_with` for every pool size (the
    /// pooled kernel shares the scoped path's partitioning and reduction
    /// schedule); with a pool of one or zero workers it simply *is*
    /// `train_with`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or shapes mismatch.
    pub fn train_with_pool<M: Model>(
        &self,
        model: &mut M,
        data: &Arc<Dataset>,
        epochs: usize,
        round: usize,
        scratch: &mut GradScratch,
        pool: &WorkerPool,
    ) -> TrainStats {
        if pool.size() <= 1 {
            return self.train_with(model, data, epochs, round, scratch);
        }
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let lr = self.config.lr_for_round(round);
        let initial_loss = self.eval_loss(model, data, scratch);
        let all: Vec<usize> = (0..data.len()).collect();
        let mut gradient_steps = 0;

        match self.config.batch_size {
            None => {
                for _ in 0..epochs {
                    self.step_pooled(model, data, &all, lr, scratch, pool);
                    gradient_steps += 1;
                }
            }
            Some(batch) => {
                let mut rng = DetRng::new(0xBA7C_0000 ^ round as u64).fork(data.len() as u64);
                let mut order = all.clone();
                for _ in 0..epochs {
                    rng.shuffle(&mut order);
                    for chunk in order.chunks(batch) {
                        self.step_pooled(model, data, chunk, lr, scratch, pool);
                        gradient_steps += 1;
                    }
                }
            }
        }

        TrainStats {
            epochs_run: epochs,
            gradient_steps,
            initial_loss,
            final_loss: self.eval_loss(model, data, scratch),
            samples: data.len(),
        }
    }

    /// The before/after loss measurement for [`TrainStats`]: the naive
    /// reduction keeps the historical allocating pass, the fused reductions
    /// use the buffer-reusing (bit-identical) one.
    fn eval_loss<M: Model>(&self, model: &M, data: &Dataset, scratch: &mut GradScratch) -> f64 {
        match self.config.grad {
            GradReduction::Naive => model.loss(data),
            GradReduction::FusedSerial | GradReduction::FusedParallel { .. } => {
                model.loss_with(data, scratch)
            }
        }
    }

    /// One gradient step on `batch`, dispatched by [`SgdConfig::grad`].
    fn step<M: Model>(
        &self,
        model: &mut M,
        data: &Dataset,
        batch: &[usize],
        lr: f64,
        scratch: &mut GradScratch,
    ) {
        match self.config.grad {
            // The reference path reproduces the pre-fast-path arithmetic
            // exactly: allocating kernel, separate step and decay passes.
            GradReduction::Naive => {
                let (_, grad) = model.loss_and_gradient(data, batch);
                model.apply_gradient(&grad, lr);
                if self.config.weight_decay > 0.0 {
                    model.apply_weight_decay(lr, self.config.weight_decay);
                }
            }
            GradReduction::FusedSerial => {
                model.loss_and_gradient_into(data, batch, scratch, 1);
                model.apply_gradient_decayed(scratch.grad(), lr, self.config.weight_decay);
            }
            GradReduction::FusedParallel { threads } => {
                model.loss_and_gradient_into(data, batch, scratch, threads.max(1));
                model.apply_gradient_decayed(scratch.grad(), lr, self.config.weight_decay);
            }
        }
    }

    /// [`LocalTrainer::step`] with the parallel reduction routed through the
    /// pool; the serial reductions are untouched.
    fn step_pooled<M: Model>(
        &self,
        model: &mut M,
        data: &Arc<Dataset>,
        batch: &[usize],
        lr: f64,
        scratch: &mut GradScratch,
        pool: &WorkerPool,
    ) {
        match self.config.grad {
            GradReduction::Naive | GradReduction::FusedSerial => {
                self.step(model, data, batch, lr, scratch);
            }
            GradReduction::FusedParallel { .. } => {
                model.loss_and_gradient_pooled(data, batch, scratch, pool);
                model.apply_gradient_decayed(scratch.grad(), lr, self.config.weight_decay);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use fei_data::{SyntheticMnist, SyntheticMnistConfig};

    use super::*;
    use crate::model::LogisticRegression;

    fn clean_data(n: usize) -> Dataset {
        SyntheticMnist::new(SyntheticMnistConfig {
            label_flip_prob: 0.0,
            pixel_noise_std: 0.15,
            ..Default::default()
        })
        .generate(n, 0)
    }

    #[test]
    fn full_batch_one_step_per_epoch() {
        let data = clean_data(40);
        let mut model = LogisticRegression::zeros(data.dim(), data.num_classes());
        let stats = LocalTrainer::new(SgdConfig::paper_default()).train(&mut model, &data, 7, 0);
        assert_eq!(stats.epochs_run, 7);
        assert_eq!(stats.gradient_steps, 7);
        assert_eq!(stats.samples, 40);
    }

    #[test]
    fn training_reduces_loss() {
        let data = clean_data(60);
        let mut model = LogisticRegression::zeros(data.dim(), data.num_classes());
        let stats =
            LocalTrainer::new(SgdConfig::new(0.5, 1.0, None)).train(&mut model, &data, 30, 0);
        assert!(
            stats.final_loss < stats.initial_loss * 0.8,
            "loss {} -> {}",
            stats.initial_loss,
            stats.final_loss
        );
    }

    #[test]
    fn minibatch_counts_steps() {
        let data = clean_data(50);
        let mut model = LogisticRegression::zeros(data.dim(), data.num_classes());
        let trainer = LocalTrainer::new(SgdConfig::new(0.1, 0.99, Some(16)));
        let stats = trainer.train(&mut model, &data, 3, 0);
        // 50 samples in batches of 16 -> 4 batches per epoch.
        assert_eq!(stats.gradient_steps, 12);
    }

    #[test]
    fn minibatch_training_is_deterministic() {
        let data = clean_data(30);
        let trainer = LocalTrainer::new(SgdConfig::new(0.1, 0.99, Some(8)));
        let mut a = LogisticRegression::zeros(data.dim(), data.num_classes());
        let mut b = LogisticRegression::zeros(data.dim(), data.num_classes());
        trainer.train(&mut a, &data, 2, 5);
        trainer.train(&mut b, &data, 2, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn later_rounds_use_decayed_rate() {
        let data = clean_data(20);
        let trainer = LocalTrainer::new(SgdConfig::paper_default());
        let mut early = LogisticRegression::zeros(data.dim(), data.num_classes());
        let mut late = LogisticRegression::zeros(data.dim(), data.num_classes());
        trainer.train(&mut early, &data, 1, 0);
        trainer.train(&mut late, &data, 1, 200);
        // Same start, same data, smaller step at round 200: the late model
        // moves strictly less far from the origin.
        let origin = LogisticRegression::zeros(data.dim(), data.num_classes());
        assert!(late.param_distance_sq(&origin) < early.param_distance_sq(&origin));
    }

    #[test]
    fn zero_epochs_is_identity() {
        let data = clean_data(10);
        let mut model = LogisticRegression::zeros(data.dim(), data.num_classes());
        let before = model.clone();
        let stats = LocalTrainer::default().train(&mut model, &data, 0, 0);
        assert_eq!(model, before);
        assert_eq!(stats.gradient_steps, 0);
        assert_eq!(stats.initial_loss, stats.final_loss);
    }

    #[test]
    fn weight_decay_keeps_parameters_smaller() {
        let data = clean_data(40);
        let plain = LocalTrainer::new(SgdConfig::new(0.2, 1.0, None));
        let decayed = LocalTrainer::new(SgdConfig::new(0.2, 1.0, None).with_weight_decay(0.05));
        let mut a = LogisticRegression::zeros(data.dim(), data.num_classes());
        let mut b = LogisticRegression::zeros(data.dim(), data.num_classes());
        plain.train(&mut a, &data, 20, 0);
        decayed.train(&mut b, &data, 20, 0);
        let norm = |m: &LogisticRegression| m.to_flat().iter().map(|x| x * x).sum::<f64>();
        assert!(norm(&b) < norm(&a), "decay should shrink the solution norm");
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn rejects_empty_dataset() {
        let data = Dataset::empty(784, 10);
        let mut model = LogisticRegression::zeros(784, 10);
        let _ = LocalTrainer::default().train(&mut model, &data, 1, 0);
    }

    #[test]
    fn fused_parallel_training_bit_identical_to_serial() {
        let data = clean_data(130);
        let serial = LocalTrainer::new(
            SgdConfig::new(0.1, 0.99, None).with_grad_reduction(GradReduction::FusedSerial),
        );
        let parallel = LocalTrainer::new(
            SgdConfig::new(0.1, 0.99, None)
                .with_grad_reduction(GradReduction::FusedParallel { threads: 4 }),
        );
        let mut a = LogisticRegression::zeros(data.dim(), data.num_classes());
        let mut b = LogisticRegression::zeros(data.dim(), data.num_classes());
        let sa = serial.train(&mut a, &data, 3, 2);
        let sb = parallel.train(&mut b, &data, 3, 2);
        assert_eq!(a, b, "parallel gradient must not change the trained bits");
        assert_eq!(sa, sb);
    }

    #[test]
    fn fused_and_naive_reach_similar_loss() {
        let data = clean_data(80);
        let fused = LocalTrainer::new(SgdConfig::new(0.2, 1.0, None));
        let naive = LocalTrainer::new(
            SgdConfig::new(0.2, 1.0, None).with_grad_reduction(GradReduction::Naive),
        );
        let mut a = LogisticRegression::zeros(data.dim(), data.num_classes());
        let mut b = LogisticRegression::zeros(data.dim(), data.num_classes());
        let sa = fused.train(&mut a, &data, 10, 0);
        let sb = naive.train(&mut b, &data, 10, 0);
        assert!(
            (sa.final_loss - sb.final_loss).abs() < 1e-9,
            "{} vs {}",
            sa.final_loss,
            sb.final_loss
        );
    }

    #[test]
    fn reused_scratch_stops_allocating_after_first_round() {
        let data = clean_data(60);
        let trainer = LocalTrainer::new(SgdConfig::paper_default());
        let mut model = LogisticRegression::zeros(data.dim(), data.num_classes());
        let mut scratch = GradScratch::new();
        trainer.train_with(&mut model, &data, 2, 0, &mut scratch);
        let warm = scratch.allocations();
        for round in 1..5 {
            trainer.train_with(&mut model, &data, 2, round, &mut scratch);
        }
        assert_eq!(
            scratch.allocations(),
            warm,
            "steady-state training must not grow the workspace"
        );
    }
}
