//! SGD configuration matching the paper's Table II.

use serde::{Deserialize, Serialize};

/// How the trainer computes each batch gradient.
///
/// All three variants compute the same mathematical gradient; they differ in
/// arithmetic order (and therefore in the low bits) and in speed. The fused
/// variants share one arithmetic definition — fixed
/// [`crate::model::GRAD_CHUNK`]-sample chunks combined by a fixed pairwise
/// tree — so [`GradReduction::FusedSerial`] and
/// [`GradReduction::FusedParallel`] are bit-identical for every thread
/// count. See DESIGN.md §10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GradReduction {
    /// The pre-fast-path reference kernel: per-sample logit allocation and a
    /// single serial accumulator. Kept as the baseline the perf harness
    /// measures `speedup_vs_naive` against.
    Naive,
    /// Fused single-pass kernel (logits → softmax → accumulate, no per-sample
    /// allocation) over fixed chunks, reduced by a fixed pairwise tree into a
    /// reused scratch workspace. The default.
    #[default]
    FusedSerial,
    /// Same arithmetic as [`GradReduction::FusedSerial`] with chunks computed
    /// on worker threads — bit-identical by construction, faster only when
    /// batches are large enough to amortize thread spawn.
    FusedParallel {
        /// Worker thread count; `0` behaves as `1`.
        threads: usize,
    },
}

/// Stochastic-gradient-descent hyper-parameters.
///
/// The paper trains with learning rate 0.01, a fixed multiplicative decay of
/// 0.99 applied per *global* round, and full-batch gradients
/// (`batch_size = None`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Initial learning rate `γ`.
    pub learning_rate: f64,
    /// Multiplicative decay applied once per global coordination round.
    pub decay_per_round: f64,
    /// Mini-batch size; `None` uses the full local dataset each step, as in
    /// the paper's prototype.
    pub batch_size: Option<usize>,
    /// L2 weight-decay coefficient applied to the weights (not biases) at
    /// every step; `0.0` (the paper's setting) disables it.
    pub weight_decay: f64,
    /// Which gradient kernel the trainer dispatches to.
    pub grad: GradReduction,
}

impl SgdConfig {
    /// The paper's configuration: lr 0.01, decay 0.99, full batch, no
    /// weight decay.
    pub fn paper_default() -> Self {
        Self {
            learning_rate: 0.01,
            decay_per_round: 0.99,
            batch_size: None,
            weight_decay: 0.0,
            grad: GradReduction::default(),
        }
    }

    /// Creates a config with explicit values.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate <= 0`, `decay_per_round` is outside `(0, 1]`,
    /// or `batch_size == Some(0)`.
    pub fn new(learning_rate: f64, decay_per_round: f64, batch_size: Option<usize>) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!(
            decay_per_round > 0.0 && decay_per_round <= 1.0,
            "decay must be in (0, 1]"
        );
        assert!(batch_size != Some(0), "batch size must be non-zero");
        Self {
            learning_rate,
            decay_per_round,
            batch_size,
            weight_decay: 0.0,
            grad: GradReduction::default(),
        }
    }

    /// Returns a copy dispatching to the given gradient kernel.
    pub fn with_grad_reduction(mut self, grad: GradReduction) -> Self {
        self.grad = grad;
        self
    }

    /// Returns a copy with the given L2 weight-decay coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay` is negative or not finite.
    pub fn with_weight_decay(mut self, weight_decay: f64) -> Self {
        assert!(
            weight_decay.is_finite() && weight_decay >= 0.0,
            "weight decay must be finite and non-negative"
        );
        self.weight_decay = weight_decay;
        self
    }

    /// Learning rate in effect during global round `round` (0-based):
    /// `lr · decay^round`.
    pub fn lr_for_round(&self, round: usize) -> f64 {
        self.learning_rate * self.decay_per_round.powi(round as i32)
    }
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table2() {
        let c = SgdConfig::paper_default();
        assert_eq!(c.learning_rate, 0.01);
        assert_eq!(c.decay_per_round, 0.99);
        assert_eq!(c.batch_size, None);
        assert_eq!(c.grad, GradReduction::FusedSerial);
        assert_eq!(SgdConfig::default(), c);
    }

    #[test]
    fn grad_reduction_builder() {
        let c = SgdConfig::paper_default()
            .with_grad_reduction(GradReduction::FusedParallel { threads: 4 });
        assert_eq!(c.grad, GradReduction::FusedParallel { threads: 4 });
        assert_eq!(SgdConfig::paper_default().grad, GradReduction::FusedSerial);
    }

    #[test]
    fn weight_decay_builder() {
        let c = SgdConfig::paper_default().with_weight_decay(1e-4);
        assert_eq!(c.weight_decay, 1e-4);
        assert_eq!(SgdConfig::paper_default().weight_decay, 0.0);
    }

    #[test]
    #[should_panic(expected = "weight decay")]
    fn rejects_negative_weight_decay() {
        let _ = SgdConfig::paper_default().with_weight_decay(-1.0);
    }

    #[test]
    fn decay_schedule() {
        let c = SgdConfig::paper_default();
        assert_eq!(c.lr_for_round(0), 0.01);
        assert!((c.lr_for_round(1) - 0.0099).abs() < 1e-12);
        assert!((c.lr_for_round(100) - 0.01 * 0.99f64.powi(100)).abs() < 1e-15);
    }

    #[test]
    fn decay_of_one_is_constant() {
        let c = SgdConfig::new(0.1, 1.0, Some(32));
        assert_eq!(c.lr_for_round(50), 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_lr() {
        let _ = SgdConfig::new(0.0, 0.99, None);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn rejects_bad_decay() {
        let _ = SgdConfig::new(0.01, 1.5, None);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn rejects_zero_batch() {
        let _ = SgdConfig::new(0.01, 0.99, Some(0));
    }
}
