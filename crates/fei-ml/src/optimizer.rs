//! SGD configuration matching the paper's Table II.

use serde::{Deserialize, Serialize};

/// Stochastic-gradient-descent hyper-parameters.
///
/// The paper trains with learning rate 0.01, a fixed multiplicative decay of
/// 0.99 applied per *global* round, and full-batch gradients
/// (`batch_size = None`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Initial learning rate `γ`.
    pub learning_rate: f64,
    /// Multiplicative decay applied once per global coordination round.
    pub decay_per_round: f64,
    /// Mini-batch size; `None` uses the full local dataset each step, as in
    /// the paper's prototype.
    pub batch_size: Option<usize>,
    /// L2 weight-decay coefficient applied to the weights (not biases) at
    /// every step; `0.0` (the paper's setting) disables it.
    pub weight_decay: f64,
}

impl SgdConfig {
    /// The paper's configuration: lr 0.01, decay 0.99, full batch, no
    /// weight decay.
    pub fn paper_default() -> Self {
        Self {
            learning_rate: 0.01,
            decay_per_round: 0.99,
            batch_size: None,
            weight_decay: 0.0,
        }
    }

    /// Creates a config with explicit values.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate <= 0`, `decay_per_round` is outside `(0, 1]`,
    /// or `batch_size == Some(0)`.
    pub fn new(learning_rate: f64, decay_per_round: f64, batch_size: Option<usize>) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        assert!(
            decay_per_round > 0.0 && decay_per_round <= 1.0,
            "decay must be in (0, 1]"
        );
        assert!(batch_size != Some(0), "batch size must be non-zero");
        Self {
            learning_rate,
            decay_per_round,
            batch_size,
            weight_decay: 0.0,
        }
    }

    /// Returns a copy with the given L2 weight-decay coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay` is negative or not finite.
    pub fn with_weight_decay(mut self, weight_decay: f64) -> Self {
        assert!(
            weight_decay.is_finite() && weight_decay >= 0.0,
            "weight decay must be finite and non-negative"
        );
        self.weight_decay = weight_decay;
        self
    }

    /// Learning rate in effect during global round `round` (0-based):
    /// `lr · decay^round`.
    pub fn lr_for_round(&self, round: usize) -> f64 {
        self.learning_rate * self.decay_per_round.powi(round as i32)
    }
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_table2() {
        let c = SgdConfig::paper_default();
        assert_eq!(c.learning_rate, 0.01);
        assert_eq!(c.decay_per_round, 0.99);
        assert_eq!(c.batch_size, None);
        assert_eq!(SgdConfig::default(), c);
    }

    #[test]
    fn weight_decay_builder() {
        let c = SgdConfig::paper_default().with_weight_decay(1e-4);
        assert_eq!(c.weight_decay, 1e-4);
        assert_eq!(SgdConfig::paper_default().weight_decay, 0.0);
    }

    #[test]
    #[should_panic(expected = "weight decay")]
    fn rejects_negative_weight_decay() {
        let _ = SgdConfig::paper_default().with_weight_decay(-1.0);
    }

    #[test]
    fn decay_schedule() {
        let c = SgdConfig::paper_default();
        assert_eq!(c.lr_for_round(0), 0.01);
        assert!((c.lr_for_round(1) - 0.0099).abs() < 1e-12);
        assert!((c.lr_for_round(100) - 0.01 * 0.99f64.powi(100)).abs() < 1e-15);
    }

    #[test]
    fn decay_of_one_is_constant() {
        let c = SgdConfig::new(0.1, 1.0, Some(32));
        assert_eq!(c.lr_for_round(50), 0.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_lr() {
        let _ = SgdConfig::new(0.0, 0.99, None);
    }

    #[test]
    #[should_panic(expected = "decay")]
    fn rejects_bad_decay() {
        let _ = SgdConfig::new(0.01, 1.5, None);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn rejects_zero_batch() {
        let _ = SgdConfig::new(0.01, 0.99, Some(0));
    }
}
