//! Discrete-event simulation kernel for the EE-FEI testbed.
//!
//! The paper's measurements come from a physical prototype (20 Raspberry Pis
//! with USB power meters). This crate provides the deterministic substrate the
//! simulated prototype runs on:
//!
//! * [`time::SimTime`] / [`time::SimDuration`] — nanosecond-resolution virtual
//!   clock, enough to place 1 kHz power-meter samples exactly;
//! * [`queue::EventQueue`] — a stable priority queue of timestamped events
//!   (FIFO among equal timestamps, so runs are reproducible);
//! * [`sim::Simulation`] — a minimal run loop around the queue;
//! * [`rng::DetRng`] — a small deterministic SplitMix64 generator with the
//!   uniform/Gaussian/choice helpers the rest of the workspace needs.
//!
//! # Example
//!
//! ```
//! use fei_sim::{Simulation, SimTime, SimDuration};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut sim = Simulation::new();
//! sim.schedule_after(SimDuration::from_millis(5), Ev::Ping);
//! sim.schedule_after(SimDuration::from_millis(2), Ev::Pong);
//! let (t1, e1) = sim.step().unwrap();
//! assert_eq!(e1, Ev::Pong);
//! assert_eq!(t1, SimTime::from_millis(2));
//! ```

#![forbid(unsafe_code)]

pub mod queue;
pub mod rng;
pub mod sim;
pub mod time;

pub use queue::EventQueue;
pub use rng::DetRng;
pub use sim::Simulation;
pub use time::{SimDuration, SimTime};
