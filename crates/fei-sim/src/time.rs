//! Virtual time for the simulator.
//!
//! Nanosecond-resolution unsigned time. Keeping time integral (rather than
//! `f64` seconds) makes event ordering exact and lets the 1 kHz power meter
//! place its samples on a perfectly regular grid, as the real POWER-Z meter
//! does.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time point from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time point from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time point from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates a time point from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "time must be finite and non-negative"
        );
        SimTime((secs * 1e9).round() as u64)
    }

    /// This time point as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This time point as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier <= self,
            "duration_since: {earlier:?} is after {self:?}"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating difference: zero if `earlier` is after `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration must be finite and non-negative"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// This duration as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the duration by a non-negative factor, rounding to
    /// nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "factor must be finite and non-negative"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics on underflow.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // fei-lint: allow(no-panic, reason = "documented panic: duration underflow is a caller bug, mirroring std::time::Duration - Duration")
                .expect("duration subtraction underflow"),
        )
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    fn seconds_round_trip() {
        let t = SimTime::from_secs_f64(1.234_567_891);
        assert!((t.as_secs_f64() - 1.234_567_891).abs() < 1e-9);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(
            t.duration_since(SimTime::from_millis(10)),
            SimDuration::from_millis(5)
        );
        let mut u = SimTime::ZERO;
        u += SimDuration::from_secs(2);
        assert_eq!(u, SimTime::from_secs(2));
    }

    #[test]
    fn saturating_difference() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(9);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_millis(8)
        );
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_reversal() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_nanos(1));
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(
            SimDuration::from_secs(2).mul_f64(1.5),
            SimDuration::from_secs(3)
        );
        assert_eq!(SimDuration::from_secs(2).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_rejected() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_nanos(5) < SimTime::from_nanos(6));
        assert!(SimDuration::from_secs(1) > SimDuration::from_millis(999));
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500000s");
        assert_eq!(format!("{}", SimDuration::from_micros(250)), "0.000250s");
    }
}
