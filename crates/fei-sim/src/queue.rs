//! A stable timestamped event queue.
//!
//! Ties in simulated time are broken by insertion order (FIFO), which keeps
//! event delivery deterministic — two events scheduled for the same instant
//! are always delivered in the order they were scheduled.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event queue ordered by `(time, insertion sequence)`.
///
/// # Example
///
/// ```
/// use fei_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_millis(3), "late");
/// q.push(SimTime::from_millis(1), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_millis(1), "early")));
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<Ev> {
    heap: BinaryHeap<Entry<Ev>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<Ev> {
    time: SimTime,
    seq: u64,
    event: Ev,
}

impl<Ev> PartialEq for Entry<Ev> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<Ev> Eq for Entry<Ev> {}

impl<Ev> PartialOrd for Entry<Ev> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<Ev> Ord for Entry<Ev> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<Ev> EventQueue<Ev> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, FIFO among equal timestamps.
    pub fn pop(&mut self) -> Option<(SimTime, Ev)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<Ev> Default for EventQueue<Ev> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(5), 5);
        q.push(SimTime::from_millis(1), 1);
        q.push(SimTime::from_millis(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(2), "x");
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        let _ = q.pop();
        assert_eq!(q.peek_time(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn default_is_empty() {
        let q: EventQueue<u8> = EventQueue::default();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(10), 'b');
        q.push(SimTime::from_millis(5), 'a');
        assert_eq!(q.pop().unwrap().1, 'a');
        q.push(SimTime::from_millis(7), 'c');
        assert_eq!(q.pop().unwrap().1, 'c');
        assert_eq!(q.pop().unwrap().1, 'b');
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// Popping everything yields a sequence sorted by time, with equal
        /// timestamps preserving insertion order.
        #[test]
        fn pop_order_is_stable_sort(times in proptest::collection::vec(0u64..50, 1..128)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut popped = Vec::new();
            while let Some((t, idx)) = q.pop() {
                popped.push((t, idx));
            }
            let mut expected: Vec<(SimTime, usize)> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| (SimTime::from_nanos(t), i))
                .collect();
            expected.sort_by_key(|&(t, i)| (t, i));
            prop_assert_eq!(popped, expected);
        }
    }
}
