//! The simulation run loop.
//!
//! [`Simulation`] owns the clock and the event queue; callers either pull
//! events one at a time with [`Simulation::step`] or drive the whole run with
//! [`Simulation::run`], scheduling follow-up events from inside the handler
//! through the [`Scheduler`] handle.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulation: a virtual clock plus a pending-event queue.
#[derive(Debug, Clone, Default)]
pub struct Simulation<Ev> {
    queue: EventQueue<Ev>,
    now: SimTime,
}

/// Handle passed to [`Simulation::run`] handlers for scheduling new events.
#[derive(Debug)]
pub struct Scheduler<'a, Ev> {
    queue: &'a mut EventQueue<Ev>,
    now: SimTime,
}

impl<Ev> Scheduler<'_, Ev> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, event: Ev) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the simulated past.
    pub fn schedule_at(&mut self, at: SimTime, event: Ev) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {now})",
            now = self.now
        );
        self.queue.push(at, event);
    }
}

impl<Ev> Simulation<Ev> {
    /// Creates an empty simulation at time zero.
    pub fn new() -> Self {
        Self {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time (the timestamp of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulated time.
    pub fn schedule_at(&mut self, at: SimTime, event: Ev) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {now})",
            now = self.now
        );
        self.queue.push(at, event);
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_after(&mut self, delay: SimDuration, event: Ev) {
        self.queue.push(self.now + delay, event);
    }

    /// Delivers the next event, advancing the clock to its timestamp.
    pub fn step(&mut self) -> Option<(SimTime, Ev)> {
        let (time, event) = self.queue.pop()?;
        self.now = time;
        Some((time, event))
    }

    /// Runs until the queue drains, calling `handler` for every event.
    ///
    /// The handler receives a [`Scheduler`] through which it may schedule
    /// follow-up events. Returns the final simulated time.
    pub fn run<F>(&mut self, mut handler: F) -> SimTime
    where
        F: FnMut(SimTime, Ev, &mut Scheduler<'_, Ev>),
    {
        while let Some((time, event)) = self.queue.pop() {
            self.now = time;
            let mut scheduler = Scheduler {
                queue: &mut self.queue,
                now: time,
            };
            handler(time, event, &mut scheduler);
        }
        self.now
    }

    /// Runs until the queue drains or the clock passes `deadline`; events
    /// scheduled after the deadline stay in the queue. Returns the number of
    /// delivered events.
    pub fn run_until<F>(&mut self, deadline: SimTime, mut handler: F) -> usize
    where
        F: FnMut(SimTime, Ev, &mut Scheduler<'_, Ev>),
    {
        let mut delivered = 0;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            let (time, event) = self
                .queue
                .pop()
                .expect("invariant: peek_time just returned Some, so pop cannot fail");
            self.now = time;
            let mut scheduler = Scheduler {
                queue: &mut self.queue,
                now: time,
            };
            handler(time, event, &mut scheduler);
            delivered += 1;
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_advances_clock() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(3), "x");
        assert_eq!(sim.now(), SimTime::ZERO);
        let (t, e) = sim.step().unwrap();
        assert_eq!(t, SimTime::from_secs(3));
        assert_eq!(e, "x");
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert!(sim.step().is_none());
    }

    #[test]
    fn run_delivers_cascading_events() {
        // A "process" that re-schedules itself three times.
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_millis(1), 0u32);
        let mut seen = Vec::new();
        sim.run(|t, ev, s| {
            seen.push((t, ev));
            if ev < 3 {
                s.schedule_after(SimDuration::from_millis(10), ev + 1);
            }
        });
        assert_eq!(
            seen,
            vec![
                (SimTime::from_millis(1), 0),
                (SimTime::from_millis(11), 1),
                (SimTime::from_millis(21), 2),
                (SimTime::from_millis(31), 3),
            ]
        );
        assert_eq!(sim.now(), SimTime::from_millis(31));
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new();
        for i in 1..=10u64 {
            sim.schedule_at(SimTime::from_secs(i), i);
        }
        let delivered = sim.run_until(SimTime::from_secs(4), |_, _, _| {});
        assert_eq!(delivered, 4);
        assert_eq!(sim.pending(), 6);
        assert_eq!(sim.now(), SimTime::from_secs(4));
    }

    #[test]
    fn scheduler_now_matches_event_time() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(7), ());
        sim.run(|t, _, s| {
            assert_eq!(s.now(), t);
            assert_eq!(t, SimTime::from_secs(7));
        });
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        let _ = sim.step();
        sim.schedule_at(SimTime::from_secs(1), ());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduler_handle_rejects_past() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(5), ());
        sim.run(|_, _, s| {
            s.schedule_at(SimTime::from_secs(1), ());
        });
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::from_secs(2), "first");
        let _ = sim.step();
        sim.schedule_after(SimDuration::from_secs(3), "second");
        let (t, _) = sim.step().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
    }
}
