//! Deterministic random numbers for simulation.
//!
//! A SplitMix64 generator: tiny, fast, and with a well-understood output
//! distribution. Every stochastic element of the testbed (sensor noise,
//! client selection, synthetic-data generation) draws from a [`DetRng`]
//! seeded from the experiment configuration, so every figure in
//! EXPERIMENTS.md regenerates bit-identically.

/// Deterministic SplitMix64 random number generator.
///
/// # Example
///
/// ```
/// use fei_sim::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DetRng {
    state: u64,
    /// Cached second output of the Box–Muller transform.
    spare_gaussian: Option<f64>,
}

impl DetRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed,
            spare_gaussian: None,
        }
    }

    /// Derives an independent child generator; children with different
    /// `stream` ids produce decorrelated streams even from the same parent.
    pub fn fork(&self, stream: u64) -> DetRng {
        // Mix the stream id through one SplitMix64 round so consecutive ids
        // land far apart in the parent's state space.
        let mut z = self.state ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        DetRng::new(z ^ (z >> 31))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits -> [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` via rejection-free Lemire reduction.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "next_below(0) is meaningless");
        // Widening-multiply reduction; slight modulo bias is < 2^-53 for the
        // small ranges (tens of clients) used in this workspace.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Standard normal draw (Box–Muller, cached pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(g) = self.spare_gaussian.take() {
            return g;
        }
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_gaussian = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal draw with the given mean and standard deviation.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "standard deviation must be non-negative");
        mean + std_dev * self.gaussian()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Samples `k` distinct indices out of `0..n`, in random order.
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} of {n}");
        let mut all: Vec<usize> = (0..n).collect();
        self.shuffle(&mut all);
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_streams_are_decorrelated_and_deterministic() {
        let parent = DetRng::new(99);
        let mut c0 = parent.fork(0);
        let mut c1 = parent.fork(1);
        let mut c0_again = parent.fork(0);
        assert_ne!(c0.next_u64(), c1.next_u64());
        let mut c0_fresh = parent.fork(0);
        assert_eq!(c0_fresh.next_u64(), c0_again.next_u64());
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = DetRng::new(3);
        for _ in 0..1_000 {
            let x = rng.uniform(-2.0, 5.0);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn next_f64_in_unit_interval_with_plausible_mean() {
        let mut rng = DetRng::new(11);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn next_below_is_bounded_and_covers() {
        let mut rng = DetRng::new(5);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = rng.next_below(7) as usize;
            assert!(x < 7);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn next_below_zero_panics() {
        let _ = DetRng::new(1).next_below(0);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = DetRng::new(21);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_with_scales_and_shifts() {
        let mut rng = DetRng::new(31);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| rng.gaussian_with(10.0, 0.5)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gaussian_with_zero_std_is_constant() {
        let mut rng = DetRng::new(31);
        assert_eq!(rng.gaussian_with(4.0, 0.0), 4.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = DetRng::new(8);
        let mut xs: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut rng = DetRng::new(9);
        let sample = rng.sample_indices(20, 8);
        assert_eq!(sample.len(), 8);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        assert!(sample.iter().all(|&i| i < 20));
    }

    #[test]
    fn sample_all_is_permutation() {
        let mut rng = DetRng::new(10);
        let mut sample = rng.sample_indices(5, 5);
        sample.sort_unstable();
        assert_eq!(sample, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let _ = DetRng::new(1).sample_indices(3, 4);
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        #[test]
        fn sample_indices_always_distinct(seed in any::<u64>(), n in 1usize..64, frac in 0.0f64..1.0) {
            let k = ((n as f64) * frac) as usize;
            let mut rng = DetRng::new(seed);
            let s = rng.sample_indices(n, k);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            prop_assert_eq!(d.len(), s.len());
        }

        #[test]
        fn next_below_bounded(seed in any::<u64>(), n in 1u64..1000) {
            let mut rng = DetRng::new(seed);
            for _ in 0..64 {
                prop_assert!(rng.next_below(n) < n);
            }
        }
    }
}
