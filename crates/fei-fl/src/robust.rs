//! Byzantine-robust aggregation: update screening and robust combine rules.
//!
//! PR 1 taught the coordinator to survive *omission* faults — crashes,
//! stragglers, lost frames. This module handles *commission* faults: a
//! device that delivers a well-formed frame whose **contents** are hostile
//! (sign-flipped, boosted, noise-laden, or trained on flipped labels). The
//! defense has two stages, both deterministic functions of the update set:
//!
//! 1. [`UpdateScreen`] — a cheap per-update gate at the coordinator
//!    boundary. It rejects non-finite values and dimension mismatches
//!    outright, rejects norm outliers (median-ratio and optional z-score
//!    gates), and clips over-norm updates down to a configured ceiling
//!    (down-weighting rather than discarding).
//! 2. [`RobustRule`] — how the surviving updates are combined:
//!    coordinate-wise median, trimmed mean, or Krum/multi-Krum, each
//!    parameterized by an assumed Byzantine budget `f`.
//!
//! **Zero-budget fallback.** Every robust rule with budget `f = 0` is
//! *definitionally* the uniform mean — a trimmed mean that trims nothing, a
//! multi-Krum that selects everyone. All rules short-circuit through the
//! same accumulation loop as [`crate::aggregate()`]'s uniform path, so with no
//! assumed attackers the defended engines reproduce plain FedAvg
//! **bit-identically** (an invariant `tests/byzantine.rs` pins down).

use serde::{Deserialize, Serialize};

use crate::aggregate::{check_dims, try_aggregate, uniform_mean, AggregateError, AggregationRule};

/// How the post-screen update set is combined into the next global model.
///
/// Each rule carries an assumed Byzantine budget `f` — how many of the
/// arriving updates the coordinator is prepared to distrust. With `f = 0`
/// every rule reduces to the plain uniform mean, bit-identically (see the
/// module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RobustRule {
    /// Plain aggregation under an [`AggregationRule`] — no robustness, the
    /// undefended baseline.
    Mean(AggregationRule),
    /// Coordinate-wise median of the updates. Tolerates up to
    /// `⌈n/2⌉ - 1` arbitrary updates per coordinate; the budget documents
    /// the expectation but does not change the estimator (except `f = 0`,
    /// which falls back to the mean).
    CoordinateMedian {
        /// Assumed number of Byzantine updates in each round's arrival set.
        assumed_byzantine: usize,
    },
    /// Coordinate-wise trimmed mean: drop the `f` smallest and `f` largest
    /// values of every coordinate, average the rest.
    TrimmedMean {
        /// Values trimmed from *each* side of every coordinate.
        assumed_byzantine: usize,
    },
    /// Krum (Blanchard et al., NeurIPS 2017): score every update by the sum
    /// of squared distances to its `n - f - 2` nearest neighbors and keep
    /// the single best-scoring update.
    Krum {
        /// Assumed number of Byzantine updates in each round's arrival set.
        assumed_byzantine: usize,
    },
    /// Multi-Krum: Krum-score all updates, then average the `n - f` best.
    MultiKrum {
        /// Assumed number of Byzantine updates in each round's arrival set.
        assumed_byzantine: usize,
    },
}

impl RobustRule {
    /// The rule's assumed Byzantine budget (0 for the plain mean).
    pub fn assumed_byzantine(&self) -> usize {
        match *self {
            Self::Mean(_) => 0,
            Self::CoordinateMedian { assumed_byzantine }
            | Self::TrimmedMean { assumed_byzantine }
            | Self::Krum { assumed_byzantine }
            | Self::MultiKrum { assumed_byzantine } => assumed_byzantine,
        }
    }

    /// Short lowercase name for reports (`"mean"`, `"median"`, …).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Mean(_) => "mean",
            Self::CoordinateMedian { .. } => "median",
            Self::TrimmedMean { .. } => "trimmed-mean",
            Self::Krum { .. } => "krum",
            Self::MultiKrum { .. } => "multi-krum",
        }
    }
}

/// Why the screen rejected an update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScreenReason {
    /// The update contains NaN or infinite parameters.
    NonFinite,
    /// The update's parameter count differs from the global model's.
    DimensionMismatch,
    /// The update's L2 norm is an outlier against the round's arrival set.
    NormOutlier,
}

/// Thresholds of the coordinator's update screen.
///
/// All gates are deterministic functions of the round's update set, so the
/// serial and threaded engines screen identically. The defaults reject only
/// what is certainly malformed (non-finite values, wrong dimensions) plus
/// gross norm outliers; they are loose enough that benign IID fleets pass
/// untouched (preserving the zero-budget bit-identity guarantee).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScreenPolicy {
    /// Reject an update whose L2 norm differs from the round's *median*
    /// norm by more than this factor in either direction. `None` disables
    /// the gate. Robust to a malicious minority by construction (the median
    /// moves only when more than half the arrivals are hostile).
    pub norm_ratio_limit: Option<f64>,
    /// Reject an update whose L2 norm sits more than this many population
    /// standard deviations from the round's mean norm. `None` disables the
    /// gate. Note the algebraic ceiling `(n-1)/√n` on z-scores of an
    /// `n`-point set: limits ≥ 3 can never fire for `n ≤ 10`.
    pub zscore_limit: Option<f64>,
    /// Scale any update whose L2 norm exceeds this ceiling down to it
    /// (norm clipping — the update is *down-weighted*, not discarded).
    /// `None` disables clipping.
    pub clip_norm: Option<f64>,
}

impl Default for ScreenPolicy {
    fn default() -> Self {
        Self {
            norm_ratio_limit: Some(4.0),
            zscore_limit: None,
            clip_norm: None,
        }
    }
}

impl ScreenPolicy {
    /// A policy that gates nothing beyond the always-on structural checks
    /// (non-finite values, dimension mismatches).
    pub fn structural_only() -> Self {
        Self {
            norm_ratio_limit: None,
            zscore_limit: None,
            clip_norm: None,
        }
    }

    /// Panics on nonsensical limits: a ratio at or below 1, a non-positive
    /// z-score, or a non-finite or non-positive clip norm.
    pub fn validate(&self) {
        if let Some(r) = self.norm_ratio_limit {
            assert!(r > 1.0, "norm_ratio_limit must exceed 1, got {r}");
        }
        if let Some(z) = self.zscore_limit {
            assert!(z > 0.0, "zscore_limit must be positive, got {z}");
        }
        if let Some(c) = self.clip_norm {
            assert!(
                c.is_finite() && c > 0.0,
                "clip_norm must be positive and finite, got {c}"
            );
        }
    }
}

/// What the screen did to one round's update set.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScreenReport {
    /// `(index into the screened set, reason)` for every rejected update,
    /// ascending by index.
    pub rejected: Vec<(usize, ScreenReason)>,
    /// Updates whose norm was clipped down to the ceiling (down-weighted
    /// but kept).
    pub clipped: usize,
}

impl ScreenReport {
    /// Number of updates the screen rejected.
    pub fn rejected_count(&self) -> usize {
        self.rejected.len()
    }

    /// Whether the screen changed anything at all.
    pub fn any(&self) -> bool {
        !self.rejected.is_empty() || self.clipped > 0
    }
}

/// The coordinator's screening boundary: every arriving update passes
/// through [`UpdateScreen::screen`] before aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateScreen {
    policy: ScreenPolicy,
}

impl UpdateScreen {
    /// Builds a screen from a validated policy.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive threshold or a ratio limit ≤ 1.
    pub fn new(policy: ScreenPolicy) -> Self {
        policy.validate();
        Self { policy }
    }

    /// The policy in force.
    pub fn policy(&self) -> &ScreenPolicy {
        &self.policy
    }

    /// Screens `updates` in place against `expected_dim`: malformed and
    /// outlying updates are removed, over-norm updates are clipped, and the
    /// report records what happened (indices refer to the *input* order).
    ///
    /// Deterministic: the outcome is a pure function of the update set and
    /// the policy, independent of engine or thread interleaving.
    pub fn screen(
        &self,
        updates: &mut Vec<(Vec<f64>, usize)>,
        expected_dim: usize,
    ) -> ScreenReport {
        let mut report = ScreenReport::default();

        // Stage 1: structural checks, always on.
        let mut keep: Vec<bool> = vec![true; updates.len()];
        for (i, (params, _)) in updates.iter().enumerate() {
            if params.len() != expected_dim {
                report.rejected.push((i, ScreenReason::DimensionMismatch));
                keep[i] = false;
            } else if params.iter().any(|p| !p.is_finite()) {
                report.rejected.push((i, ScreenReason::NonFinite));
                keep[i] = false;
            }
        }

        // Stage 2: norm gates over the structurally sound survivors.
        let norms: Vec<(usize, f64)> = keep
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k)
            .map(|(i, _)| (i, l2_norm(&updates[i].0)))
            .collect();
        let norm_values: Vec<f64> = norms.iter().map(|&(_, n)| n).collect();

        if let Some(ratio) = self.policy.norm_ratio_limit {
            if let Some(median) = fei_math::try_percentile(&norm_values, 50.0) {
                if median > 0.0 {
                    for &(i, norm) in &norms {
                        if norm > median * ratio || norm < median / ratio {
                            report.rejected.push((i, ScreenReason::NormOutlier));
                            keep[i] = false;
                        }
                    }
                }
            }
        }
        if let Some(limit) = self.policy.zscore_limit {
            // Re-collect: the ratio gate may have already removed some.
            let survivors: Vec<(usize, f64)> =
                norms.iter().copied().filter(|&(i, _)| keep[i]).collect();
            let values: Vec<f64> = survivors.iter().map(|&(_, n)| n).collect();
            if let (Some(mean), Some(std)) =
                (fei_math::try_mean(&values), fei_math::try_std_dev(&values))
            {
                if std > 0.0 {
                    for &(i, norm) in &survivors {
                        if ((norm - mean) / std).abs() > limit {
                            report.rejected.push((i, ScreenReason::NormOutlier));
                            keep[i] = false;
                        }
                    }
                }
            }
        }

        // Stage 3: clip survivors above the norm ceiling (down-weight).
        if let Some(ceiling) = self.policy.clip_norm {
            for (i, (params, _)) in updates.iter_mut().enumerate() {
                if !keep[i] {
                    continue;
                }
                let norm = l2_norm(params);
                if norm > ceiling {
                    let scale = ceiling / norm;
                    for p in params.iter_mut() {
                        *p *= scale;
                    }
                    report.clipped += 1;
                }
            }
        }

        report.rejected.sort_unstable_by_key(|&(i, _)| i);
        let mut it = keep.iter();
        updates.retain(|_| {
            *it.next()
                .expect("invariant: keep mask was built with one entry per update")
        });
        report
    }
}

fn l2_norm(xs: &[f64]) -> f64 {
    xs.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Coordinator-side defense configuration: the screen at the boundary plus
/// the robust combine rule behind it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefenseConfig {
    /// Screening thresholds applied to every arriving update.
    pub screen: ScreenPolicy,
    /// How the surviving updates are combined.
    pub rule: RobustRule,
}

impl DefenseConfig {
    /// A defense built around `rule` with the default screen.
    pub fn with_rule(rule: RobustRule) -> Self {
        Self {
            screen: ScreenPolicy::default(),
            rule,
        }
    }
}

/// Combines `updates` under `rule`, reporting malformed input as a typed
/// error. The zero-budget fallback (see the module docs) makes every rule
/// with `assumed_byzantine == 0` bit-identical to the uniform mean.
///
/// # Errors
///
/// * [`AggregateError::EmptyUpdateSet`] — nothing survived to combine;
/// * [`AggregateError::DimensionMismatch`] — ragged parameter vectors;
/// * [`AggregateError::ZeroTotalWeight`] — all-zero sample counts under
///   [`RobustRule::Mean`] with [`AggregationRule::WeightedBySamples`].
pub fn robust_aggregate(
    updates: &[(Vec<f64>, usize)],
    rule: RobustRule,
) -> Result<Vec<f64>, AggregateError> {
    if updates.is_empty() {
        return Err(AggregateError::EmptyUpdateSet);
    }
    let dim = updates[0].0.len();
    check_dims(updates, dim)?;
    let n = updates.len();

    match rule {
        RobustRule::Mean(inner) => try_aggregate(updates, inner),
        _ if rule.assumed_byzantine() == 0 => Ok(uniform_mean(updates, dim)),
        RobustRule::CoordinateMedian { .. } => Ok(coordinate_trimmed(updates, dim, |sorted| {
            let mid = sorted.len() / 2;
            if sorted.len() % 2 == 1 {
                sorted[mid]
            } else {
                0.5 * (sorted[mid - 1] + sorted[mid])
            }
        })),
        RobustRule::TrimmedMean { assumed_byzantine } => {
            // Trim f from each side, but always keep at least one value.
            let trim = assumed_byzantine.min((n - 1) / 2);
            Ok(coordinate_trimmed(updates, dim, move |sorted| {
                let kept = &sorted[trim..sorted.len() - trim];
                kept.iter().sum::<f64>() / kept.len() as f64
            }))
        }
        RobustRule::Krum { assumed_byzantine } => {
            let best = krum_ranking(updates, n, assumed_byzantine)[0];
            Ok(updates[best].0.clone())
        }
        RobustRule::MultiKrum { assumed_byzantine } => {
            let select = n.saturating_sub(assumed_byzantine).max(1);
            let mut chosen = krum_ranking(updates, n, assumed_byzantine);
            chosen.truncate(select);
            // Average the selected updates in ascending index order so the
            // result is independent of score-ranking details.
            chosen.sort_unstable();
            let selected: Vec<(Vec<f64>, usize)> = chosen
                .iter()
                .map(|&i| (updates[i].0.clone(), updates[i].1))
                .collect();
            Ok(uniform_mean(&selected, dim))
        }
    }
}

/// Applies `combine` to each coordinate's sorted value list.
fn coordinate_trimmed(
    updates: &[(Vec<f64>, usize)],
    dim: usize,
    combine: impl Fn(&[f64]) -> f64,
) -> Vec<f64> {
    let mut column = vec![0.0; updates.len()];
    let mut out = vec![0.0; dim];
    for (j, o) in out.iter_mut().enumerate() {
        for (row, (params, _)) in updates.iter().enumerate() {
            column[row] = params[j];
        }
        column.sort_by(f64::total_cmp);
        *o = combine(&column);
    }
    out
}

/// Krum scores: for each update, the sum of squared distances to its
/// `n - f - 2` nearest peers (clamped to at least 1 so tiny arrival sets
/// still rank). Returns update indices ordered best (lowest score) first,
/// ties broken by index — fully deterministic.
fn krum_ranking(updates: &[(Vec<f64>, usize)], n: usize, f: usize) -> Vec<usize> {
    let neighbors = n.saturating_sub(f + 2).max(1).min(n - 1);
    let mut scores: Vec<(f64, usize)> = Vec::with_capacity(n);
    let mut dists = vec![0.0; n];
    for i in 0..n {
        for (j, d) in dists.iter_mut().enumerate() {
            *d = if i == j {
                f64::INFINITY
            } else {
                sq_distance(&updates[i].0, &updates[j].0)
            };
        }
        dists.sort_by(f64::total_cmp);
        let score: f64 = dists[..neighbors].iter().sum();
        scores.push((score, i));
    }
    scores.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    scores.into_iter().map(|(_, i)| i).collect()
}

fn sq_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(params: &[f64]) -> (Vec<f64>, usize) {
        (params.to_vec(), 10)
    }

    fn benign_set() -> Vec<(Vec<f64>, usize)> {
        vec![
            upd(&[1.0, 2.0, 3.0]),
            upd(&[1.1, 2.1, 2.9]),
            upd(&[0.9, 1.9, 3.1]),
            upd(&[1.05, 2.05, 3.05]),
            upd(&[0.95, 1.95, 2.95]),
        ]
    }

    #[test]
    fn zero_budget_rules_are_bit_identical_to_uniform_mean() {
        let updates = benign_set();
        let mean = try_aggregate(&updates, AggregationRule::Uniform).unwrap();
        for rule in [
            RobustRule::CoordinateMedian {
                assumed_byzantine: 0,
            },
            RobustRule::TrimmedMean {
                assumed_byzantine: 0,
            },
            RobustRule::Krum {
                assumed_byzantine: 0,
            },
            RobustRule::MultiKrum {
                assumed_byzantine: 0,
            },
        ] {
            let robust = robust_aggregate(&updates, rule).unwrap();
            assert_eq!(robust, mean, "{rule:?} must fall back to the mean");
        }
    }

    #[test]
    fn coordinate_median_resists_one_wild_update() {
        let mut updates = benign_set();
        updates.push(upd(&[1e9, -1e9, 1e9]));
        let merged = robust_aggregate(
            &updates,
            RobustRule::CoordinateMedian {
                assumed_byzantine: 1,
            },
        )
        .unwrap();
        for (m, center) in merged.iter().zip(&[1.0, 2.0, 3.0]) {
            assert!((m - center).abs() < 0.2, "median pulled to {m}");
        }
    }

    #[test]
    fn coordinate_median_odd_and_even_counts() {
        let odd = vec![upd(&[1.0]), upd(&[5.0]), upd(&[2.0])];
        assert_eq!(
            robust_aggregate(
                &odd,
                RobustRule::CoordinateMedian {
                    assumed_byzantine: 1
                }
            )
            .unwrap(),
            vec![2.0]
        );
        let even = vec![upd(&[1.0]), upd(&[5.0]), upd(&[2.0]), upd(&[4.0])];
        assert_eq!(
            robust_aggregate(
                &even,
                RobustRule::CoordinateMedian {
                    assumed_byzantine: 1
                }
            )
            .unwrap(),
            vec![3.0]
        );
    }

    #[test]
    fn trimmed_mean_drops_extremes() {
        let updates = vec![
            upd(&[0.0]),
            upd(&[1.0]),
            upd(&[2.0]),
            upd(&[3.0]),
            upd(&[1000.0]),
        ];
        let merged = robust_aggregate(
            &updates,
            RobustRule::TrimmedMean {
                assumed_byzantine: 1,
            },
        )
        .unwrap();
        assert_eq!(merged, vec![2.0]);
    }

    #[test]
    fn trimmed_mean_clamps_overlarge_budget() {
        // Budget 5 on 3 updates trims at most (3-1)/2 = 1 per side.
        let updates = vec![upd(&[0.0]), upd(&[2.0]), upd(&[100.0])];
        let merged = robust_aggregate(
            &updates,
            RobustRule::TrimmedMean {
                assumed_byzantine: 5,
            },
        )
        .unwrap();
        assert_eq!(merged, vec![2.0]);
    }

    #[test]
    fn krum_picks_a_clustered_update() {
        let mut updates = benign_set();
        updates.push(upd(&[50.0, -50.0, 50.0]));
        let merged = robust_aggregate(
            &updates,
            RobustRule::Krum {
                assumed_byzantine: 1,
            },
        )
        .unwrap();
        assert!(
            updates[..5].iter().any(|(p, _)| p == &merged),
            "Krum must return one of the benign updates, got {merged:?}"
        );
    }

    #[test]
    fn multi_krum_excludes_the_outlier() {
        let mut updates = benign_set();
        updates.push(upd(&[50.0, -50.0, 50.0]));
        let merged = robust_aggregate(
            &updates,
            RobustRule::MultiKrum {
                assumed_byzantine: 1,
            },
        )
        .unwrap();
        // Mean of the 5 benign updates only.
        let benign_mean = try_aggregate(&benign_set(), AggregationRule::Uniform).unwrap();
        for (a, b) in merged.iter().zip(&benign_mean) {
            assert!((a - b).abs() < 1e-12, "{merged:?} vs {benign_mean:?}");
        }
    }

    #[test]
    fn robust_rules_are_permutation_invariant() {
        let mut updates = benign_set();
        updates.push(upd(&[50.0, -50.0, 50.0]));
        let rules = [
            RobustRule::CoordinateMedian {
                assumed_byzantine: 1,
            },
            RobustRule::TrimmedMean {
                assumed_byzantine: 1,
            },
            RobustRule::Krum {
                assumed_byzantine: 1,
            },
            RobustRule::MultiKrum {
                assumed_byzantine: 1,
            },
        ];
        let mut reversed = updates.clone();
        reversed.reverse();
        for rule in rules {
            let a = robust_aggregate(&updates, rule).unwrap();
            let b = robust_aggregate(&reversed, rule).unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-9, "{rule:?} is order-dependent");
            }
        }
    }

    #[test]
    fn robust_aggregate_propagates_typed_errors() {
        let rule = RobustRule::CoordinateMedian {
            assumed_byzantine: 1,
        };
        assert_eq!(
            robust_aggregate(&[], rule),
            Err(AggregateError::EmptyUpdateSet)
        );
        assert_eq!(
            robust_aggregate(&[upd(&[1.0]), upd(&[1.0, 2.0])], rule),
            Err(AggregateError::DimensionMismatch {
                expected: 1,
                got: 2,
                index: 1
            })
        );
    }

    #[test]
    fn screen_rejects_non_finite_and_ragged_updates() {
        let screen = UpdateScreen::new(ScreenPolicy::structural_only());
        let mut updates = vec![
            upd(&[1.0, 2.0, 3.0]),
            upd(&[1.0, f64::NAN, 3.0]),
            upd(&[1.0, 2.0]),
            upd(&[f64::INFINITY, 0.0, 0.0]),
            upd(&[0.9, 2.1, 3.0]),
        ];
        let report = screen.screen(&mut updates, 3);
        assert_eq!(updates.len(), 2);
        assert_eq!(
            report.rejected,
            vec![
                (1, ScreenReason::NonFinite),
                (2, ScreenReason::DimensionMismatch),
                (3, ScreenReason::NonFinite),
            ]
        );
        assert_eq!(report.clipped, 0);
    }

    #[test]
    fn screen_norm_ratio_gate_drops_boosted_update() {
        let screen = UpdateScreen::new(ScreenPolicy::default());
        let mut updates = benign_set();
        updates.push(upd(&[100.0, 200.0, 300.0])); // 100x the benign norm
        let report = screen.screen(&mut updates, 3);
        assert_eq!(report.rejected, vec![(5, ScreenReason::NormOutlier)]);
        assert_eq!(updates.len(), 5);
    }

    #[test]
    fn screen_zscore_gate_drops_far_outlier() {
        let screen = UpdateScreen::new(ScreenPolicy {
            norm_ratio_limit: None,
            zscore_limit: Some(2.0),
            clip_norm: None,
        });
        // 11 tight updates + 1 far outlier: z of the outlier ≈ 3.2.
        let mut updates: Vec<_> = (0..11)
            .map(|i| upd(&[1.0 + 0.001 * i as f64, 2.0, 3.0]))
            .collect();
        updates.push(upd(&[30.0, 2.0, 3.0]));
        let report = screen.screen(&mut updates, 3);
        assert_eq!(report.rejected, vec![(11, ScreenReason::NormOutlier)]);
    }

    #[test]
    fn screen_clips_over_norm_updates() {
        let screen = UpdateScreen::new(ScreenPolicy {
            norm_ratio_limit: None,
            zscore_limit: None,
            clip_norm: Some(5.0),
        });
        let mut updates = vec![upd(&[3.0, 4.0]), upd(&[6.0, 8.0])];
        let report = screen.screen(&mut updates, 2);
        assert_eq!(report.clipped, 1);
        assert!(report.rejected.is_empty());
        assert_eq!(updates[0].0, vec![3.0, 4.0]);
        let clipped_norm = (updates[1].0[0].powi(2) + updates[1].0[1].powi(2)).sqrt();
        assert!((clipped_norm - 5.0).abs() < 1e-12);
    }

    #[test]
    fn screen_is_deterministic_and_order_equivariant() {
        let screen = UpdateScreen::new(ScreenPolicy::default());
        let mut a = benign_set();
        a.push(upd(&[1000.0, 0.0, 0.0]));
        let mut b = a.clone();
        let ra = screen.screen(&mut a, 3);
        let rb = screen.screen(&mut b, 3);
        assert_eq!(ra, rb);
        assert_eq!(a, b);
    }

    #[test]
    fn screen_passes_benign_sets_untouched() {
        let screen = UpdateScreen::new(ScreenPolicy::default());
        let mut updates = benign_set();
        let before = updates.clone();
        let report = screen.screen(&mut updates, 3);
        assert!(!report.any());
        assert_eq!(updates, before);
    }

    #[test]
    #[should_panic(expected = "norm_ratio_limit")]
    fn screen_rejects_degenerate_ratio() {
        let _ = UpdateScreen::new(ScreenPolicy {
            norm_ratio_limit: Some(1.0),
            ..Default::default()
        });
    }
}
