//! Threaded FedAvg: one OS thread per edge server.
//!
//! Exercises the full communication path of a real deployment: the
//! coordinator serializes the global model into a byte frame (`fei-net`
//! codec), sends it over a channel to each selected worker, and workers ship
//! their trained models back the same way. Given equal configuration and
//! seed the results are bit-identical to [`crate::FedAvg`] — an invariant the
//! integration tests pin down.

use std::collections::BTreeSet;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Buf;
use crossbeam::channel::{unbounded, Receiver, Sender};
use fei_data::Dataset;
use fei_ml::{GradReduction, GradScratch, LocalTrainer, LogisticRegression, Model, WorkerPool};
use fei_net::codec::{decode_frame, encode_frame, encode_frame_into, FRAME_OVERHEAD};
use fei_net::wire::{WireConfig, WireScratch};
use fei_proto::{control_round_bytes, DeviceReport, RoundMachine, RoundPolicy};
use parking_lot::Mutex;

use crate::adversary::{flip_dataset_labels, Adversary, AdversarySpec};
use crate::aggregate::try_aggregate;
use crate::error::FlError;
use crate::fault::FaultInjector;
use crate::fedavg::{FedAvgConfig, RoundFaultStats, RoundOutcome, RoundRecord, StopCondition};
use crate::history::TrainingHistory;
use crate::resume::EngineCheckpoint;
use crate::robust::{robust_aggregate, UpdateScreen};
use crate::selection::ClientSelector;

/// Wall-clock safety net for a worker reply. Fault schedules are virtual —
/// this only fires when a worker thread genuinely died or wedged, in which
/// case the round proceeds without it instead of hanging.
const DEFAULT_WORKER_TIMEOUT: Duration = Duration::from_secs(30);

/// Frame tag for coordinator → worker global-model dispatch.
const MSG_GLOBAL: u8 = 1;
/// Frame tag for worker → coordinator model upload.
const MSG_UPDATE: u8 = 2;

/// Meta bytes in a global-model frame payload: round and epochs.
const GLOBAL_META: usize = 4 + 4;
/// Meta bytes in an update frame payload: round, client, samples, and the
/// initial/final local losses.
const UPDATE_META: usize = 4 + 4 + 8 + 8 + 8;

/// Exact length of a coordinator → worker global-model frame for an
/// `n`-parameter model. The downlink broadcast is always lossless `F64`, so
/// every worker holds a bit-exact copy of the global model — the shared base
/// that makes delta uploads decodable and keeps both engines bit-identical.
pub(crate) fn global_frame_len(n: usize) -> usize {
    FRAME_OVERHEAD + GLOBAL_META + WireConfig::lossless().payload_len(n)
}

/// Exact length of a worker → coordinator update frame for an `n`-parameter
/// model under `transport`. The serial engine charges these same lengths to
/// its simulated [`TransportStats`], byte for byte.
pub(crate) fn update_frame_len(transport: WireConfig, n: usize) -> usize {
    FRAME_OVERHEAD + UPDATE_META + transport.payload_len(n)
}

/// Bytes moved over the wire in both directions, tracked across workers.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportStats {
    /// Bytes of global-model frames received by workers.
    pub bytes_down: u64,
    /// Bytes of update frames sent by workers.
    pub bytes_up: u64,
    /// Bytes retransmitted on the uplink: every lost or corrupted upload
    /// attempt resends the full update frame.
    pub bytes_retransmitted: u64,
    /// Control-plane bytes (selection notices, heartbeats, round verdicts)
    /// of the coordinator protocol, both directions. Model payloads ride
    /// the data-plane frames counted above.
    pub bytes_control: u64,
    /// Number of local-training jobs executed.
    pub jobs: u64,
}

enum ToWorker {
    Train {
        round: u32,
        epochs: u32,
        frame: Vec<u8>,
        /// Train on the label-flipped copy of this worker's dataset (the
        /// device is a compromised label-flip client).
        flip: bool,
    },
    /// Test/chaos hook: the worker panics on receipt, simulating a process
    /// crash mid-deployment.
    Poison,
    Shutdown,
}

struct Update {
    round: u32,
    client: usize,
    samples: usize,
    params: Vec<f64>,
    initial_loss: f64,
    final_loss: f64,
}

fn encode_global(round: u32, epochs: u32, params: &[f64], wire: &mut WireScratch) -> Vec<u8> {
    let mut payload =
        Vec::with_capacity(GLOBAL_META + WireConfig::lossless().payload_len(params.len()));
    payload.extend_from_slice(&round.to_be_bytes());
    payload.extend_from_slice(&epochs.to_be_bytes());
    wire.encode_into(WireConfig::lossless(), params, None, &mut payload);
    encode_frame(MSG_GLOBAL, &payload).to_vec()
}

#[cfg(test)]
fn decode_global(frame: &[u8]) -> (u32, u32, Vec<f64>) {
    let mut params = Vec::new();
    let mut wire = WireScratch::new();
    let (round, epochs) = decode_global_into(frame, &mut params, &mut wire);
    (round, epochs, params)
}

/// Decodes a global-model frame into a reused parameter buffer, so a worker
/// that keeps the buffer across rounds pays no per-frame allocation once the
/// buffer reaches model size.
fn decode_global_into(frame: &[u8], params: &mut Vec<f64>, wire: &mut WireScratch) -> (u32, u32) {
    let (frame, _) = decode_frame(frame)
        .expect("invariant: coordinator frames are encoded in-process and cannot be malformed");
    assert_eq!(frame.msg_type, MSG_GLOBAL, "expected a global-model frame");
    let mut buf = &frame.payload[..];
    let round = buf.get_u32();
    let epochs = buf.get_u32();
    let config = wire
        .decode_into(buf, None, params)
        .expect("invariant: coordinator payloads are encoded in-process and cannot be malformed");
    debug_assert!(config.is_lossless(), "the downlink broadcast is lossless");
    (round, epochs)
}

/// Encodes an update frame under the run's transport tier. With a delta
/// tier, `base` is the worker's bit-exact copy of this round's global model.
/// The wire payload is staged in the worker's persistent `payload_buf`, so
/// the codec hot path allocates nothing once warm; only the returned frame
/// (whose ownership the channel takes) is fresh.
fn encode_update(
    update: &Update,
    transport: WireConfig,
    base: &[f64],
    wire: &mut WireScratch,
    payload_buf: &mut Vec<u8>,
) -> Vec<u8> {
    payload_buf.clear();
    payload_buf.extend_from_slice(&update.round.to_be_bytes());
    payload_buf.extend_from_slice(&(update.client as u32).to_be_bytes());
    payload_buf.extend_from_slice(&(update.samples as u64).to_be_bytes());
    payload_buf.extend_from_slice(&update.initial_loss.to_le_bytes());
    payload_buf.extend_from_slice(&update.final_loss.to_le_bytes());
    wire.encode_into(transport, &update.params, Some(base), payload_buf);
    let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload_buf.len());
    encode_frame_into(MSG_UPDATE, payload_buf, &mut frame);
    frame
}

/// Decodes an update frame. `base` is the coordinator's current global model
/// (not yet aggregated this round), the same base every worker encoded
/// deltas against.
fn decode_update(frame: &[u8], base: &[f64], wire: &mut WireScratch) -> Update {
    let (frame, _) = decode_frame(frame).expect(
        "invariant: worker frames survived the codec checksum before reaching the coordinator",
    );
    assert_eq!(frame.msg_type, MSG_UPDATE, "expected an update frame");
    let mut buf = &frame.payload[..];
    let round = buf.get_u32();
    let client = buf.get_u32() as usize;
    let samples = buf.get_u64() as usize;
    let initial_loss = buf.get_f64_le();
    let final_loss = buf.get_f64_le();
    let mut params = Vec::new();
    wire.decode_into(buf, Some(base), &mut params)
        .expect("invariant: worker payloads are encoded in-process against the shared base");
    Update {
        round,
        client,
        samples,
        params,
        initial_loss,
        final_loss,
    }
}

/// FedAvg with edge servers running on dedicated threads, generic over the
/// trained [`Model`] (multinomial logistic regression by default).
pub struct ThreadedFedAvg<M: Model = LogisticRegression> {
    config: FedAvgConfig,
    test: Dataset,
    global: M,
    selector: ClientSelector,
    round: usize,
    dropout_rng: fei_sim::DetRng,
    client_sizes: Vec<usize>,
    to_workers: Vec<Sender<ToWorker>>,
    from_workers: Receiver<Vec<u8>>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<Mutex<TransportStats>>,
    /// Coordinator-side wire workspace: encodes the downlink broadcast and
    /// decodes every update frame, allocation-free once warm.
    wire: WireScratch,
    injector: Option<FaultInjector>,
    adversary: Option<Adversary>,
    worker_timeout: Duration,
    /// Kept so `global_train_loss` can be computed coordinator-side; shared
    /// immutably with worker threads.
    client_data: Vec<Arc<Dataset>>,
}

impl ThreadedFedAvg<LogisticRegression> {
    /// Spawns one worker thread per client dataset, training the paper's
    /// zero-initialized multinomial logistic regression.
    ///
    /// # Panics
    ///
    /// Same validation as [`crate::FedAvg::new`].
    pub fn new(config: FedAvgConfig, clients: Vec<Dataset>, test: Dataset) -> Self {
        assert!(!clients.is_empty(), "need at least one client dataset");
        let global = LogisticRegression::zeros(clients[0].dim(), clients[0].num_classes());
        Self::with_model(config, clients, test, global)
    }
}

impl<M: Model> ThreadedFedAvg<M> {
    /// Spawns one worker thread per client dataset with an explicit initial
    /// global model `ω₀`.
    ///
    /// # Panics
    ///
    /// Same validation as [`crate::FedAvg::with_model`].
    pub fn with_model(
        config: FedAvgConfig,
        clients: Vec<Dataset>,
        test: Dataset,
        global: M,
    ) -> Self {
        assert!(!clients.is_empty(), "need at least one client dataset");
        assert!(
            clients.iter().all(|c| !c.is_empty()),
            "every client needs at least one sample"
        );
        let dim = clients[0].dim();
        let classes = clients[0].num_classes();
        assert!(
            clients
                .iter()
                .all(|c| c.dim() == dim && c.num_classes() == classes),
            "client datasets must share a shape"
        );
        assert!(config.clients_per_round > 0, "K must be at least 1");
        assert!(
            config.clients_per_round <= clients.len(),
            "K = {} exceeds N = {}",
            config.clients_per_round,
            clients.len()
        );
        assert!(config.local_epochs > 0, "E must be at least 1");
        assert!(config.eval_every > 0, "eval_every must be at least 1");
        assert!(
            (0.0..1.0).contains(&config.dropout_prob),
            "dropout probability must be in [0, 1)"
        );
        if let Some(defense) = &config.defense {
            defense.screen.validate();
        }

        assert_eq!(global.dim(), dim, "model dimension mismatch");
        assert_eq!(global.num_classes(), classes, "model class mismatch");
        let selector = ClientSelector::new(config.selection, clients.len(), config.seed);
        let stats = Arc::new(Mutex::new(TransportStats::default()));
        let (result_tx, from_workers) = unbounded::<Vec<u8>>();

        let client_sizes: Vec<usize> = clients.iter().map(Dataset::len).collect();
        let client_data: Vec<Arc<Dataset>> = clients.into_iter().map(Arc::new).collect();
        let mut to_workers = Vec::with_capacity(client_data.len());
        let mut handles = Vec::with_capacity(client_data.len());

        // One persistent gradient pool shared by every client worker (the
        // pooled kernel is bit-identical to the scoped one, so sharing
        // changes scheduling, never numerics). Dropped when the last client
        // worker exits.
        let grad_pool = match config.sgd.grad {
            GradReduction::FusedParallel { threads } if threads > 1 => {
                Some(Arc::new(WorkerPool::new(threads)))
            }
            _ => None,
        };

        for (id, data) in client_data.iter().enumerate() {
            let (tx, rx) = unbounded::<ToWorker>();
            to_workers.push(tx);
            let data = Arc::clone(data);
            let result_tx = result_tx.clone();
            let trainer = LocalTrainer::new(config.sgd.clone());
            let stats = Arc::clone(&stats);
            let template = global.clone();
            let transport = config.transport;
            let grad_pool = grad_pool.clone();
            handles.push(std::thread::spawn(move || {
                worker_loop(
                    id,
                    template,
                    &data,
                    &trainer,
                    transport,
                    &rx,
                    &result_tx,
                    &stats,
                    grad_pool.as_deref(),
                );
            }));
        }

        let dropout_rng = fei_sim::DetRng::new(config.seed).fork(0xD80);
        Self {
            config,
            test,
            global,
            selector,
            round: 0,
            dropout_rng,
            client_sizes,
            to_workers,
            from_workers,
            handles,
            stats,
            wire: WireScratch::new(),
            injector: None,
            adversary: None,
            worker_timeout: DEFAULT_WORKER_TIMEOUT,
            client_data,
        }
    }

    /// Attaches a seeded fault injector; see [`crate::FedAvg::with_faults`].
    /// Fault decisions are made coordinator-side from the same pure
    /// schedule, so both engines stay bit-identical under the same seed.
    ///
    /// # Panics
    ///
    /// Panics when `dropout_prob` is also set.
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        assert_eq!(
            self.config.dropout_prob, 0.0,
            "use either dropout_prob or a fault injector, not both"
        );
        self.injector = Some(injector);
        self
    }

    /// Compromises a seeded fraction of the fleet; see
    /// [`crate::FedAvg::with_adversary`]. Attacks on uploaded parameters are
    /// applied coordinator-side to the decoded frames (the codec
    /// round-trips `f64`s exactly), and label-flip cohorts are flagged in
    /// the dispatch so workers train on flipped copies — both engines
    /// observe bit-identical attacks under the same spec.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`AdversarySpec`] (see [`Adversary::new`]).
    pub fn with_adversary(mut self, spec: AdversarySpec) -> Self {
        self.adversary = Some(Adversary::new(spec, self.client_sizes.len()));
        self
    }

    /// The attached adversary, if any.
    pub fn adversary(&self) -> Option<&Adversary> {
        self.adversary.as_ref()
    }

    /// Overrides the wall-clock reply timeout used to detect dead workers.
    pub fn with_worker_timeout(mut self, timeout: Duration) -> Self {
        self.worker_timeout = timeout;
        self
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Chaos hook: makes `client`'s worker thread panic on its next message,
    /// simulating a process crash. Subsequent rounds count the dead worker
    /// as a dropout — they never hang on it.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range.
    pub fn inject_worker_panic(&self, client: usize) {
        let _ = self.to_workers[client].send(ToWorker::Poison);
    }

    /// The run's configuration.
    pub fn config(&self) -> &FedAvgConfig {
        &self.config
    }

    /// The current global model.
    pub fn global_model(&self) -> &M {
        &self.global
    }

    /// Rounds completed so far.
    pub fn rounds_completed(&self) -> usize {
        self.round
    }

    /// Cumulative transport statistics across all workers.
    pub fn transport_stats(&self) -> TransportStats {
        *self.stats.lock()
    }

    /// Captures the engine's resumable state; see
    /// [`crate::FedAvg::checkpoint`]. Checkpoints are interchangeable
    /// between the serial and threaded engines.
    pub fn checkpoint(&self) -> EngineCheckpoint<M> {
        EngineCheckpoint {
            round: self.round,
            global: self.global.clone(),
            selector: self.selector.clone(),
            dropout_rng: self.dropout_rng.clone(),
            transport: *self.stats.lock(),
            clients_per_round: self.config.clients_per_round,
            local_epochs: self.config.local_epochs,
        }
    }

    /// Rewinds the engine to a checkpoint taken from either execution
    /// engine over the same fleet and configuration. Worker threads keep
    /// running — only coordinator-side state rewinds, which is all a round
    /// depends on (workers are stateless between jobs).
    ///
    /// # Panics
    ///
    /// Panics if the checkpointed model's shape does not match this
    /// engine's datasets, or its `K` exceeds the fleet.
    pub fn restore(&mut self, checkpoint: EngineCheckpoint<M>) {
        assert_eq!(
            checkpoint.global.dim(),
            self.client_data[0].dim(),
            "checkpoint model dimension mismatch"
        );
        assert_eq!(
            checkpoint.global.num_classes(),
            self.client_data[0].num_classes(),
            "checkpoint model class mismatch"
        );
        assert!(
            checkpoint.clients_per_round >= 1
                && checkpoint.clients_per_round <= self.client_sizes.len(),
            "checkpoint K = {} out of range for N = {}",
            checkpoint.clients_per_round,
            self.client_sizes.len()
        );
        assert!(
            checkpoint.local_epochs >= 1,
            "checkpoint E must be at least 1"
        );
        self.round = checkpoint.round;
        self.global = checkpoint.global;
        self.selector = checkpoint.selector;
        self.dropout_rng = checkpoint.dropout_rng;
        *self.stats.lock() = checkpoint.transport;
        self.config.clients_per_round = checkpoint.clients_per_round;
        self.config.local_epochs = checkpoint.local_epochs;
    }

    /// Loss of the current global model over all client data.
    pub fn global_train_loss(&self) -> f64 {
        let total: usize = self.client_sizes.iter().sum();
        let weighted: f64 = self
            .client_data
            .iter()
            .map(|c| self.global.loss(c) * c.len() as f64)
            .sum();
        weighted / total as f64
    }

    /// Executes one global round across the worker threads.
    ///
    /// # Panics
    ///
    /// Panics if the round fails outright (see
    /// [`ThreadedFedAvg::try_run_round`]); impossible without a fault
    /// injector.
    pub fn run_round(&mut self) -> RoundRecord {
        // fei-lint: allow(no-panic, reason = "documented panicking convenience wrapper; fallible callers use try_run_round")
        self.try_run_round().expect("federated round failed")
    }

    /// Executes one global round, reporting fleet exhaustion as a typed
    /// error. Mirrors [`crate::FedAvg::try_run_round`] decision-for-decision
    /// so both engines produce bit-identical records under the same seeds.
    ///
    /// The coordinator survives worker failures: a send to a dead worker or
    /// a missing reply (panic, wedge) counts the worker as a dropout
    /// ([`RoundFaultStats::worker_losses`]) after a wall-clock timeout —
    /// the round always terminates.
    ///
    /// # Errors
    ///
    /// [`FlError::FleetBelowQuorum`] when fewer devices are up than the
    /// quorum requires (the round counter is not advanced), and
    /// [`FlError::Aggregate`] when the delivered updates could not be
    /// combined (the global model is unchanged).
    pub fn try_run_round(&mut self) -> Result<RoundRecord, FlError> {
        let t = self.round;
        let mut faults = RoundFaultStats::default();

        // Decide the round plan coordinator-side (matching the in-process
        // engine's decisions) so both engines stay bit-identical.
        let (selected, planned) = match self.injector.as_ref().filter(|i| i.is_enabled()).cloned() {
            None => {
                let selected = self.selector.select(t, self.config.clients_per_round);
                let planned: Vec<usize> = selected
                    .iter()
                    .copied()
                    .filter(|_| {
                        // fei-lint: allow(float-eq, reason = "configuration sentinel: exactly-zero dropout must not consume RNG draws, or seeds diverge")
                        self.config.dropout_prob == 0.0
                            || self.dropout_rng.next_f64() >= self.config.dropout_prob
                    })
                    .collect();
                (selected, planned)
            }
            Some(injector) => {
                let tol = self.config.tolerance.clone();
                let n = self.client_sizes.len();

                // The same fei-proto round decision core the in-process
                // engine executes: one implementation of the quorum gate,
                // selection width, deadline admission, and first-K race.
                let policy = RoundPolicy {
                    k: self.config.clients_per_round,
                    over_select: tol.over_select,
                    quorum: tol.effective_quorum(),
                    deadline_s: tol.deadline_s,
                };
                let alive = injector.live_fleet(n, t).len();
                // `RoundMachine::begin` fails only on quorum loss.
                let mut machine = RoundMachine::begin(policy, t as u64, alive).map_err(|_| {
                    FlError::FleetBelowQuorum {
                        round: t,
                        alive,
                        required: policy.quorum,
                    }
                })?;

                let selected = self.selector.select(t, machine.selection_width(n));

                for &device in &selected {
                    if injector.is_down(device, t) {
                        machine.offer_crashed(device);
                        continue;
                    }
                    let factor = injector.straggle_factor(device, t);
                    let upload = injector.upload_outcome(device, t, &tol.retry);
                    faults.corrupted_frames += upload.corrupted;
                    faults.upload_retries += upload.attempts - 1;
                    machine.offer(
                        device,
                        DeviceReport {
                            straggle_factor: factor,
                            delivered: upload.delivered,
                            arrival_s: tol.nominal_round_s * factor + upload.backoff_s,
                        },
                    );
                }

                let closed = machine.close();
                faults.crashed = closed.tally.crashed;
                faults.stragglers = closed.tally.stragglers;
                faults.abandoned_uploads = closed.tally.abandoned_uploads;
                faults.deadline_misses = closed.tally.deadline_misses;
                (selected, closed.accepted)
            }
        };

        // Dispatch. A send failure means the worker's thread is gone (e.g.
        // it panicked): count it as a dropout rather than crashing the run.
        let frame = encode_global(
            t as u32,
            self.config.local_epochs as u32,
            self.global.to_flat(),
            &mut self.wire,
        );
        let mut pending = BTreeSet::new();
        for &client in &planned {
            let sent = self.to_workers[client]
                .send(ToWorker::Train {
                    round: t as u32,
                    epochs: self.config.local_epochs as u32,
                    frame: frame.clone(),
                    flip: self
                        .adversary
                        .as_ref()
                        .is_some_and(|adv| adv.flips_labels(client)),
                })
                .is_ok();
            if sent {
                pending.insert(client);
            } else {
                faults.worker_losses += 1;
            }
        }

        // Collect replies. The wall-clock timeout is a liveness safety net:
        // a worker that dies mid-job stops the wait, and its absence is a
        // dropout — the round never hangs and never poisons shared state.
        let mut updates: Vec<(Update, usize)> = Vec::with_capacity(pending.len());
        while !pending.is_empty() {
            match self.from_workers.recv_timeout(self.worker_timeout) {
                Ok(reply) => {
                    let frame_len = reply.len();
                    let update = decode_update(&reply, self.global.to_flat(), &mut self.wire);
                    // Discard stale frames from rounds a dead worker missed.
                    if update.round == t as u32 && pending.remove(&update.client) {
                        updates.push((update, frame_len));
                    }
                }
                Err(_) => {
                    faults.worker_losses += pending.len();
                    pending.clear();
                }
            }
        }
        // Restore deterministic order: workers reply in arbitrary order.
        updates.sort_by_key(|(u, _)| u.client);
        let responded: Vec<usize> = updates.iter().map(|(u, _)| u.client).collect();

        // Apply parameter attacks coordinator-side, on the decoded frames:
        // the codec round-trips `f64`s exactly, so the poisoned values are
        // bit-identical to the in-process engine's.
        if let Some(adversary) = &self.adversary {
            let global_flat = self.global.to_flat();
            for (u, _) in updates.iter_mut() {
                adversary.poison(u.client, t, global_flat, &mut u.params);
            }
        }

        // Charge uplink retransmissions decided by the fault schedule: each
        // failed attempt resent the full update frame.
        if let Some(injector) = &self.injector {
            if injector.is_enabled() {
                let retry = &self.config.tolerance.retry;
                let resent: u64 = updates
                    .iter()
                    .map(|(u, len)| {
                        let attempts = injector.upload_outcome(u.client, t, retry).attempts;
                        (attempts as u64 - 1) * *len as u64
                    })
                    .sum();
                if resent > 0 {
                    self.stats.lock().bytes_retransmitted += resent;
                }
            }
        }

        // Screen the delivered updates exactly as the in-process engine
        // does: a screened-out update counts as undelivered for quorum.
        let mut pairs: Vec<(Vec<f64>, usize)> = updates
            .iter()
            .map(|(u, _)| (u.params.clone(), u.samples))
            .collect();
        if let Some(defense) = &self.config.defense {
            let report =
                UpdateScreen::new(defense.screen).screen(&mut pairs, self.global.to_flat().len());
            faults.screened_updates = report.rejected_count();
            faults.clipped_updates = report.clipped;
        }

        let quorum = self.config.tolerance.effective_quorum();
        let outcome = RoundOutcome::of(pairs.len(), selected.len(), quorum);

        // Control-plane traffic of the protocol round, charged exactly as
        // the in-process engine charges it.
        self.stats.lock().bytes_control += control_round_bytes(
            selected.len(),
            selected.len() - faults.crashed,
            outcome.committed(),
            responded.len(),
        );
        if outcome.committed() && !pairs.is_empty() {
            let merged = match &self.config.defense {
                Some(defense) => robust_aggregate(&pairs, defense.rule),
                None => try_aggregate(&pairs, self.config.aggregation),
            }
            .map_err(|source| FlError::Aggregate { round: t, source })?;
            self.global.set_flat(&merged);
        }
        self.round += 1;

        let evaluated = self.round.is_multiple_of(self.config.eval_every);
        Ok(RoundRecord {
            round: t,
            selected,
            responded,
            local_stats: updates
                .iter()
                .map(|(u, _)| fei_ml::TrainStats {
                    epochs_run: self.config.local_epochs,
                    gradient_steps: self.config.local_epochs,
                    initial_loss: u.initial_loss,
                    final_loss: u.final_loss,
                    samples: u.samples,
                })
                .collect(),
            global_train_loss: evaluated.then(|| self.global_train_loss()),
            test_eval: evaluated.then(|| fei_ml::Evaluation::of(&self.global, &self.test)),
            outcome,
            faults,
        })
    }

    /// Runs rounds until `stop` is satisfied.
    ///
    /// # Panics
    ///
    /// Panics if a round fails outright; impossible without a fault
    /// injector.
    pub fn run_until(&mut self, stop: StopCondition) -> TrainingHistory {
        // fei-lint: allow(no-panic, reason = "documented panicking convenience wrapper; fallible callers use try_run_until")
        self.try_run_until(stop).expect("federated round failed")
    }

    /// Runs rounds until `stop` is satisfied, with the same missed-target
    /// recording and error semantics as [`crate::FedAvg::try_run_until`].
    ///
    /// # Errors
    ///
    /// Propagates [`FlError::FleetBelowQuorum`] from a failed round.
    pub fn try_run_until(&mut self, stop: StopCondition) -> Result<TrainingHistory, FlError> {
        let mut history = TrainingHistory::new();
        let mut reached = false;
        for _ in 0..stop.max_rounds {
            let record = self.try_run_round()?;
            reached = match (stop.target_accuracy, &record.test_eval) {
                (Some(target), Some(eval)) => eval.accuracy >= target,
                _ => false,
            };
            history.push(record);
            if reached {
                break;
            }
        }
        if let (Some(target), false) = (stop.target_accuracy, reached) {
            history.record_missed_target(target);
        }
        Ok(history)
    }
}

impl<M: Model> Drop for ThreadedFedAvg<M> {
    fn drop(&mut self) {
        for tx in &self.to_workers {
            let _ = tx.send(ToWorker::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop<M: Model>(
    id: usize,
    template: M,
    data: &Arc<Dataset>,
    trainer: &LocalTrainer,
    transport: WireConfig,
    rx: &Receiver<ToWorker>,
    result_tx: &Sender<Vec<u8>>,
    stats: &Mutex<TransportStats>,
    grad_pool: Option<&WorkerPool>,
) {
    // Lazily built label-flipped copy, for compromised label-flip clients.
    let mut flipped: Option<Arc<Dataset>> = None;
    // Persistent per-worker hot state, reused across jobs: the model is
    // overwritten by `set_flat` each round, the gradient scratch keeps local
    // epochs allocation-free, and the decode buffer, wire workspace, and
    // payload stage absorb each frame without fresh allocations.
    let mut model = template;
    let mut params: Vec<f64> = Vec::new();
    let mut scratch = GradScratch::new();
    let mut wire = WireScratch::new();
    let mut payload_buf: Vec<u8> = Vec::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Shutdown => break,
            // fei-lint: allow(no-panic, reason = "fault injection: the panic IS the injected fault the supervisor must survive")
            ToWorker::Poison => panic!("injected worker panic (client {id})"),
            ToWorker::Train {
                round,
                epochs,
                frame,
                flip,
            } => {
                let frame_len = frame.len();
                let (wire_round, wire_epochs) = decode_global_into(&frame, &mut params, &mut wire);
                debug_assert_eq!(wire_round, round);
                debug_assert_eq!(wire_epochs, epochs);
                let train_data: &Arc<Dataset> = if flip {
                    flipped.get_or_insert_with(|| Arc::new(flip_dataset_labels(data)))
                } else {
                    data
                };
                model.set_flat(&params);
                let train_stats = match grad_pool {
                    Some(pool) => trainer.train_with_pool(
                        &mut model,
                        train_data,
                        epochs as usize,
                        round as usize,
                        &mut scratch,
                        pool,
                    ),
                    None => trainer.train_with(
                        &mut model,
                        train_data,
                        epochs as usize,
                        round as usize,
                        &mut scratch,
                    ),
                };
                let update = Update {
                    round,
                    client: id,
                    samples: data.len(),
                    params: model.to_flat().to_vec(),
                    initial_loss: train_stats.initial_loss,
                    final_loss: train_stats.final_loss,
                };
                // `params` still holds this round's decoded global model —
                // the bit-exact delta base shared with the coordinator.
                let reply = encode_update(&update, transport, &params, &mut wire, &mut payload_buf);
                {
                    let mut s = stats.lock();
                    s.bytes_down += frame_len as u64;
                    s.bytes_up += reply.len() as u64;
                    s.jobs += 1;
                }
                if result_tx.send(reply).is_err() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use fei_data::{Partition, SyntheticMnist, SyntheticMnistConfig};
    use fei_sim::DetRng;

    use super::*;
    use crate::fedavg::FedAvg;

    fn setup(n_clients: usize, samples: usize) -> (Vec<Dataset>, Dataset) {
        let gen = SyntheticMnist::new(SyntheticMnistConfig {
            pixel_noise_std: 0.2,
            label_flip_prob: 0.0,
            ..Default::default()
        });
        let train = gen.generate(samples, 0);
        let test = gen.generate(samples / 4, 1);
        let parts = Partition::iid(train.len(), n_clients, &mut DetRng::new(7)).apply(&train);
        (parts, test)
    }

    #[test]
    fn threaded_matches_in_process_bit_for_bit() {
        let (clients, test) = setup(5, 150);
        let config = FedAvgConfig {
            clients_per_round: 3,
            local_epochs: 2,
            ..Default::default()
        };
        let mut serial = FedAvg::new(config.clone(), clients.clone(), test.clone());
        let mut threaded = ThreadedFedAvg::new(config, clients, test);
        for _ in 0..4 {
            let a = serial.run_round();
            let b = threaded.run_round();
            assert_eq!(a.selected, b.selected);
            assert_eq!(a.test_eval, b.test_eval);
        }
        assert_eq!(serial.global_model(), threaded.global_model());
    }

    #[test]
    fn threaded_matches_in_process_under_attack_and_defense() {
        use crate::adversary::{AdversarySpec, AttackBehavior};
        use crate::robust::{DefenseConfig, RobustRule};
        let (clients, test) = setup(6, 150);
        for behavior in [
            AttackBehavior::SignFlip,
            AttackBehavior::ScaledUpdate { boost: 20.0 },
            AttackBehavior::GaussianNoise { std_dev: 0.5 },
            AttackBehavior::LabelFlip,
        ] {
            let spec = AdversarySpec {
                fraction: 0.34,
                behavior,
                seed: 11,
            };
            let config = FedAvgConfig {
                clients_per_round: 4,
                local_epochs: 1,
                defense: Some(DefenseConfig::with_rule(RobustRule::TrimmedMean {
                    assumed_byzantine: 1,
                })),
                ..Default::default()
            };
            let mut serial =
                FedAvg::new(config.clone(), clients.clone(), test.clone()).with_adversary(spec);
            let mut threaded =
                ThreadedFedAvg::new(config, clients.clone(), test.clone()).with_adversary(spec);
            for _ in 0..3 {
                let a = serial.run_round();
                let b = threaded.run_round();
                assert_eq!(a.selected, b.selected, "{behavior:?}");
                assert_eq!(a.responded, b.responded, "{behavior:?}");
                assert_eq!(a.outcome, b.outcome, "{behavior:?}");
                assert_eq!(a.faults, b.faults, "{behavior:?}");
                assert_eq!(a.test_eval, b.test_eval, "{behavior:?}");
            }
            assert_eq!(
                serial.global_model(),
                threaded.global_model(),
                "{behavior:?}"
            );
        }
    }

    #[test]
    fn serial_simulated_bytes_match_threaded_measured_bytes() {
        use fei_net::wire::Encoding;
        let (clients, test) = setup(5, 100);
        for encoding in [Encoding::F64, Encoding::F32, Encoding::Q8] {
            for delta in [false, true] {
                let config = FedAvgConfig {
                    clients_per_round: 3,
                    local_epochs: 1,
                    transport: WireConfig { encoding, delta },
                    ..Default::default()
                };
                let mut serial = FedAvg::new(config.clone(), clients.clone(), test.clone());
                let mut threaded = ThreadedFedAvg::new(config, clients.clone(), test.clone());
                for _ in 0..3 {
                    serial.run_round();
                    threaded.run_round();
                }
                assert_eq!(
                    serial.transport_stats(),
                    threaded.transport_stats(),
                    "tier {encoding:?} delta={delta}"
                );
                assert!(serial.transport_stats().bytes_up > 0);
            }
        }
    }

    #[test]
    fn engines_agree_under_every_transport_tier() {
        use fei_net::wire::Encoding;
        let (clients, test) = setup(5, 120);
        for encoding in [Encoding::F64, Encoding::F32, Encoding::Q8] {
            for delta in [false, true] {
                let config = FedAvgConfig {
                    clients_per_round: 3,
                    local_epochs: 2,
                    transport: WireConfig { encoding, delta },
                    ..Default::default()
                };
                let mut serial = FedAvg::new(config.clone(), clients.clone(), test.clone());
                let mut threaded = ThreadedFedAvg::new(config, clients.clone(), test.clone());
                for _ in 0..3 {
                    let a = serial.run_round();
                    let b = threaded.run_round();
                    assert_eq!(a, b, "tier {encoding:?} delta={delta}");
                }
                assert_eq!(
                    serial.global_model(),
                    threaded.global_model(),
                    "tier {encoding:?} delta={delta}"
                );
            }
        }
    }

    #[test]
    fn transport_stats_accumulate() {
        let (clients, test) = setup(4, 80);
        let config = FedAvgConfig {
            clients_per_round: 2,
            local_epochs: 1,
            ..Default::default()
        };
        let mut threaded = ThreadedFedAvg::new(config, clients, test);
        assert_eq!(threaded.transport_stats(), TransportStats::default());
        threaded.run_round();
        threaded.run_round();
        let stats = threaded.transport_stats();
        assert_eq!(stats.jobs, 4);
        // Each direction moved 4 model-sized frames (plus headers).
        let model_bytes = (784 * 10 + 10) * 8;
        assert!(stats.bytes_down >= 4 * model_bytes as u64);
        assert!(stats.bytes_up >= 4 * model_bytes as u64);
    }

    #[test]
    fn run_until_collects_history() {
        let (clients, test) = setup(4, 80);
        let config = FedAvgConfig {
            clients_per_round: 2,
            local_epochs: 1,
            ..Default::default()
        };
        let mut threaded = ThreadedFedAvg::new(config, clients, test);
        let history = threaded.run_until(StopCondition::rounds(3));
        assert_eq!(history.len(), 3);
        assert!(history.last().unwrap().test_eval.is_some());
    }

    #[test]
    fn drop_shuts_workers_down() {
        let (clients, test) = setup(3, 60);
        let config = FedAvgConfig {
            clients_per_round: 1,
            local_epochs: 1,
            ..Default::default()
        };
        let threaded = ThreadedFedAvg::new(config, clients, test);
        drop(threaded); // must not hang or panic
    }

    #[test]
    fn frame_round_trips() {
        let mut wire = WireScratch::new();
        let params = vec![1.5, -2.5, 0.0];
        let frame = encode_global(7, 3, &params, &mut wire);
        assert_eq!(frame.len(), global_frame_len(params.len()));
        let (round, epochs, back) = decode_global(&frame);
        assert_eq!((round, epochs), (7, 3));
        assert_eq!(back, params);

        let update = Update {
            round: 7,
            client: 4,
            samples: 123,
            params: vec![9.0, -1.0],
            initial_loss: 2.5,
            final_loss: 1.25,
        };
        let base = vec![8.75, -1.5];
        let mut payload_buf = Vec::new();
        for transport in [
            WireConfig::lossless(),
            WireConfig {
                encoding: fei_net::wire::Encoding::F64,
                delta: true,
            },
        ] {
            let frame = encode_update(&update, transport, &base, &mut wire, &mut payload_buf);
            assert_eq!(
                frame.len(),
                update_frame_len(transport, update.params.len())
            );
            let decoded = decode_update(&frame, &base, &mut wire);
            assert_eq!(decoded.round, 7);
            assert_eq!(decoded.client, 4);
            assert_eq!(decoded.samples, 123);
            assert_eq!(decoded.params, vec![9.0, -1.0]);
            assert_eq!(decoded.initial_loss, 2.5);
            assert_eq!(decoded.final_loss, 1.25);
        }
    }
}
