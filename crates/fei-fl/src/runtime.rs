//! Threaded FedAvg: one OS thread per edge server.
//!
//! Exercises the full communication path of a real deployment: the
//! coordinator serializes the global model into a byte frame (`fei-net`
//! codec), sends it over a channel to each selected worker, and workers ship
//! their trained models back the same way. Given equal configuration and
//! seed the results are bit-identical to [`crate::FedAvg`] — an invariant the
//! integration tests pin down.

use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::{Buf, BufMut, BytesMut};
use crossbeam::channel::{unbounded, Receiver, Sender};
use fei_data::Dataset;
use fei_ml::{LocalTrainer, LogisticRegression, Model};
use fei_net::codec::{decode_frame, encode_frame};
use parking_lot::Mutex;

use crate::aggregate::aggregate;
use crate::fedavg::{FedAvgConfig, RoundRecord, StopCondition};
use crate::history::TrainingHistory;
use crate::selection::ClientSelector;

/// Frame tag for coordinator → worker global-model dispatch.
const MSG_GLOBAL: u8 = 1;
/// Frame tag for worker → coordinator model upload.
const MSG_UPDATE: u8 = 2;

/// Bytes moved over the wire in both directions, tracked across workers.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportStats {
    /// Bytes of global-model frames received by workers.
    pub bytes_down: u64,
    /// Bytes of update frames sent by workers.
    pub bytes_up: u64,
    /// Number of local-training jobs executed.
    pub jobs: u64,
}

enum ToWorker {
    Train { round: u32, epochs: u32, frame: Vec<u8> },
    Shutdown,
}

struct Update {
    client: usize,
    samples: usize,
    params: Vec<f64>,
    initial_loss: f64,
    final_loss: f64,
}

fn encode_global(round: u32, epochs: u32, params: &[f64]) -> Vec<u8> {
    let mut payload = BytesMut::with_capacity(8 + params.len() * 8);
    payload.put_u32(round);
    payload.put_u32(epochs);
    for &p in params {
        payload.put_f64_le(p);
    }
    encode_frame(MSG_GLOBAL, &payload).to_vec()
}

fn decode_global(frame: &[u8]) -> (u32, u32, Vec<f64>) {
    let (frame, _) = decode_frame(frame).expect("coordinator frames are well-formed");
    assert_eq!(frame.msg_type, MSG_GLOBAL, "expected a global-model frame");
    let mut buf = &frame.payload[..];
    let round = buf.get_u32();
    let epochs = buf.get_u32();
    let mut params = Vec::with_capacity(buf.remaining() / 8);
    while buf.has_remaining() {
        params.push(buf.get_f64_le());
    }
    (round, epochs, params)
}

fn encode_update(update: &Update) -> Vec<u8> {
    let mut payload = BytesMut::with_capacity(24 + update.params.len() * 8);
    payload.put_u32(update.client as u32);
    payload.put_u64(update.samples as u64);
    payload.put_f64_le(update.initial_loss);
    payload.put_f64_le(update.final_loss);
    for &p in &update.params {
        payload.put_f64_le(p);
    }
    encode_frame(MSG_UPDATE, &payload).to_vec()
}

fn decode_update(frame: &[u8]) -> Update {
    let (frame, _) = decode_frame(frame).expect("worker frames are well-formed");
    assert_eq!(frame.msg_type, MSG_UPDATE, "expected an update frame");
    let mut buf = &frame.payload[..];
    let client = buf.get_u32() as usize;
    let samples = buf.get_u64() as usize;
    let initial_loss = buf.get_f64_le();
    let final_loss = buf.get_f64_le();
    let mut params = Vec::with_capacity(buf.remaining() / 8);
    while buf.has_remaining() {
        params.push(buf.get_f64_le());
    }
    Update { client, samples, params, initial_loss, final_loss }
}

/// FedAvg with edge servers running on dedicated threads, generic over the
/// trained [`Model`] (multinomial logistic regression by default).
pub struct ThreadedFedAvg<M: Model = LogisticRegression> {
    config: FedAvgConfig,
    test: Dataset,
    global: M,
    selector: ClientSelector,
    round: usize,
    dropout_rng: fei_sim::DetRng,
    client_sizes: Vec<usize>,
    to_workers: Vec<Sender<ToWorker>>,
    from_workers: Receiver<Vec<u8>>,
    handles: Vec<JoinHandle<()>>,
    stats: Arc<Mutex<TransportStats>>,
    /// Kept so `global_train_loss` can be computed coordinator-side; shared
    /// immutably with worker threads.
    client_data: Vec<Arc<Dataset>>,
}

impl ThreadedFedAvg<LogisticRegression> {
    /// Spawns one worker thread per client dataset, training the paper's
    /// zero-initialized multinomial logistic regression.
    ///
    /// # Panics
    ///
    /// Same validation as [`crate::FedAvg::new`].
    pub fn new(config: FedAvgConfig, clients: Vec<Dataset>, test: Dataset) -> Self {
        assert!(!clients.is_empty(), "need at least one client dataset");
        let global = LogisticRegression::zeros(clients[0].dim(), clients[0].num_classes());
        Self::with_model(config, clients, test, global)
    }
}

impl<M: Model> ThreadedFedAvg<M> {
    /// Spawns one worker thread per client dataset with an explicit initial
    /// global model `ω₀`.
    ///
    /// # Panics
    ///
    /// Same validation as [`crate::FedAvg::with_model`].
    pub fn with_model(config: FedAvgConfig, clients: Vec<Dataset>, test: Dataset, global: M) -> Self {
        assert!(!clients.is_empty(), "need at least one client dataset");
        assert!(
            clients.iter().all(|c| !c.is_empty()),
            "every client needs at least one sample"
        );
        let dim = clients[0].dim();
        let classes = clients[0].num_classes();
        assert!(
            clients.iter().all(|c| c.dim() == dim && c.num_classes() == classes),
            "client datasets must share a shape"
        );
        assert!(config.clients_per_round > 0, "K must be at least 1");
        assert!(
            config.clients_per_round <= clients.len(),
            "K = {} exceeds N = {}",
            config.clients_per_round,
            clients.len()
        );
        assert!(config.local_epochs > 0, "E must be at least 1");
        assert!(config.eval_every > 0, "eval_every must be at least 1");
        assert!(
            (0.0..1.0).contains(&config.dropout_prob),
            "dropout probability must be in [0, 1)"
        );

        assert_eq!(global.dim(), dim, "model dimension mismatch");
        assert_eq!(global.num_classes(), classes, "model class mismatch");
        let selector = ClientSelector::new(config.selection, clients.len(), config.seed);
        let stats = Arc::new(Mutex::new(TransportStats::default()));
        let (result_tx, from_workers) = unbounded::<Vec<u8>>();

        let client_sizes: Vec<usize> = clients.iter().map(Dataset::len).collect();
        let client_data: Vec<Arc<Dataset>> = clients.into_iter().map(Arc::new).collect();
        let mut to_workers = Vec::with_capacity(client_data.len());
        let mut handles = Vec::with_capacity(client_data.len());

        for (id, data) in client_data.iter().enumerate() {
            let (tx, rx) = unbounded::<ToWorker>();
            to_workers.push(tx);
            let data = Arc::clone(data);
            let result_tx = result_tx.clone();
            let trainer = LocalTrainer::new(config.sgd.clone());
            let stats = Arc::clone(&stats);
            let template = global.clone();
            handles.push(std::thread::spawn(move || {
                worker_loop(id, template, &data, &trainer, &rx, &result_tx, &stats);
            }));
        }

        let dropout_rng = fei_sim::DetRng::new(config.seed).fork(0xD80);
        Self {
            config,
            test,
            global,
            selector,
            round: 0,
            dropout_rng,
            client_sizes,
            to_workers,
            from_workers,
            handles,
            stats,
            client_data,
        }
    }

    /// The run's configuration.
    pub fn config(&self) -> &FedAvgConfig {
        &self.config
    }

    /// The current global model.
    pub fn global_model(&self) -> &M {
        &self.global
    }

    /// Cumulative transport statistics across all workers.
    pub fn transport_stats(&self) -> TransportStats {
        *self.stats.lock()
    }

    /// Loss of the current global model over all client data.
    pub fn global_train_loss(&self) -> f64 {
        let total: usize = self.client_sizes.iter().sum();
        let weighted: f64 = self
            .client_data
            .iter()
            .map(|c| self.global.loss(c) * c.len() as f64)
            .sum();
        weighted / total as f64
    }

    /// Executes one global round across the worker threads.
    pub fn run_round(&mut self) -> RoundRecord {
        let t = self.round;
        let selected = self.selector.select(t, self.config.clients_per_round);
        // Dropout is decided coordinator-side (matching the in-process
        // engine's RNG stream) so both engines stay bit-identical.
        let responded: Vec<usize> = selected
            .iter()
            .copied()
            .filter(|_| {
                self.config.dropout_prob == 0.0
                    || self.dropout_rng.next_f64() >= self.config.dropout_prob
            })
            .collect();

        let frame = encode_global(t as u32, self.config.local_epochs as u32, self.global.to_flat());
        for &client in &responded {
            self.to_workers[client]
                .send(ToWorker::Train {
                    round: t as u32,
                    epochs: self.config.local_epochs as u32,
                    frame: frame.clone(),
                })
                .expect("worker thread alive");
        }

        let mut updates: Vec<Update> = (0..responded.len())
            .map(|_| decode_update(&self.from_workers.recv().expect("worker reply")))
            .collect();
        // Restore deterministic order: workers reply in arbitrary order.
        updates.sort_by_key(|u| u.client);

        if !updates.is_empty() {
            let pairs: Vec<(Vec<f64>, usize)> =
                updates.iter().map(|u| (u.params.clone(), u.samples)).collect();
            let merged = aggregate(&pairs, self.config.aggregation);
            self.global.set_flat(&merged);
        }
        self.round += 1;

        let evaluated = self.round.is_multiple_of(self.config.eval_every);
        RoundRecord {
            round: t,
            selected,
            responded,
            local_stats: updates
                .iter()
                .map(|u| fei_ml::TrainStats {
                    epochs_run: self.config.local_epochs,
                    gradient_steps: self.config.local_epochs,
                    initial_loss: u.initial_loss,
                    final_loss: u.final_loss,
                    samples: u.samples,
                })
                .collect(),
            global_train_loss: evaluated.then(|| self.global_train_loss()),
            test_eval: evaluated.then(|| fei_ml::Evaluation::of(&self.global, &self.test)),
        }
    }

    /// Runs rounds until `stop` is satisfied.
    pub fn run_until(&mut self, stop: StopCondition) -> TrainingHistory {
        let mut history = TrainingHistory::new();
        for _ in 0..stop.max_rounds {
            let record = self.run_round();
            let reached = match (stop.target_accuracy, &record.test_eval) {
                (Some(target), Some(eval)) => eval.accuracy >= target,
                _ => false,
            };
            history.push(record);
            if reached {
                break;
            }
        }
        history
    }
}

impl<M: Model> Drop for ThreadedFedAvg<M> {
    fn drop(&mut self) {
        for tx in &self.to_workers {
            let _ = tx.send(ToWorker::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop<M: Model>(
    id: usize,
    template: M,
    data: &Dataset,
    trainer: &LocalTrainer,
    rx: &Receiver<ToWorker>,
    result_tx: &Sender<Vec<u8>>,
    stats: &Mutex<TransportStats>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            ToWorker::Shutdown => break,
            ToWorker::Train { round, epochs, frame } => {
                let frame_len = frame.len();
                let (wire_round, wire_epochs, params) = decode_global(&frame);
                debug_assert_eq!(wire_round, round);
                debug_assert_eq!(wire_epochs, epochs);
                let mut model = template.clone();
                model.set_flat(&params);
                let train_stats = trainer.train(&mut model, data, epochs as usize, round as usize);
                let update = Update {
                    client: id,
                    samples: data.len(),
                    params: model.to_flat().to_vec(),
                    initial_loss: train_stats.initial_loss,
                    final_loss: train_stats.final_loss,
                };
                let reply = encode_update(&update);
                {
                    let mut s = stats.lock();
                    s.bytes_down += frame_len as u64;
                    s.bytes_up += reply.len() as u64;
                    s.jobs += 1;
                }
                if result_tx.send(reply).is_err() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use fei_data::{Partition, SyntheticMnist, SyntheticMnistConfig};
    use fei_sim::DetRng;

    use super::*;
    use crate::fedavg::FedAvg;

    fn setup(n_clients: usize, samples: usize) -> (Vec<Dataset>, Dataset) {
        let gen = SyntheticMnist::new(SyntheticMnistConfig {
            pixel_noise_std: 0.2,
            label_flip_prob: 0.0,
            ..Default::default()
        });
        let train = gen.generate(samples, 0);
        let test = gen.generate(samples / 4, 1);
        let parts = Partition::iid(train.len(), n_clients, &mut DetRng::new(7)).apply(&train);
        (parts, test)
    }

    #[test]
    fn threaded_matches_in_process_bit_for_bit() {
        let (clients, test) = setup(5, 150);
        let config = FedAvgConfig { clients_per_round: 3, local_epochs: 2, ..Default::default() };
        let mut serial = FedAvg::new(config.clone(), clients.clone(), test.clone());
        let mut threaded = ThreadedFedAvg::new(config, clients, test);
        for _ in 0..4 {
            let a = serial.run_round();
            let b = threaded.run_round();
            assert_eq!(a.selected, b.selected);
            assert_eq!(a.test_eval, b.test_eval);
        }
        assert_eq!(serial.global_model(), threaded.global_model());
    }

    #[test]
    fn transport_stats_accumulate() {
        let (clients, test) = setup(4, 80);
        let config = FedAvgConfig { clients_per_round: 2, local_epochs: 1, ..Default::default() };
        let mut threaded = ThreadedFedAvg::new(config, clients, test);
        assert_eq!(threaded.transport_stats(), TransportStats::default());
        threaded.run_round();
        threaded.run_round();
        let stats = threaded.transport_stats();
        assert_eq!(stats.jobs, 4);
        // Each direction moved 4 model-sized frames (plus headers).
        let model_bytes = (784 * 10 + 10) * 8;
        assert!(stats.bytes_down >= 4 * model_bytes as u64);
        assert!(stats.bytes_up >= 4 * model_bytes as u64);
    }

    #[test]
    fn run_until_collects_history() {
        let (clients, test) = setup(4, 80);
        let config = FedAvgConfig { clients_per_round: 2, local_epochs: 1, ..Default::default() };
        let mut threaded = ThreadedFedAvg::new(config, clients, test);
        let history = threaded.run_until(StopCondition::rounds(3));
        assert_eq!(history.len(), 3);
        assert!(history.last().unwrap().test_eval.is_some());
    }

    #[test]
    fn drop_shuts_workers_down() {
        let (clients, test) = setup(3, 60);
        let config = FedAvgConfig { clients_per_round: 1, local_epochs: 1, ..Default::default() };
        let threaded = ThreadedFedAvg::new(config, clients, test);
        drop(threaded); // must not hang or panic
    }

    #[test]
    fn frame_round_trips() {
        let params = vec![1.5, -2.5, 0.0];
        let frame = encode_global(7, 3, &params);
        let (round, epochs, back) = decode_global(&frame);
        assert_eq!((round, epochs), (7, 3));
        assert_eq!(back, params);

        let update = Update {
            client: 4,
            samples: 123,
            params: vec![9.0, -1.0],
            initial_loss: 2.5,
            final_loss: 1.25,
        };
        let decoded = decode_update(&encode_update(&update));
        assert_eq!(decoded.client, 4);
        assert_eq!(decoded.samples, 123);
        assert_eq!(decoded.params, vec![9.0, -1.0]);
        assert_eq!(decoded.initial_loss, 2.5);
        assert_eq!(decoded.final_loss, 1.25);
    }
}
