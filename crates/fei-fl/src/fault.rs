//! Deterministic fault injection for federated rounds.
//!
//! Edge deployments lose devices: batteries die, radios collide, slow nodes
//! miss deadlines. This module provides a seeded [`FaultInjector`] that
//! schedules crashes (with optional restart), stragglers, and dropped or
//! corrupted upload frames, plus the [`RetryPolicy`] (exponential backoff
//! with jitter) the coordinator uses to re-request lost uploads.
//!
//! Every decision is a **pure function of `(device, round)`** under the
//! injector's seed — there is no internal RNG state, so the in-process and
//! threaded engines observe the *same* fault schedule regardless of thread
//! interleaving or call order, and a campaign replays bit-identically from
//! its seed.

use fei_sim::DetRng;
use serde::{Deserialize, Serialize};

/// Stream salts keeping the per-(device, round) draws decorrelated.
const SALT_CRASH: u64 = 0xC4A5;
const SALT_STRAGGLE: u64 = 0x57A6;
const SALT_UPLOAD: u64 = 0x0751;
const SALT_CORRUPT: u64 = 0xC0_44BF;
const SALT_JITTER: u64 = 0x71_77E4;

/// Probabilities and shape of the injected fault mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Per-(device, round) probability that the device crashes at the start
    /// of that round.
    pub crash_prob: f64,
    /// Rounds a crashed device stays down before restarting; `0` means the
    /// crash is permanent.
    pub restart_rounds: usize,
    /// Per-(device, round) probability of running slow this round.
    pub straggler_prob: f64,
    /// Wall-time multiplier (`>= 1`) applied to a straggling device's round.
    pub straggler_factor: f64,
    /// Per-attempt probability that an upload frame is dropped in flight.
    pub upload_loss_prob: f64,
    /// Per-attempt probability that a delivered upload frame arrives
    /// corrupted (fails the codec checksum) and must be retransmitted.
    pub corrupt_prob: f64,
    /// Seed of the fault schedule. Independent of the training seed.
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            crash_prob: 0.0,
            restart_rounds: 1,
            straggler_prob: 0.0,
            straggler_factor: 4.0,
            upload_loss_prob: 0.0,
            corrupt_prob: 0.0,
            seed: 0xFA17,
        }
    }
}

impl FaultSpec {
    /// Whether this spec injects nothing at all.
    pub fn is_noop(&self) -> bool {
        // fei-lint: allow(float-eq, reason = "configuration sentinel: only an exactly-zero probability disables injection")
        self.crash_prob == 0.0
            // fei-lint: allow(float-eq, reason = "configuration sentinel: only an exactly-zero probability disables injection")
            && self.straggler_prob == 0.0
            // fei-lint: allow(float-eq, reason = "configuration sentinel: only an exactly-zero probability disables injection")
            && self.upload_loss_prob == 0.0
            // fei-lint: allow(float-eq, reason = "configuration sentinel: only an exactly-zero probability disables injection")
            && self.corrupt_prob == 0.0
    }

    fn validate(&self) {
        for (name, p) in [
            ("crash_prob", self.crash_prob),
            ("straggler_prob", self.straggler_prob),
            ("upload_loss_prob", self.upload_loss_prob),
            ("corrupt_prob", self.corrupt_prob),
        ] {
            assert!((0.0..1.0).contains(&p), "{name} must be in [0, 1), got {p}");
        }
        assert!(
            self.straggler_factor >= 1.0,
            "straggler_factor must be >= 1, got {}",
            self.straggler_factor
        );
    }
}

/// Bounded retry with exponential backoff and deterministic jitter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum upload attempts per round (first try included). Must be at
    /// least 1.
    pub max_attempts: usize,
    /// Backoff before the first retry, seconds.
    pub base_delay_s: f64,
    /// Backoff growth factor per retry.
    pub multiplier: f64,
    /// Backoff ceiling, seconds.
    pub max_delay_s: f64,
    /// Fractional jitter: each delay is scaled by a factor drawn uniformly
    /// from `[1 - jitter, 1 + jitter]`.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay_s: 0.05,
            multiplier: 2.0,
            max_delay_s: 2.0,
            jitter: 0.1,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based), without jitter.
    pub fn nominal_delay_s(&self, retry: usize) -> f64 {
        debug_assert!(retry >= 1);
        (self.base_delay_s * self.multiplier.powi(retry as i32 - 1)).min(self.max_delay_s)
    }

    /// Backoff before retry number `retry` with jitter drawn from `rng`.
    pub fn delay_s(&self, retry: usize, rng: &mut DetRng) -> f64 {
        let jitter = 1.0 + self.jitter * (2.0 * rng.next_f64() - 1.0);
        self.nominal_delay_s(retry) * jitter
    }

    fn validate(&self) {
        assert!(self.max_attempts >= 1, "max_attempts must be at least 1");
        assert!(
            self.base_delay_s >= 0.0,
            "base_delay_s must be non-negative"
        );
        assert!(self.multiplier >= 1.0, "multiplier must be >= 1");
        assert!(
            self.max_delay_s >= self.base_delay_s,
            "max_delay_s below base_delay_s"
        );
        assert!(
            (0.0..=1.0).contains(&self.jitter),
            "jitter must be in [0, 1]"
        );
    }
}

/// How one device's upload went this round, under the retry policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UploadOutcome {
    /// Attempts made (1 = clean first try).
    pub attempts: usize,
    /// Whether an intact frame eventually got through.
    pub delivered: bool,
    /// Attempts that arrived but failed the checksum.
    pub corrupted: usize,
    /// Attempts lost in flight.
    pub lost: usize,
    /// Total backoff waited across retries, virtual seconds.
    pub backoff_s: f64,
}

/// Seeded, stateless fault oracle.
///
/// Construct once per campaign; query per `(device, round)`. Identical
/// seeds yield identical schedules on every engine and every run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultInjector {
    spec: FaultSpec,
}

impl FaultInjector {
    /// Builds an injector from a validated spec.
    ///
    /// # Panics
    ///
    /// Panics if any probability is outside `[0, 1)` or
    /// `straggler_factor < 1`.
    pub fn new(spec: FaultSpec) -> Self {
        spec.validate();
        Self { spec }
    }

    /// The spec this injector was built from.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Whether the injector can ever perturb a round.
    pub fn is_enabled(&self) -> bool {
        !self.spec.is_noop()
    }

    /// A decorrelated RNG for one `(device, round, stream)` cell. Stateless:
    /// the same cell always yields the same stream.
    fn cell_rng(&self, device: usize, round: usize, salt: u64) -> DetRng {
        let mix = (device as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((round as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(salt.wrapping_mul(0x94D0_49BB_1331_11EB));
        DetRng::new(self.spec.seed ^ mix)
    }

    /// Whether `device` crashes at the start of `round` (the onset draw, not
    /// the down state — see [`FaultInjector::is_down`]).
    pub fn crashes_at(&self, device: usize, round: usize) -> bool {
        self.spec.crash_prob > 0.0
            && self.cell_rng(device, round, SALT_CRASH).next_f64() < self.spec.crash_prob
    }

    /// Whether `device` is down (crashed and not yet restarted) at `round`.
    pub fn is_down(&self, device: usize, round: usize) -> bool {
        // fei-lint: allow(float-eq, reason = "configuration sentinel: exactly-zero crash probability means no crash schedule exists")
        if self.spec.crash_prob == 0.0 {
            return false;
        }
        let horizon = if self.spec.restart_rounds == 0 {
            0 // permanent crashes: scan the whole past
        } else {
            round.saturating_sub(self.spec.restart_rounds - 1)
        };
        (horizon..=round).any(|r| self.crashes_at(device, r))
    }

    /// Devices of `0..n` that are up at `round`, ascending.
    pub fn live_fleet(&self, n: usize, round: usize) -> Vec<usize> {
        (0..n).filter(|&d| !self.is_down(d, round)).collect()
    }

    /// Wall-time multiplier for `device` at `round` (`1.0` = on time).
    pub fn straggle_factor(&self, device: usize, round: usize) -> f64 {
        if self.spec.straggler_prob > 0.0
            && self.cell_rng(device, round, SALT_STRAGGLE).next_f64() < self.spec.straggler_prob
        {
            self.spec.straggler_factor
        } else {
            1.0
        }
    }

    /// Plays out the upload of `device` at `round` under `retry`: each
    /// attempt is independently lost or corrupted per the spec, and failed
    /// attempts back off per the policy.
    ///
    /// # Panics
    ///
    /// Panics on an invalid retry policy.
    pub fn upload_outcome(
        &self,
        device: usize,
        round: usize,
        retry: &RetryPolicy,
    ) -> UploadOutcome {
        retry.validate();
        let mut loss_rng = self.cell_rng(device, round, SALT_UPLOAD);
        let mut corrupt_rng = self.cell_rng(device, round, SALT_CORRUPT);
        let mut jitter_rng = self.cell_rng(device, round, SALT_JITTER);
        let mut outcome = UploadOutcome {
            attempts: 0,
            delivered: false,
            corrupted: 0,
            lost: 0,
            backoff_s: 0.0,
        };
        while outcome.attempts < retry.max_attempts {
            outcome.attempts += 1;
            let lost = self.spec.upload_loss_prob > 0.0
                && loss_rng.next_f64() < self.spec.upload_loss_prob;
            let corrupted = !lost
                && self.spec.corrupt_prob > 0.0
                && corrupt_rng.next_f64() < self.spec.corrupt_prob;
            if lost {
                outcome.lost += 1;
            } else if corrupted {
                outcome.corrupted += 1;
            } else {
                outcome.delivered = true;
                return outcome;
            }
            if outcome.attempts < retry.max_attempts {
                outcome.backoff_s += retry.delay_s(outcome.attempts, &mut jitter_rng);
            }
        }
        outcome
    }

    /// Virtual arrival time of `device`'s update at `round`: the nominal
    /// round duration scaled by the straggle factor, plus retry backoff.
    /// `None` when the upload was abandoned after exhausting its attempts.
    pub fn arrival_time_s(
        &self,
        device: usize,
        round: usize,
        nominal_round_s: f64,
        retry: &RetryPolicy,
    ) -> Option<f64> {
        let upload = self.upload_outcome(device, round, retry);
        upload
            .delivered
            .then(|| nominal_round_s * self.straggle_factor(device, round) + upload.backoff_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(crash: f64, restart: usize) -> FaultSpec {
        FaultSpec {
            crash_prob: crash,
            restart_rounds: restart,
            ..Default::default()
        }
    }

    #[test]
    fn noop_spec_injects_nothing() {
        let inj = FaultInjector::new(FaultSpec::default());
        assert!(!inj.is_enabled());
        for d in 0..10 {
            for t in 0..10 {
                assert!(!inj.is_down(d, t));
                assert_eq!(inj.straggle_factor(d, t), 1.0);
                let up = inj.upload_outcome(d, t, &RetryPolicy::default());
                assert!(up.delivered);
                assert_eq!(up.attempts, 1);
                assert_eq!(up.backoff_s, 0.0);
            }
        }
        assert_eq!(inj.live_fleet(5, 3), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn decisions_are_pure_functions_of_device_and_round() {
        let mk = || {
            FaultInjector::new(FaultSpec {
                crash_prob: 0.2,
                straggler_prob: 0.3,
                upload_loss_prob: 0.25,
                corrupt_prob: 0.1,
                seed: 99,
                ..Default::default()
            })
        };
        let (a, b) = (mk(), mk());
        let retry = RetryPolicy::default();
        // Query b in a scrambled order: results must still match a's.
        for d in (0..8).rev() {
            for t in 0..8 {
                assert_eq!(a.is_down(d, t), b.is_down(d, t));
                assert_eq!(a.straggle_factor(d, t), b.straggle_factor(d, t));
                assert_eq!(
                    a.upload_outcome(d, t, &retry),
                    b.upload_outcome(d, t, &retry)
                );
            }
        }
    }

    #[test]
    fn crash_and_restart_window() {
        let inj = FaultInjector::new(spec(0.3, 2));
        let crash_round = (0..100)
            .find(|&t| inj.crashes_at(3, t))
            .expect("30% crash rate must fire within 100 rounds");
        assert!(inj.is_down(3, crash_round));
        assert!(
            inj.is_down(3, crash_round + 1),
            "down for restart_rounds = 2"
        );
        // After the window the device is back unless it crashed again.
        if !inj.crashes_at(3, crash_round + 1) && !inj.crashes_at(3, crash_round + 2) {
            assert!(!inj.is_down(3, crash_round + 2));
        }
    }

    #[test]
    fn permanent_crash_never_restarts() {
        let inj = FaultInjector::new(spec(0.5, 0));
        let crash_round = (0..100)
            .find(|&t| inj.crashes_at(5, t))
            .expect("must crash");
        for t in crash_round..crash_round + 50 {
            assert!(
                inj.is_down(5, t),
                "permanent crash must persist at round {t}"
            );
        }
    }

    #[test]
    fn live_fleet_shrinks_under_permanent_crashes() {
        let inj = FaultInjector::new(spec(0.2, 0));
        let early = inj.live_fleet(20, 0).len();
        let late = inj.live_fleet(20, 40).len();
        assert!(late < early, "fleet must decay: {early} -> {late}");
    }

    #[test]
    fn upload_retries_are_bounded_and_backoff_grows() {
        let inj = FaultInjector::new(FaultSpec {
            upload_loss_prob: 0.9,
            ..Default::default()
        });
        let retry = RetryPolicy {
            max_attempts: 4,
            jitter: 0.0,
            ..Default::default()
        };
        let mut abandoned = 0;
        for d in 0..50 {
            let up = inj.upload_outcome(d, 0, &retry);
            assert!(up.attempts <= 4);
            assert_eq!(
                up.lost + up.corrupted + usize::from(up.delivered),
                up.attempts
            );
            if !up.delivered {
                abandoned += 1;
                assert_eq!(up.attempts, 4);
                // Three retries at 0.05 * (1, 2, 4) with no jitter.
                assert!(
                    (up.backoff_s - 0.35).abs() < 1e-12,
                    "backoff {}",
                    up.backoff_s
                );
            }
        }
        assert!(
            abandoned > 0,
            "90% loss with 4 attempts must abandon someone"
        );
    }

    #[test]
    fn backoff_is_capped_and_jittered_deterministically() {
        let retry = RetryPolicy {
            base_delay_s: 1.0,
            multiplier: 10.0,
            max_delay_s: 3.0,
            jitter: 0.5,
            ..Default::default()
        };
        assert_eq!(retry.nominal_delay_s(1), 1.0);
        assert_eq!(retry.nominal_delay_s(2), 3.0, "capped");
        let mut r1 = DetRng::new(4);
        let mut r2 = DetRng::new(4);
        assert_eq!(retry.delay_s(2, &mut r1), retry.delay_s(2, &mut r2));
        let mut rng = DetRng::new(5);
        for retry_no in 1..=5 {
            let d = retry.delay_s(retry_no, &mut rng);
            let nominal = retry.nominal_delay_s(retry_no);
            assert!(d >= nominal * 0.5 && d <= nominal * 1.5);
        }
    }

    #[test]
    fn arrival_time_reflects_straggling() {
        let inj = FaultInjector::new(FaultSpec {
            straggler_prob: 0.999,
            straggler_factor: 5.0,
            ..Default::default()
        });
        let t = inj
            .arrival_time_s(0, 0, 2.0, &RetryPolicy::default())
            .expect("nothing blocks delivery");
        assert!(
            (t - 10.0).abs() < 1e-12,
            "5x straggle of a 2 s round, got {t}"
        );
    }

    #[test]
    fn corrupt_frames_consume_attempts() {
        let inj = FaultInjector::new(FaultSpec {
            corrupt_prob: 0.99,
            ..Default::default()
        });
        let retry = RetryPolicy {
            max_attempts: 3,
            ..Default::default()
        };
        let up = inj.upload_outcome(1, 1, &retry);
        assert!(!up.delivered);
        assert_eq!(up.corrupted, 3);
        assert_eq!(up.lost, 0);
    }

    #[test]
    #[should_panic(expected = "crash_prob")]
    fn rejects_certain_crash() {
        let _ = FaultInjector::new(FaultSpec {
            crash_prob: 1.0,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "straggler_factor")]
    fn rejects_speedup_factor() {
        let _ = FaultInjector::new(FaultSpec {
            straggler_factor: 0.5,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "max_attempts")]
    fn rejects_zero_attempt_retry() {
        let inj = FaultInjector::new(FaultSpec::default());
        let retry = RetryPolicy {
            max_attempts: 0,
            ..Default::default()
        };
        let _ = inj.upload_outcome(0, 0, &retry);
    }
}
