//! Engine resume hooks for coordinator crash recovery.
//!
//! When the protocol coordinator restarts from its journal
//! (`fei_proto::Coordinator::recover`), the driver also has to put the
//! *training* engine back where it was: same global model, same round
//! counter, same selection and dropout RNG streams, same transport
//! totals. An [`EngineCheckpoint`] captures exactly that state, and both
//! execution engines can restore from it — a checkpoint taken from the
//! serial [`crate::FedAvg`] resumes a [`crate::ThreadedFedAvg`] (and vice
//! versa) with bit-identical future rounds, because the two engines share
//! every deterministic component the checkpoint carries.
//!
//! The checkpoint deliberately excludes anything derivable from the
//! engine's construction inputs (datasets, fault schedules, adversary
//! specs): those are config, not state, and the driver rebuilding an
//! engine after a crash already has them.

use fei_ml::{LogisticRegression, Model};
use fei_sim::DetRng;

use crate::runtime::TransportStats;
use crate::selection::ClientSelector;

/// Resumable state of a FedAvg engine, generic over the trained model.
///
/// Produced by `FedAvg::checkpoint` / `ThreadedFedAvg::checkpoint`;
/// consumed by the corresponding `restore` methods. Checkpoints are
/// engine-agnostic: serial and threaded engines restore from the same
/// checkpoint to the same future behavior.
#[derive(Debug, Clone)]
pub struct EngineCheckpoint<M: Model = LogisticRegression> {
    /// Rounds completed when the checkpoint was taken.
    pub(crate) round: usize,
    /// The global model at that point.
    pub(crate) global: M,
    /// Selection stream, mid-sequence.
    pub(crate) selector: ClientSelector,
    /// Dropout stream, mid-sequence.
    pub(crate) dropout_rng: DetRng,
    /// Transport totals accumulated so far.
    pub(crate) transport: TransportStats,
    /// `K` at checkpoint time (it may have been re-planned mid-run).
    pub(crate) clients_per_round: usize,
    /// `E` at checkpoint time.
    pub(crate) local_epochs: usize,
}

impl<M: Model> EngineCheckpoint<M> {
    /// Rounds completed when the checkpoint was taken.
    pub fn round(&self) -> usize {
        self.round
    }

    /// The checkpointed global model.
    pub fn global_model(&self) -> &M {
        &self.global
    }

    /// `(K, E)` at checkpoint time.
    pub fn participation(&self) -> (usize, usize) {
        (self.clients_per_round, self.local_epochs)
    }

    /// Transport totals at checkpoint time.
    pub fn transport_stats(&self) -> TransportStats {
        self.transport
    }
}
