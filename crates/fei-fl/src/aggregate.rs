//! Model aggregation (Eq. 2).

use std::fmt;

use serde::{Deserialize, Serialize};

/// How uploaded local models are combined into the next global model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AggregationRule {
    /// Unweighted mean `ω ← (1/|𝒦_t|) Σ ω_k` — the paper's Eq. 2, exact for
    /// its uniform 3 000-samples-per-server split.
    #[default]
    Uniform,
    /// Sample-count-weighted mean — the general FedAvg rule, needed for
    /// non-IID/unequal splits.
    WeightedBySamples,
}

/// Why an update set could not be aggregated.
///
/// These are the malformed-input conditions [`aggregate`] used to `panic!`
/// on; [`try_aggregate`] and the robust rules report them as values so the
/// coordinator's round loop can waste the round instead of crashing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggregateError {
    /// The update set is empty — there is nothing to combine.
    EmptyUpdateSet,
    /// An update's parameter vector does not match the expected dimension.
    DimensionMismatch {
        /// Dimension of the first (reference) update.
        expected: usize,
        /// Dimension of the offending update.
        got: usize,
        /// Index of the offending update within the set.
        index: usize,
    },
    /// Every sample count is zero under
    /// [`AggregationRule::WeightedBySamples`], leaving the weights
    /// undefined.
    ZeroTotalWeight,
}

impl fmt::Display for AggregateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::EmptyUpdateSet => write!(f, "cannot aggregate zero updates"),
            Self::DimensionMismatch {
                expected,
                got,
                index,
            } => write!(
                f,
                "update {index} has {got} parameters, expected {expected}: \
                 all updates must have equal parameter counts"
            ),
            Self::ZeroTotalWeight => {
                write!(f, "weighted aggregation needs at least one sample")
            }
        }
    }
}

impl std::error::Error for AggregateError {}

/// Checks that every update has `expected` parameters.
pub(crate) fn check_dims(
    updates: &[(Vec<f64>, usize)],
    expected: usize,
) -> Result<(), AggregateError> {
    for (index, (params, _)) in updates.iter().enumerate() {
        if params.len() != expected {
            return Err(AggregateError::DimensionMismatch {
                expected,
                got: params.len(),
                index,
            });
        }
    }
    Ok(())
}

/// Uniform mean of `updates`, accumulating in list order. Kept as the single
/// accumulation loop shared by plain aggregation and the robust rules'
/// zero-budget fallback so both paths are bit-identical.
pub(crate) fn uniform_mean(updates: &[(Vec<f64>, usize)], dim: usize) -> Vec<f64> {
    let mut out = vec![0.0; dim];
    let w = 1.0 / updates.len() as f64;
    for (params, _) in updates {
        for (o, &p) in out.iter_mut().zip(params) {
            *o += w * p;
        }
    }
    out
}

/// Aggregates flat parameter vectors under `rule`, reporting malformed
/// inputs as a typed [`AggregateError`] instead of panicking. Each update is
/// a `(parameters, sample_count)` pair.
///
/// # Errors
///
/// * [`AggregateError::EmptyUpdateSet`] — `updates` is empty;
/// * [`AggregateError::DimensionMismatch`] — unequal parameter counts;
/// * [`AggregateError::ZeroTotalWeight`] — all sample counts are zero under
///   [`AggregationRule::WeightedBySamples`].
pub fn try_aggregate(
    updates: &[(Vec<f64>, usize)],
    rule: AggregationRule,
) -> Result<Vec<f64>, AggregateError> {
    if updates.is_empty() {
        return Err(AggregateError::EmptyUpdateSet);
    }
    let dim = updates[0].0.len();
    check_dims(updates, dim)?;

    match rule {
        AggregationRule::Uniform => Ok(uniform_mean(updates, dim)),
        AggregationRule::WeightedBySamples => {
            let total: usize = updates.iter().map(|(_, n)| n).sum();
            if total == 0 {
                return Err(AggregateError::ZeroTotalWeight);
            }
            let mut out = vec![0.0; dim];
            for (params, n) in updates {
                let w = *n as f64 / total as f64;
                for (o, &p) in out.iter_mut().zip(params) {
                    *o += w * p;
                }
            }
            Ok(out)
        }
    }
}

/// Aggregates flat parameter vectors under `rule`. Each update is a
/// `(parameters, sample_count)` pair.
///
/// # Panics
///
/// Panics if `updates` is empty, the parameter vectors have unequal lengths,
/// or (for [`AggregationRule::WeightedBySamples`]) all sample counts are
/// zero. [`try_aggregate`] reports the same conditions as a typed error.
///
/// # Example
///
/// ```
/// use fei_fl::{aggregate, AggregationRule};
///
/// let a = (vec![1.0, 2.0], 10);
/// let b = (vec![3.0, 4.0], 30);
/// assert_eq!(aggregate(&[a.clone(), b.clone()], AggregationRule::Uniform), vec![2.0, 3.0]);
/// assert_eq!(
///     aggregate(&[a, b], AggregationRule::WeightedBySamples),
///     vec![2.5, 3.5]
/// );
/// ```
pub fn aggregate(updates: &[(Vec<f64>, usize)], rule: AggregationRule) -> Vec<f64> {
    match try_aggregate(updates, rule) {
        Ok(out) => out,
        // fei-lint: allow(no-panic, reason = "documented panicking wrapper kept for API compatibility; fallible callers use try_aggregate")
        Err(err) => panic!("{err}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_update_is_identity() {
        let u = vec![(vec![1.0, -2.0, 3.0], 5)];
        assert_eq!(
            aggregate(&u, AggregationRule::Uniform),
            vec![1.0, -2.0, 3.0]
        );
        assert_eq!(
            aggregate(&u, AggregationRule::WeightedBySamples),
            vec![1.0, -2.0, 3.0]
        );
    }

    #[test]
    fn uniform_ignores_sample_counts() {
        let u = vec![(vec![0.0], 1), (vec![10.0], 1_000_000)];
        assert_eq!(aggregate(&u, AggregationRule::Uniform), vec![5.0]);
    }

    #[test]
    fn weighted_respects_sample_counts() {
        let u = vec![(vec![0.0], 1), (vec![10.0], 3)];
        assert_eq!(aggregate(&u, AggregationRule::WeightedBySamples), vec![7.5]);
    }

    #[test]
    fn rules_agree_on_equal_counts() {
        let u = vec![(vec![1.0, 4.0], 7), (vec![3.0, 8.0], 7)];
        assert_eq!(
            aggregate(&u, AggregationRule::Uniform),
            aggregate(&u, AggregationRule::WeightedBySamples)
        );
    }

    #[test]
    #[should_panic(expected = "zero updates")]
    fn rejects_empty() {
        let _ = aggregate(&[], AggregationRule::Uniform);
    }

    #[test]
    #[should_panic(expected = "equal parameter counts")]
    fn rejects_ragged() {
        let _ = aggregate(
            &[(vec![1.0], 1), (vec![1.0, 2.0], 1)],
            AggregationRule::Uniform,
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn weighted_rejects_all_zero_counts() {
        let _ = aggregate(
            &[(vec![1.0], 0), (vec![2.0], 0)],
            AggregationRule::WeightedBySamples,
        );
    }

    #[test]
    fn try_aggregate_reports_typed_errors() {
        assert_eq!(
            try_aggregate(&[], AggregationRule::Uniform),
            Err(AggregateError::EmptyUpdateSet)
        );
        assert_eq!(
            try_aggregate(
                &[(vec![1.0], 1), (vec![1.0, 2.0], 1)],
                AggregationRule::Uniform
            ),
            Err(AggregateError::DimensionMismatch {
                expected: 1,
                got: 2,
                index: 1
            })
        );
        assert_eq!(
            try_aggregate(
                &[(vec![1.0], 0), (vec![2.0], 0)],
                AggregationRule::WeightedBySamples
            ),
            Err(AggregateError::ZeroTotalWeight)
        );
    }

    #[test]
    fn aggregate_error_display_names_the_condition() {
        assert!(AggregateError::EmptyUpdateSet
            .to_string()
            .contains("zero updates"));
        let mismatch = AggregateError::DimensionMismatch {
            expected: 3,
            got: 2,
            index: 1,
        };
        let msg = mismatch.to_string();
        assert!(msg.contains("update 1"), "{msg}");
        assert!(msg.contains("equal parameter counts"), "{msg}");
        assert!(AggregateError::ZeroTotalWeight
            .to_string()
            .contains("at least one sample"));
    }

    #[test]
    fn weighted_ignores_zero_sample_clients_in_nonzero_total_set() {
        // Zero-sample clients contribute weight 0 but must not poison the
        // result or the total; the survivors split the mass.
        let u = vec![
            (vec![100.0, -100.0], 0),
            (vec![0.0, 4.0], 1),
            (vec![10.0, 8.0], 3),
            (vec![-7.0, 2.0], 0),
        ];
        let merged = try_aggregate(&u, AggregationRule::WeightedBySamples).unwrap();
        assert_eq!(merged, vec![7.5, 7.0]);
        // And matches the same set with the zero-sample clients removed.
        let survivors = vec![(vec![0.0, 4.0], 1), (vec![10.0, 8.0], 3)];
        let reference = try_aggregate(&survivors, AggregationRule::WeightedBySamples).unwrap();
        for (a, b) in merged.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// The aggregate always lies inside the element-wise envelope of the
        /// updates (convex-combination property).
        #[test]
        fn aggregate_is_convex_combination(
            updates in proptest::collection::vec(
                (proptest::collection::vec(-100.0f64..100.0, 4), 1usize..100),
                1..10,
            ),
        ) {
            for rule in [AggregationRule::Uniform, AggregationRule::WeightedBySamples] {
                let agg = aggregate(&updates, rule);
                for j in 0..4 {
                    let lo = updates.iter().map(|(p, _)| p[j]).fold(f64::INFINITY, f64::min);
                    let hi = updates.iter().map(|(p, _)| p[j]).fold(f64::NEG_INFINITY, f64::max);
                    prop_assert!(agg[j] >= lo - 1e-9 && agg[j] <= hi + 1e-9);
                }
            }
        }

        /// Aggregation is permutation-invariant over the update list, for
        /// both rules (up to float-summation reordering error).
        #[test]
        fn aggregation_is_permutation_invariant(
            updates in proptest::collection::vec(
                (proptest::collection::vec(-10.0f64..10.0, 3), 0usize..10),
                2..8,
            ),
            seed in 0u64..1_000,
        ) {
            // Deterministic shuffle of the update list.
            let mut shuffled = updates.clone();
            fei_sim::DetRng::new(seed).shuffle(&mut shuffled);
            for rule in [AggregationRule::Uniform, AggregationRule::WeightedBySamples] {
                // Zero-sample-only sets are a typed error for the weighted
                // rule; everything else must be order-independent.
                let (a, b) = (try_aggregate(&updates, rule), try_aggregate(&shuffled, rule));
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        for (x, y) in a.iter().zip(&b) {
                            prop_assert!((x - y).abs() < 1e-9);
                        }
                    }
                    (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
                    (a, b) => prop_assert!(false, "order changed outcome: {:?} vs {:?}", a, b),
                }
            }
        }
    }
}
