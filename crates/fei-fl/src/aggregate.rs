//! Model aggregation (Eq. 2).

use serde::{Deserialize, Serialize};

/// How uploaded local models are combined into the next global model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AggregationRule {
    /// Unweighted mean `ω ← (1/|𝒦_t|) Σ ω_k` — the paper's Eq. 2, exact for
    /// its uniform 3 000-samples-per-server split.
    #[default]
    Uniform,
    /// Sample-count-weighted mean — the general FedAvg rule, needed for
    /// non-IID/unequal splits.
    WeightedBySamples,
}

/// Aggregates flat parameter vectors under `rule`. Each update is a
/// `(parameters, sample_count)` pair.
///
/// # Panics
///
/// Panics if `updates` is empty, the parameter vectors have unequal lengths,
/// or (for [`AggregationRule::WeightedBySamples`]) all sample counts are
/// zero.
///
/// # Example
///
/// ```
/// use fei_fl::{aggregate, AggregationRule};
///
/// let a = (vec![1.0, 2.0], 10);
/// let b = (vec![3.0, 4.0], 30);
/// assert_eq!(aggregate(&[a.clone(), b.clone()], AggregationRule::Uniform), vec![2.0, 3.0]);
/// assert_eq!(
///     aggregate(&[a, b], AggregationRule::WeightedBySamples),
///     vec![2.5, 3.5]
/// );
/// ```
pub fn aggregate(updates: &[(Vec<f64>, usize)], rule: AggregationRule) -> Vec<f64> {
    assert!(!updates.is_empty(), "cannot aggregate zero updates");
    let dim = updates[0].0.len();
    assert!(
        updates.iter().all(|(p, _)| p.len() == dim),
        "all updates must have equal parameter counts"
    );

    let mut out = vec![0.0; dim];
    match rule {
        AggregationRule::Uniform => {
            let w = 1.0 / updates.len() as f64;
            for (params, _) in updates {
                for (o, &p) in out.iter_mut().zip(params) {
                    *o += w * p;
                }
            }
        }
        AggregationRule::WeightedBySamples => {
            let total: usize = updates.iter().map(|(_, n)| n).sum();
            assert!(total > 0, "weighted aggregation needs at least one sample");
            for (params, n) in updates {
                let w = *n as f64 / total as f64;
                for (o, &p) in out.iter_mut().zip(params) {
                    *o += w * p;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_update_is_identity() {
        let u = vec![(vec![1.0, -2.0, 3.0], 5)];
        assert_eq!(
            aggregate(&u, AggregationRule::Uniform),
            vec![1.0, -2.0, 3.0]
        );
        assert_eq!(
            aggregate(&u, AggregationRule::WeightedBySamples),
            vec![1.0, -2.0, 3.0]
        );
    }

    #[test]
    fn uniform_ignores_sample_counts() {
        let u = vec![(vec![0.0], 1), (vec![10.0], 1_000_000)];
        assert_eq!(aggregate(&u, AggregationRule::Uniform), vec![5.0]);
    }

    #[test]
    fn weighted_respects_sample_counts() {
        let u = vec![(vec![0.0], 1), (vec![10.0], 3)];
        assert_eq!(aggregate(&u, AggregationRule::WeightedBySamples), vec![7.5]);
    }

    #[test]
    fn rules_agree_on_equal_counts() {
        let u = vec![(vec![1.0, 4.0], 7), (vec![3.0, 8.0], 7)];
        assert_eq!(
            aggregate(&u, AggregationRule::Uniform),
            aggregate(&u, AggregationRule::WeightedBySamples)
        );
    }

    #[test]
    #[should_panic(expected = "zero updates")]
    fn rejects_empty() {
        let _ = aggregate(&[], AggregationRule::Uniform);
    }

    #[test]
    #[should_panic(expected = "equal parameter counts")]
    fn rejects_ragged() {
        let _ = aggregate(
            &[(vec![1.0], 1), (vec![1.0, 2.0], 1)],
            AggregationRule::Uniform,
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn weighted_rejects_all_zero_counts() {
        let _ = aggregate(
            &[(vec![1.0], 0), (vec![2.0], 0)],
            AggregationRule::WeightedBySamples,
        );
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// The aggregate always lies inside the element-wise envelope of the
        /// updates (convex-combination property).
        #[test]
        fn aggregate_is_convex_combination(
            updates in proptest::collection::vec(
                (proptest::collection::vec(-100.0f64..100.0, 4), 1usize..100),
                1..10,
            ),
        ) {
            for rule in [AggregationRule::Uniform, AggregationRule::WeightedBySamples] {
                let agg = aggregate(&updates, rule);
                for j in 0..4 {
                    let lo = updates.iter().map(|(p, _)| p[j]).fold(f64::INFINITY, f64::min);
                    let hi = updates.iter().map(|(p, _)| p[j]).fold(f64::NEG_INFINITY, f64::max);
                    prop_assert!(agg[j] >= lo - 1e-9 && agg[j] <= hi + 1e-9);
                }
            }
        }

        /// Uniform aggregation is permutation-invariant.
        #[test]
        fn uniform_is_permutation_invariant(
            mut updates in proptest::collection::vec(
                (proptest::collection::vec(-10.0f64..10.0, 3), 1usize..10),
                2..8,
            ),
        ) {
            let a = aggregate(&updates, AggregationRule::Uniform);
            updates.reverse();
            let b = aggregate(&updates, AggregationRule::Uniform);
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-9);
            }
        }
    }
}
