//! The in-process FedAvg engine.

use std::sync::Arc;

use fei_data::Dataset;
use fei_ml::{
    Evaluation, GradReduction, GradScratch, LocalTrainer, LogisticRegression, Model, SgdConfig,
    TrainStats, WorkerPool,
};
use fei_net::wire::{WireConfig, WireScratch};
use fei_proto::{control_round_bytes, DeviceReport, RoundMachine, RoundPolicy};
use fei_sim::DetRng;
use serde::{Deserialize, Serialize};

use crate::adversary::{flip_dataset_labels, Adversary, AdversarySpec};
use crate::aggregate::{try_aggregate, AggregationRule};
use crate::error::FlError;
use crate::fault::{FaultInjector, RetryPolicy};
use crate::history::TrainingHistory;
use crate::resume::EngineCheckpoint;
use crate::robust::{robust_aggregate, DefenseConfig, UpdateScreen};
use crate::runtime::{global_frame_len, update_frame_len, TransportStats};
use crate::selection::{ClientSelector, SelectionStrategy};

/// Configuration of a FedAvg run — the knobs of the paper's §III-A loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedAvgConfig {
    /// `K`: edge servers selected per global round.
    pub clients_per_round: usize,
    /// `E`: local SGD epochs per selected server per round.
    pub local_epochs: usize,
    /// Local optimizer settings (Table II defaults).
    pub sgd: SgdConfig,
    /// How participants are chosen each round.
    pub selection: SelectionStrategy,
    /// How uploads are combined (Eq. 2 uniform by default).
    pub aggregation: AggregationRule,
    /// Evaluate the global model every this many rounds (1 = every round).
    pub eval_every: usize,
    /// Probability that a selected server fails to deliver its update this
    /// round (crash, radio loss). The coordinator aggregates the survivors;
    /// a round in which everyone drops leaves the global model unchanged.
    pub dropout_prob: f64,
    /// Coordinator-side tolerance knobs: over-selection, quorum, deadline,
    /// and upload retry policy.
    pub tolerance: ToleranceConfig,
    /// Byzantine defense: update screening plus a robust aggregation rule.
    /// `None` aggregates every delivered update with [`Self::aggregation`]
    /// (the undefended baseline). When set, [`Self::aggregation`] is only
    /// consulted by [`crate::robust::RobustRule::Mean`].
    pub defense: Option<DefenseConfig>,
    /// Wire encoding for worker → coordinator model uploads. The default
    /// lossless `F64` reproduces the uncompressed path bit-for-bit; lossy
    /// tiers shrink uplink bytes (and upload energy) at a bounded accuracy
    /// cost. The downlink broadcast is always lossless `F64`, so every
    /// device holds the bit-exact delta base.
    #[serde(default)]
    pub transport: WireConfig,
    /// Seed for selection and dropout randomness.
    pub seed: u64,
}

/// Coordinator-side fault-tolerance settings for each global round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ToleranceConfig {
    /// Over-selection margin `m`: the coordinator selects `K + m` servers
    /// and aggregates the first `K` arrivals, hedging against dropouts.
    pub over_select: usize,
    /// Minimum delivered updates required to commit a round. `None` commits
    /// on any non-empty arrival set (the classic FedAvg behavior).
    pub quorum: Option<usize>,
    /// Per-round deadline in virtual seconds; arrivals after it are
    /// discarded. `None` waits for every delivered update.
    pub deadline_s: Option<f64>,
    /// Nominal (fault-free) duration of one device round, virtual seconds.
    /// Straggle factors and retry backoff scale and add to this.
    pub nominal_round_s: f64,
    /// Bounded exponential-backoff retry applied to lost or corrupted
    /// uploads.
    pub retry: RetryPolicy,
}

impl Default for ToleranceConfig {
    fn default() -> Self {
        Self {
            over_select: 0,
            quorum: None,
            deadline_s: None,
            nominal_round_s: 1.0,
            retry: RetryPolicy::default(),
        }
    }
}

impl ToleranceConfig {
    /// The effective quorum: the configured minimum, or 1.
    pub fn effective_quorum(&self) -> usize {
        self.quorum.unwrap_or(1).max(1)
    }
}

/// How a round concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundOutcome {
    /// Every selected server's update was aggregated.
    Full,
    /// A quorum-satisfying subset was aggregated.
    Partial,
    /// Quorum was missed; the global model is unchanged and the round's
    /// energy is wasted.
    Abandoned,
}

impl RoundOutcome {
    /// Classifies a round from its delivered-update count.
    pub fn of(committed: usize, selected: usize, quorum: usize) -> Self {
        if committed < quorum {
            Self::Abandoned
        } else if committed == selected {
            Self::Full
        } else {
            Self::Partial
        }
    }

    /// Whether the round updated the global model.
    pub fn committed(&self) -> bool {
        !matches!(self, Self::Abandoned)
    }
}

/// Per-round fault bookkeeping (all zero on a clean round).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RoundFaultStats {
    /// Selected servers that were down (crashed, not yet restarted).
    pub crashed: usize,
    /// Selected servers that ran slow this round.
    pub stragglers: usize,
    /// Failed upload attempts that were retried.
    pub upload_retries: usize,
    /// Uploads abandoned after exhausting their retry budget.
    pub abandoned_uploads: usize,
    /// Upload attempts that arrived corrupted (checksum failure).
    pub corrupted_frames: usize,
    /// Delivered updates discarded for missing the round deadline.
    pub deadline_misses: usize,
    /// Worker threads that died or timed out mid-round (threaded engine
    /// only; counted as dropouts, never a hang).
    pub worker_losses: usize,
    /// Delivered updates rejected by the coordinator's update screen
    /// (non-finite values, wrong dimension, or norm outliers).
    pub screened_updates: usize,
    /// Delivered updates norm-clipped (down-weighted) by the screen.
    pub clipped_updates: usize,
}

impl RoundFaultStats {
    /// Whether anything went wrong this round.
    pub fn any(&self) -> bool {
        *self != Self::default()
    }
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        Self {
            clients_per_round: 1,
            local_epochs: 1,
            sgd: SgdConfig::paper_default(),
            selection: SelectionStrategy::UniformRandom,
            aggregation: AggregationRule::Uniform,
            eval_every: 1,
            dropout_prob: 0.0,
            tolerance: ToleranceConfig::default(),
            defense: None,
            transport: WireConfig::default(),
            seed: 0x0FED,
        }
    }
}

/// When a [`FedAvg::run_until`] loop stops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopCondition {
    /// Hard cap on global rounds.
    pub max_rounds: usize,
    /// Stop early once test accuracy reaches this level (checked on
    /// evaluation rounds).
    pub target_accuracy: Option<f64>,
}

impl StopCondition {
    /// Runs exactly `rounds` rounds.
    pub fn rounds(rounds: usize) -> Self {
        Self {
            max_rounds: rounds,
            target_accuracy: None,
        }
    }

    /// Runs until `accuracy` is reached, at most `max_rounds` rounds.
    pub fn accuracy(accuracy: f64, max_rounds: usize) -> Self {
        Self {
            max_rounds,
            target_accuracy: Some(accuracy),
        }
    }
}

/// What happened in one global round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// 0-based round index `t`.
    pub round: usize,
    /// Selected edge servers `𝒦_t`, ascending.
    pub selected: Vec<usize>,
    /// The subset of `selected` that actually delivered an update (equal to
    /// `selected` unless dropout is enabled), ascending.
    pub responded: Vec<usize>,
    /// Per-responding-server local training statistics, in `responded`
    /// order.
    pub local_stats: Vec<TrainStats>,
    /// Loss of the *new* global model over all training data, when this was
    /// an evaluation round.
    pub global_train_loss: Option<f64>,
    /// Test-set evaluation of the new global model, when evaluated.
    pub test_eval: Option<Evaluation>,
    /// Whether the round committed fully, partially, or not at all.
    pub outcome: RoundOutcome,
    /// Fault bookkeeping (all zero on a clean round).
    pub faults: RoundFaultStats,
}

/// In-process FedAvg over a fixed set of client datasets, generic over the
/// trained [`Model`] (multinomial logistic regression by default).
#[derive(Debug, Clone)]
pub struct FedAvg<M: Model = LogisticRegression> {
    config: FedAvgConfig,
    clients: Vec<Arc<Dataset>>,
    test: Dataset,
    global: M,
    selector: ClientSelector,
    trainer: LocalTrainer,
    /// Persistent worker pool for the parallel gradient reduction, shared
    /// by every client's local training across all rounds (`None` for the
    /// serial reductions). The pooled kernel is bit-identical to the scoped
    /// one, so engines with and without a pool agree exactly.
    pool: Option<Arc<WorkerPool>>,
    /// Gradient workspace reused across every client and round: after the
    /// first round sizes it, local training runs allocation-free.
    scratch: GradScratch,
    /// Wire-codec workspace: every update ships through the same
    /// encode→decode round trip the threaded workers perform, so lossy
    /// transport tiers affect both engines identically.
    wire: WireScratch,
    /// Reused staging buffer for the wire round trip.
    wire_buf: Vec<u8>,
    /// Simulated transport totals, byte-for-byte equal to the threaded
    /// engine's measured [`TransportStats`] under the same configuration.
    transport: TransportStats,
    dropout_rng: DetRng,
    injector: Option<FaultInjector>,
    adversary: Option<Adversary>,
    /// Label-flipped copies of compromised clients' datasets, `None` for
    /// honest devices. Built once at [`FedAvg::with_adversary`] time.
    flipped: Vec<Option<Arc<Dataset>>>,
    round: usize,
}

impl FedAvg<LogisticRegression> {
    /// Creates a run training the paper's model — multinomial logistic
    /// regression starting at zero (`ω₀ = 0`).
    ///
    /// # Panics
    ///
    /// Panics if there are no clients, any client dataset is empty, shapes
    /// are inconsistent, `clients_per_round` is 0 or exceeds the client
    /// count, `local_epochs == 0`, or `eval_every == 0`.
    pub fn new(config: FedAvgConfig, clients: Vec<Dataset>, test: Dataset) -> Self {
        assert!(!clients.is_empty(), "need at least one client dataset");
        let global = LogisticRegression::zeros(clients[0].dim(), clients[0].num_classes());
        Self::with_model(config, clients, test, global)
    }
}

impl<M: Model> FedAvg<M> {
    /// Creates a run from per-client datasets, a test set, and an initial
    /// global model `ω₀` of any [`Model`] type.
    ///
    /// # Panics
    ///
    /// Same validation as [`FedAvg::new`], plus a model/dataset shape check.
    pub fn with_model(
        config: FedAvgConfig,
        clients: Vec<Dataset>,
        test: Dataset,
        global: M,
    ) -> Self {
        assert!(!clients.is_empty(), "need at least one client dataset");
        assert!(
            clients.iter().all(|c| !c.is_empty()),
            "every client needs at least one sample"
        );
        let dim = clients[0].dim();
        let classes = clients[0].num_classes();
        assert!(
            clients
                .iter()
                .all(|c| c.dim() == dim && c.num_classes() == classes),
            "client datasets must share a shape"
        );
        assert_eq!(test.dim(), dim, "test set dimension mismatch");
        assert_eq!(test.num_classes(), classes, "test set class mismatch");
        assert_eq!(global.dim(), dim, "model dimension mismatch");
        assert_eq!(global.num_classes(), classes, "model class mismatch");
        assert!(config.clients_per_round > 0, "K must be at least 1");
        assert!(
            config.clients_per_round <= clients.len(),
            "K = {} exceeds N = {}",
            config.clients_per_round,
            clients.len()
        );
        assert!(config.local_epochs > 0, "E must be at least 1");
        assert!(config.eval_every > 0, "eval_every must be at least 1");
        assert!(
            (0.0..1.0).contains(&config.dropout_prob),
            "dropout probability must be in [0, 1)"
        );

        if let Some(defense) = &config.defense {
            defense.screen.validate();
        }

        let selector = ClientSelector::new(config.selection, clients.len(), config.seed);
        let trainer = LocalTrainer::new(config.sgd.clone());
        let dropout_rng = DetRng::new(config.seed).fork(0xD80);
        let flipped = vec![None; clients.len()];
        let pool = match config.sgd.grad {
            GradReduction::FusedParallel { threads } if threads > 1 => {
                Some(Arc::new(WorkerPool::new(threads)))
            }
            _ => None,
        };
        let clients: Vec<Arc<Dataset>> = clients.into_iter().map(Arc::new).collect();
        Self {
            config,
            clients,
            test,
            global,
            selector,
            trainer,
            pool,
            scratch: GradScratch::new(),
            wire: WireScratch::new(),
            wire_buf: Vec::new(),
            transport: TransportStats::default(),
            dropout_rng,
            injector: None,
            adversary: None,
            flipped,
            round: 0,
        }
    }

    /// Attaches a seeded fault injector: crashes, stragglers, and lossy or
    /// corrupting uplinks now perturb every round, and the coordinator
    /// responds with over-selection, deadlines, retry, and quorum from
    /// [`FedAvgConfig::tolerance`].
    ///
    /// # Panics
    ///
    /// Panics when `dropout_prob` is also set — the injector subsumes it,
    /// and mixing the two RNG streams would break reproducibility.
    pub fn with_faults(mut self, injector: FaultInjector) -> Self {
        assert_eq!(
            self.config.dropout_prob, 0.0,
            "use either dropout_prob or a fault injector, not both"
        );
        self.injector = Some(injector);
        self
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&FaultInjector> {
        self.injector.as_ref()
    }

    /// Compromises a seeded fraction of the fleet: those devices now run
    /// `spec.behavior` every round they are selected. Label-flip cohorts
    /// get their training sets flipped here, once, so every engine trains
    /// them on identical poisoned data.
    ///
    /// # Panics
    ///
    /// Panics on an invalid [`AdversarySpec`] (see [`Adversary::new`]).
    pub fn with_adversary(mut self, spec: AdversarySpec) -> Self {
        let adversary = Adversary::new(spec, self.clients.len());
        for device in adversary.malicious_devices() {
            if adversary.flips_labels(device) {
                self.flipped[device] = Some(Arc::new(flip_dataset_labels(&self.clients[device])));
            }
        }
        self.adversary = Some(adversary);
        self
    }

    /// The attached adversary, if any.
    pub fn adversary(&self) -> Option<&Adversary> {
        self.adversary.as_ref()
    }

    /// Changes `(K, E)` in place, keeping the global model, round counter,
    /// and RNG streams — the live re-planning hook. When crashes shrink the
    /// fleet, the coordinator re-runs ACS against the survivors and applies
    /// the fresh `(K*, E*)` here without restarting training.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds the fleet, or `e` is 0.
    pub fn set_participation(&mut self, k: usize, e: usize) {
        assert!(k >= 1 && k <= self.clients.len(), "K = {k} out of range");
        assert!(e >= 1, "E must be at least 1");
        self.config.clients_per_round = k;
        self.config.local_epochs = e;
    }

    /// Devices that are up at the current round (everyone, without an
    /// injector). Useful for re-planning `(K*, E*)` when the fleet shrinks.
    pub fn live_fleet(&self) -> Vec<usize> {
        match &self.injector {
            Some(inj) => inj.live_fleet(self.clients.len(), self.round),
            None => (0..self.clients.len()).collect(),
        }
    }

    /// The run's configuration.
    pub fn config(&self) -> &FedAvgConfig {
        &self.config
    }

    /// Number of edge servers `N`.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// The current global model.
    pub fn global_model(&self) -> &M {
        &self.global
    }

    /// Rounds completed so far.
    pub fn rounds_completed(&self) -> usize {
        self.round
    }

    /// Heap-allocation events of the reused gradient workspace. Stops
    /// increasing after the first round in steady state — the property the
    /// perf harness (`fei-bench --bin perf`) records in `BENCH_perf.json`.
    pub fn scratch_allocations(&self) -> u64 {
        self.scratch.allocations()
    }

    /// Heap-allocation events of the wire-codec workspace. Like
    /// [`FedAvg::scratch_allocations`], constant after the first round in
    /// steady state — the zero-allocation property `BENCH_compression.json`
    /// records for the transport hot path.
    pub fn wire_allocations(&self) -> u64 {
        self.wire.allocations()
    }

    /// Simulated transport totals: the exact frame bytes the threaded
    /// engine moves for this configuration (lossless `F64` downlink
    /// broadcasts, uplink updates under [`FedAvgConfig::transport`],
    /// retransmissions from the fault schedule). The integration tests pin
    /// serial and threaded equality byte for byte.
    pub fn transport_stats(&self) -> TransportStats {
        self.transport
    }

    /// Loss of the current global model over the union of all client data
    /// (the "global loss value" of Fig. 4).
    pub fn global_train_loss(&self) -> f64 {
        let total: usize = self.clients.iter().map(|c| c.len()).sum();
        let weighted: f64 = self
            .clients
            .iter()
            .map(|c| self.global.loss(c) * c.len() as f64)
            .sum();
        weighted / total as f64
    }

    /// Test-set evaluation of the current global model.
    pub fn evaluate(&self) -> Evaluation {
        Evaluation::of(&self.global, &self.test)
    }

    /// Executes one global round (§III-A steps 2–4) and returns its record.
    ///
    /// With dropout enabled, each selected server independently fails to
    /// respond with the configured probability; the coordinator aggregates
    /// whoever answered. A fully dropped round leaves the model unchanged.
    ///
    /// # Panics
    ///
    /// Panics if the round fails outright (see [`FedAvg::try_run_round`]);
    /// impossible without a fault injector.
    pub fn run_round(&mut self) -> RoundRecord {
        // fei-lint: allow(no-panic, reason = "documented panicking convenience wrapper; fallible callers use try_run_round")
        self.try_run_round().expect("federated round failed")
    }

    /// Executes one global round, reporting fleet exhaustion as a typed
    /// error instead of panicking.
    ///
    /// Without a fault injector this never fails. With one, the round plays
    /// out under the injected fault schedule and the coordinator's
    /// [`ToleranceConfig`]: `K + m` servers are selected, crashed servers
    /// and abandoned uploads drop out, late arrivals miss the deadline, the
    /// first `K` surviving arrivals are aggregated if they meet the quorum,
    /// and a quorum miss leaves the model unchanged
    /// ([`RoundOutcome::Abandoned`]).
    ///
    /// # Errors
    ///
    /// [`FlError::FleetBelowQuorum`] when fewer devices are up than the
    /// quorum requires — no round can commit until restarts (if any)
    /// replenish the fleet, so the caller should re-plan or abort. The
    /// round counter is not advanced.
    ///
    /// [`FlError::Aggregate`] when the delivered updates could not be
    /// combined (undefined weights, or malformed input that survived
    /// screening). The global model is unchanged.
    pub fn try_run_round(&mut self) -> Result<RoundRecord, FlError> {
        let t = self.round;
        match self.injector.as_ref().filter(|i| i.is_enabled()).cloned() {
            None => {
                let selected = self.selector.select(t, self.config.clients_per_round);
                let responded: Vec<usize> = selected
                    .iter()
                    .copied()
                    .filter(|_| {
                        // fei-lint: allow(float-eq, reason = "configuration sentinel: exactly-zero dropout must not consume RNG draws, or seeds diverge")
                        self.config.dropout_prob == 0.0
                            || self.dropout_rng.next_f64() >= self.config.dropout_prob
                    })
                    .collect();
                self.complete_round(t, selected, responded, RoundFaultStats::default())
            }
            Some(injector) => {
                let tol = self.config.tolerance.clone();
                let n = self.clients.len();

                // The protocol's round decision core: quorum gate,
                // over-selection width, deadline admission, and the
                // first-K-by-arrival race all live in fei-proto so this
                // engine, the threaded engine, and the frame-driven
                // coordinator share one implementation.
                let policy = RoundPolicy {
                    k: self.config.clients_per_round,
                    over_select: tol.over_select,
                    quorum: tol.effective_quorum(),
                    deadline_s: tol.deadline_s,
                };
                let alive = injector.live_fleet(n, t).len();
                // `RoundMachine::begin` fails only on quorum loss.
                let mut machine = RoundMachine::begin(policy, t as u64, alive).map_err(|_| {
                    FlError::FleetBelowQuorum {
                        round: t,
                        alive,
                        required: policy.quorum,
                    }
                })?;

                // Over-select K + m as a dropout hedge.
                let selected = self.selector.select(t, machine.selection_width(n));

                let mut faults = RoundFaultStats::default();
                for &device in &selected {
                    if injector.is_down(device, t) {
                        machine.offer_crashed(device);
                        continue;
                    }
                    let factor = injector.straggle_factor(device, t);
                    let upload = injector.upload_outcome(device, t, &tol.retry);
                    faults.corrupted_frames += upload.corrupted;
                    faults.upload_retries += upload.attempts - 1;
                    machine.offer(
                        device,
                        DeviceReport {
                            straggle_factor: factor,
                            delivered: upload.delivered,
                            arrival_s: tol.nominal_round_s * factor + upload.backoff_s,
                        },
                    );
                }

                let closed = machine.close();
                faults.crashed = closed.tally.crashed;
                faults.stragglers = closed.tally.stragglers;
                faults.abandoned_uploads = closed.tally.abandoned_uploads;
                faults.deadline_misses = closed.tally.deadline_misses;
                self.complete_round(t, selected, closed.accepted, faults)
            }
        }
    }

    /// Trains the responders (compromised ones attack), screens and
    /// aggregates if quorum is met, advances the round, and assembles the
    /// record.
    fn complete_round(
        &mut self,
        t: usize,
        selected: Vec<usize>,
        responded: Vec<usize>,
        mut faults: RoundFaultStats,
    ) -> Result<RoundRecord, FlError> {
        let quorum = self.config.tolerance.effective_quorum();
        let global_flat = self.global.to_flat().to_vec();
        let transport = self.config.transport;
        let down_len = global_frame_len(global_flat.len()) as u64;
        let up_len = update_frame_len(transport, global_flat.len()) as u64;

        let mut updates = Vec::with_capacity(responded.len());
        let mut local_stats = Vec::with_capacity(responded.len());
        for &client in &responded {
            // A label-flip cohort trains honestly, but on flipped data.
            let data = self.flipped[client]
                .as_ref()
                .unwrap_or(&self.clients[client]);
            let mut local = self.global.clone();
            let stats = match &self.pool {
                Some(pool) => self.trainer.train_with_pool(
                    &mut local,
                    data,
                    self.config.local_epochs,
                    t,
                    &mut self.scratch,
                    pool,
                ),
                None => self.trainer.train_with(
                    &mut local,
                    data,
                    self.config.local_epochs,
                    t,
                    &mut self.scratch,
                ),
            };
            let mut params = local.to_flat().to_vec();
            // Ship the update through the same wire round trip the threaded
            // workers perform: lossy tiers perturb the parameters exactly as
            // the coordinator would decode them, and the byte counters match
            // the threaded engine's measured frames.
            self.wire.round_trip(
                transport,
                &mut params,
                Some(&global_flat),
                &mut self.wire_buf,
            );
            self.transport.bytes_down += down_len;
            self.transport.bytes_up += up_len;
            self.transport.jobs += 1;
            if let Some(adversary) = &self.adversary {
                adversary.poison(client, t, &global_flat, &mut params);
            }
            updates.push((params, self.clients[client].len()));
            local_stats.push(stats);
        }

        // Charge uplink retransmissions decided by the fault schedule, as
        // the threaded coordinator does: each failed attempt resent the
        // whole update frame.
        if let Some(injector) = self.injector.as_ref().filter(|i| i.is_enabled()) {
            let retry = &self.config.tolerance.retry;
            let resent: u64 = responded
                .iter()
                .map(|&client| {
                    (injector.upload_outcome(client, t, retry).attempts as u64 - 1) * up_len
                })
                .sum();
            self.transport.bytes_retransmitted += resent;
        }

        // The coordinator's screening boundary: malformed or outlying
        // uploads are discarded before they can reach aggregation, and a
        // screened-out update counts as undelivered for quorum purposes.
        if let Some(defense) = &self.config.defense {
            let report = UpdateScreen::new(defense.screen).screen(&mut updates, global_flat.len());
            faults.screened_updates = report.rejected_count();
            faults.clipped_updates = report.clipped;
        }
        let outcome = RoundOutcome::of(updates.len(), selected.len(), quorum);

        // Control-plane traffic of the protocol round: a selection notice
        // down to every selected device, one heartbeat up from each device
        // that was up, and the commit-or-abort verdict back down. Charged
        // identically by the threaded engine.
        self.transport.bytes_control += control_round_bytes(
            selected.len(),
            selected.len() - faults.crashed,
            outcome.committed(),
            responded.len(),
        );

        if outcome.committed() && !updates.is_empty() {
            let merged = match &self.config.defense {
                Some(defense) => robust_aggregate(&updates, defense.rule),
                None => try_aggregate(&updates, self.config.aggregation),
            }
            .map_err(|source| FlError::Aggregate { round: t, source })?;
            self.global.set_flat(&merged);
        }
        self.round += 1;

        let evaluated = self.round.is_multiple_of(self.config.eval_every);
        Ok(RoundRecord {
            round: t,
            selected,
            responded,
            local_stats,
            global_train_loss: evaluated.then(|| self.global_train_loss()),
            test_eval: evaluated.then(|| self.evaluate()),
            outcome,
            faults,
        })
    }

    /// Captures the engine's resumable state: round counter, global model,
    /// RNG streams, transport totals, and the current `(K, E)`. A driver
    /// recovering from a coordinator crash rebuilds the engine from its
    /// construction inputs and [`FedAvg::restore`]s this checkpoint; future
    /// rounds are then bit-identical to the uncrashed run. The checkpoint
    /// is engine-agnostic — `ThreadedFedAvg::restore` accepts it too.
    pub fn checkpoint(&self) -> EngineCheckpoint<M> {
        EngineCheckpoint {
            round: self.round,
            global: self.global.clone(),
            selector: self.selector.clone(),
            dropout_rng: self.dropout_rng.clone(),
            transport: self.transport,
            clients_per_round: self.config.clients_per_round,
            local_epochs: self.config.local_epochs,
        }
    }

    /// Rewinds the engine to a checkpoint taken from either execution
    /// engine over the same fleet and configuration.
    ///
    /// # Panics
    ///
    /// Panics if the checkpointed model's shape does not match this
    /// engine's datasets, or its `K` exceeds the fleet.
    pub fn restore(&mut self, checkpoint: EngineCheckpoint<M>) {
        assert_eq!(
            checkpoint.global.dim(),
            self.clients[0].dim(),
            "checkpoint model dimension mismatch"
        );
        assert_eq!(
            checkpoint.global.num_classes(),
            self.clients[0].num_classes(),
            "checkpoint model class mismatch"
        );
        assert!(
            checkpoint.clients_per_round >= 1 && checkpoint.clients_per_round <= self.clients.len(),
            "checkpoint K = {} out of range for N = {}",
            checkpoint.clients_per_round,
            self.clients.len()
        );
        assert!(
            checkpoint.local_epochs >= 1,
            "checkpoint E must be at least 1"
        );
        self.round = checkpoint.round;
        self.global = checkpoint.global;
        self.selector = checkpoint.selector;
        self.dropout_rng = checkpoint.dropout_rng;
        self.transport = checkpoint.transport;
        self.config.clients_per_round = checkpoint.clients_per_round;
        self.config.local_epochs = checkpoint.local_epochs;
    }

    /// Runs rounds until `stop` is satisfied, returning the full history.
    ///
    /// # Panics
    ///
    /// Panics if a round fails outright (see [`FedAvg::try_run_until`]);
    /// impossible without a fault injector.
    pub fn run_until(&mut self, stop: StopCondition) -> TrainingHistory {
        // fei-lint: allow(no-panic, reason = "documented panicking convenience wrapper; fallible callers use try_run_until")
        self.try_run_until(stop).expect("federated round failed")
    }

    /// Runs rounds until `stop` is satisfied. An unreachable accuracy
    /// target terminates at `max_rounds` and is recorded on the history
    /// ([`TrainingHistory::missed_target`]) rather than looping forever.
    ///
    /// # Errors
    ///
    /// Propagates [`FlError::FleetBelowQuorum`] from a failed round; the
    /// rounds completed up to that point are lost, matching the semantics
    /// of an aborted run.
    pub fn try_run_until(&mut self, stop: StopCondition) -> Result<TrainingHistory, FlError> {
        let mut history = TrainingHistory::new();
        let mut reached = false;
        for _ in 0..stop.max_rounds {
            let record = self.try_run_round()?;
            reached = match (stop.target_accuracy, &record.test_eval) {
                (Some(target), Some(eval)) => eval.accuracy >= target,
                _ => false,
            };
            history.push(record);
            if reached {
                break;
            }
        }
        if let (Some(target), false) = (stop.target_accuracy, reached) {
            history.record_missed_target(target);
        }
        Ok(history)
    }
}

#[cfg(test)]
mod tests {
    use fei_data::{Partition, SyntheticMnist, SyntheticMnistConfig};
    use fei_sim::DetRng;

    use super::*;

    fn setup(n_clients: usize, samples: usize) -> (Vec<Dataset>, Dataset) {
        let gen = SyntheticMnist::new(SyntheticMnistConfig {
            pixel_noise_std: 0.2,
            label_flip_prob: 0.0,
            ..Default::default()
        });
        let train = gen.generate(samples, 0);
        let test = gen.generate(samples / 4, 1);
        let parts = Partition::iid(train.len(), n_clients, &mut DetRng::new(7)).apply(&train);
        (parts, test)
    }

    #[test]
    fn round_selects_k_and_records_stats() {
        let (clients, test) = setup(5, 100);
        let config = FedAvgConfig {
            clients_per_round: 3,
            local_epochs: 2,
            ..Default::default()
        };
        let mut fed = FedAvg::new(config, clients, test);
        let rec = fed.run_round();
        assert_eq!(rec.round, 0);
        assert_eq!(rec.selected.len(), 3);
        assert_eq!(rec.responded, rec.selected);
        assert_eq!(rec.local_stats.len(), 3);
        assert!(rec.local_stats.iter().all(|s| s.epochs_run == 2));
        assert!(rec.test_eval.is_some());
        assert_eq!(fed.rounds_completed(), 1);
    }

    #[test]
    fn training_improves_loss_and_accuracy() {
        let (clients, test) = setup(4, 400);
        let config = FedAvgConfig {
            clients_per_round: 4,
            local_epochs: 5,
            sgd: SgdConfig::new(0.3, 1.0, None),
            ..Default::default()
        };
        let mut fed = FedAvg::new(config, clients, test);
        let initial_loss = fed.global_train_loss();
        let initial_acc = fed.evaluate().accuracy;
        let history = fed.run_until(StopCondition::rounds(15));
        assert_eq!(history.len(), 15);
        let final_rec = history.last().unwrap();
        assert!(final_rec.global_train_loss.unwrap() < initial_loss * 0.7);
        assert!(final_rec.test_eval.unwrap().accuracy > initial_acc);
    }

    #[test]
    fn k_equals_n_with_e1_matches_centralized_gradient_direction() {
        // With K = N, E = 1, uniform aggregation on an exactly even split,
        // FedAvg's first round equals one full-batch gradient step on the
        // union (the mini-batch-SGD equivalence the paper cites).
        let (clients, test) = setup(4, 400);
        let union: Dataset = {
            let mut u = Dataset::empty(clients[0].dim(), clients[0].num_classes());
            for c in &clients {
                for (x, y) in c.iter() {
                    u.push(x, y);
                }
            }
            u
        };
        let config = FedAvgConfig {
            clients_per_round: 4,
            local_epochs: 1,
            sgd: SgdConfig::new(0.01, 1.0, None),
            ..Default::default()
        };
        let mut fed = FedAvg::new(config, clients, test);
        fed.run_round();

        let mut central = LogisticRegression::zeros(union.dim(), union.num_classes());
        let all: Vec<usize> = (0..union.len()).collect();
        let (_, grad) = central.loss_and_gradient(&union, &all);
        central.apply_gradient(&grad, 0.01);

        let dist = fed.global_model().param_distance_sq(&central);
        assert!(dist < 1e-12, "distance {dist}");
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let (clients, test) = setup(6, 120);
        let config = FedAvgConfig {
            clients_per_round: 2,
            local_epochs: 1,
            ..Default::default()
        };
        let mut a = FedAvg::new(config.clone(), clients.clone(), test.clone());
        let mut b = FedAvg::new(config, clients, test);
        let ha = a.run_until(StopCondition::rounds(5));
        let hb = b.run_until(StopCondition::rounds(5));
        assert_eq!(ha.records(), hb.records());
        assert_eq!(a.global_model(), b.global_model());
    }

    #[test]
    fn early_stop_on_target_accuracy() {
        let (clients, test) = setup(4, 400);
        let config = FedAvgConfig {
            clients_per_round: 4,
            local_epochs: 5,
            sgd: SgdConfig::new(0.3, 1.0, None),
            ..Default::default()
        };
        let mut fed = FedAvg::new(config, clients, test);
        let history = fed.run_until(StopCondition::accuracy(0.5, 500));
        assert!(history.len() < 500, "should stop before the cap");
        assert!(history.last().unwrap().test_eval.unwrap().accuracy >= 0.5);
    }

    #[test]
    fn eval_every_skips_evaluations() {
        let (clients, test) = setup(3, 60);
        let config = FedAvgConfig {
            clients_per_round: 1,
            local_epochs: 1,
            eval_every: 3,
            ..Default::default()
        };
        let mut fed = FedAvg::new(config, clients, test);
        let history = fed.run_until(StopCondition::rounds(6));
        let evaluated: Vec<bool> = history
            .records()
            .iter()
            .map(|r| r.test_eval.is_some())
            .collect();
        assert_eq!(evaluated, vec![false, false, true, false, false, true]);
    }

    #[test]
    fn dropout_shrinks_responders_but_training_continues() {
        let (clients, test) = setup(6, 180);
        let config = FedAvgConfig {
            clients_per_round: 6,
            local_epochs: 1,
            dropout_prob: 0.4,
            ..Default::default()
        };
        let mut fed = FedAvg::new(config, clients, test);
        let mut dropped_any = false;
        let initial_loss = fed.global_train_loss();
        for _ in 0..10 {
            let rec = fed.run_round();
            assert!(rec.responded.iter().all(|c| rec.selected.contains(c)));
            assert_eq!(rec.responded.len(), rec.local_stats.len());
            dropped_any |= rec.responded.len() < rec.selected.len();
        }
        assert!(dropped_any, "40% dropout over 60 draws must drop someone");
        assert!(
            fed.global_train_loss() < initial_loss,
            "training still progresses"
        );
    }

    #[test]
    fn fully_dropped_round_is_a_no_op() {
        let (clients, test) = setup(2, 40);
        let config = FedAvgConfig {
            clients_per_round: 1,
            local_epochs: 1,
            dropout_prob: 0.999_999,
            ..Default::default()
        };
        let mut fed = FedAvg::new(config, clients, test);
        let before = fed.global_model().clone();
        let rec = fed.run_round();
        assert!(rec.responded.is_empty());
        assert_eq!(fed.global_model(), &before);
        assert_eq!(fed.rounds_completed(), 1);
    }

    #[test]
    fn zero_dropout_is_the_default_and_identical() {
        let (clients, test) = setup(4, 80);
        let base = FedAvgConfig {
            clients_per_round: 2,
            local_epochs: 1,
            ..Default::default()
        };
        let explicit = FedAvgConfig {
            dropout_prob: 0.0,
            ..base.clone()
        };
        let mut a = FedAvg::new(base, clients.clone(), test.clone());
        let mut b = FedAvg::new(explicit, clients, test);
        for _ in 0..3 {
            assert_eq!(a.run_round(), b.run_round());
        }
    }

    #[test]
    fn defended_run_with_no_attacker_matches_undefended_bit_for_bit() {
        use crate::robust::{DefenseConfig, RobustRule};
        let (clients, test) = setup(6, 180);
        let base = FedAvgConfig {
            clients_per_round: 4,
            local_epochs: 2,
            ..Default::default()
        };
        for rule in [
            RobustRule::CoordinateMedian {
                assumed_byzantine: 0,
            },
            RobustRule::TrimmedMean {
                assumed_byzantine: 0,
            },
            RobustRule::Krum {
                assumed_byzantine: 0,
            },
            RobustRule::MultiKrum {
                assumed_byzantine: 0,
            },
        ] {
            let defended = FedAvgConfig {
                defense: Some(DefenseConfig::with_rule(rule)),
                ..base.clone()
            };
            let mut plain = FedAvg::new(base.clone(), clients.clone(), test.clone());
            let mut robust = FedAvg::new(defended, clients.clone(), test.clone());
            for _ in 0..4 {
                assert_eq!(plain.run_round(), robust.run_round(), "{}", rule.name());
            }
            assert_eq!(plain.global_model(), robust.global_model());
        }
    }

    #[test]
    fn boosted_updates_are_screened_out() {
        use crate::adversary::{AdversarySpec, AttackBehavior};
        use crate::robust::{DefenseConfig, RobustRule};
        let (clients, test) = setup(10, 300);
        let config = FedAvgConfig {
            clients_per_round: 10,
            local_epochs: 1,
            defense: Some(DefenseConfig::with_rule(RobustRule::CoordinateMedian {
                assumed_byzantine: 2,
            })),
            ..Default::default()
        };
        let spec = AdversarySpec {
            fraction: 0.2,
            behavior: AttackBehavior::ScaledUpdate { boost: 100.0 },
            seed: 0xAD50,
        };
        let mut fed = FedAvg::new(config, clients, test).with_adversary(spec);
        // Round 0 trains from ω₀ = 0, so every norm is small and similar;
        // give training a round to differentiate honest from boosted norms.
        fed.run_round();
        let rec = fed.run_round();
        assert_eq!(rec.faults.screened_updates, 2, "{:?}", rec.faults);
        assert_eq!(rec.outcome, RoundOutcome::Partial);
    }

    #[test]
    fn median_defense_resists_sign_flip_where_mean_does_not() {
        use crate::adversary::AdversarySpec;
        use crate::robust::{DefenseConfig, RobustRule, ScreenPolicy};
        let (clients, test) = setup(10, 400);
        let undefended = FedAvgConfig {
            clients_per_round: 10,
            local_epochs: 3,
            sgd: SgdConfig::new(0.3, 1.0, None),
            ..Default::default()
        };
        let defended = FedAvgConfig {
            defense: Some(DefenseConfig {
                screen: ScreenPolicy::structural_only(),
                rule: RobustRule::CoordinateMedian {
                    assumed_byzantine: 3,
                },
            }),
            ..undefended.clone()
        };
        let spec = AdversarySpec::sign_flip(0.3);
        let mut plain = FedAvg::new(undefended, clients.clone(), test.clone()).with_adversary(spec);
        let mut robust = FedAvg::new(defended, clients, test).with_adversary(spec);
        let ha = plain.run_until(StopCondition::rounds(12));
        let hb = robust.run_until(StopCondition::rounds(12));
        let acc_plain = ha.last().unwrap().test_eval.unwrap().accuracy;
        let acc_robust = hb.last().unwrap().test_eval.unwrap().accuracy;
        assert!(
            acc_robust > acc_plain + 0.1,
            "median {acc_robust} vs mean {acc_plain}"
        );
    }

    #[test]
    fn label_flip_cohort_trains_on_flipped_data_and_reports_it() {
        use crate::adversary::{AdversarySpec, AttackBehavior};
        let (clients, test) = setup(5, 100);
        let config = FedAvgConfig {
            clients_per_round: 5,
            local_epochs: 1,
            ..Default::default()
        };
        let spec = AdversarySpec {
            fraction: 0.4,
            behavior: AttackBehavior::LabelFlip,
            seed: 3,
        };
        let fed = FedAvg::new(config, clients, test).with_adversary(spec);
        let adv = fed.adversary().expect("adversary attached");
        assert_eq!(adv.num_malicious(), 2);
        for device in adv.malicious_devices() {
            let flipped = fed.flipped[device].as_ref().expect("flipped dataset");
            let orig = &fed.clients[device];
            assert_eq!(flipped.len(), orig.len());
            let classes = orig.num_classes();
            for ((_, yf), (_, yo)) in flipped.iter().zip(orig.iter()) {
                assert_eq!(yf, classes - 1 - yo);
            }
        }
    }

    #[test]
    fn checkpoint_restore_resumes_bit_identically() {
        let (clients, test) = setup(6, 120);
        let config = FedAvgConfig {
            clients_per_round: 3,
            local_epochs: 2,
            dropout_prob: 0.3,
            ..Default::default()
        };
        let mut straight = FedAvg::new(config.clone(), clients.clone(), test.clone());
        let mut crashed = FedAvg::new(config.clone(), clients.clone(), test.clone());
        for _ in 0..3 {
            straight.run_round();
            crashed.run_round();
        }
        // "Crash": the driver loses the engine, keeps only the checkpoint,
        // and rebuilds from construction inputs.
        let ckpt = crashed.checkpoint();
        assert_eq!(ckpt.round(), 3);
        let mut rebuilt = FedAvg::new(config, clients, test);
        rebuilt.restore(ckpt);
        for _ in 0..3 {
            assert_eq!(straight.run_round(), rebuilt.run_round());
        }
        assert_eq!(straight.global_model(), rebuilt.global_model());
        assert_eq!(straight.transport_stats(), rebuilt.transport_stats());
    }

    #[test]
    fn checkpoint_carries_replanned_participation() {
        let (clients, test) = setup(6, 120);
        let config = FedAvgConfig {
            clients_per_round: 4,
            local_epochs: 3,
            ..Default::default()
        };
        let mut fed = FedAvg::new(config.clone(), clients.clone(), test.clone());
        fed.run_round();
        fed.set_participation(2, 5);
        let ckpt = fed.checkpoint();
        assert_eq!(ckpt.participation(), (2, 5));
        let mut rebuilt = FedAvg::new(config, clients, test);
        rebuilt.restore(ckpt);
        assert_eq!(rebuilt.config().clients_per_round, 2);
        assert_eq!(rebuilt.config().local_epochs, 5);
        assert_eq!(fed.run_round(), rebuilt.run_round());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn restore_rejects_oversized_k() {
        let (clients, test) = setup(4, 80);
        let config = FedAvgConfig {
            clients_per_round: 4,
            ..Default::default()
        };
        let ckpt = FedAvg::new(config, clients.clone(), test.clone()).checkpoint();
        let (small_clients, small_test) = setup(2, 40);
        let shrunk = FedAvgConfig {
            clients_per_round: 2,
            ..Default::default()
        };
        let mut fed = FedAvg::new(shrunk, small_clients, small_test);
        fed.restore(ckpt);
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_certain_dropout() {
        let (clients, test) = setup(2, 40);
        let config = FedAvgConfig {
            dropout_prob: 1.0,
            ..Default::default()
        };
        let _ = FedAvg::new(config, clients, test);
    }

    #[test]
    #[should_panic(expected = "exceeds N")]
    fn rejects_k_above_n() {
        let (clients, test) = setup(2, 40);
        let config = FedAvgConfig {
            clients_per_round: 3,
            ..Default::default()
        };
        let _ = FedAvg::new(config, clients, test);
    }

    #[test]
    #[should_panic(expected = "E must be")]
    fn rejects_zero_epochs() {
        let (clients, test) = setup(2, 40);
        let config = FedAvgConfig {
            local_epochs: 0,
            ..Default::default()
        };
        let _ = FedAvg::new(config, clients, test);
    }
}
