//! The in-process FedAvg engine.

use fei_data::Dataset;
use fei_ml::{Evaluation, LocalTrainer, LogisticRegression, Model, SgdConfig, TrainStats};
use fei_sim::DetRng;
use serde::{Deserialize, Serialize};

use crate::aggregate::{aggregate, AggregationRule};
use crate::history::TrainingHistory;
use crate::selection::{ClientSelector, SelectionStrategy};

/// Configuration of a FedAvg run — the knobs of the paper's §III-A loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedAvgConfig {
    /// `K`: edge servers selected per global round.
    pub clients_per_round: usize,
    /// `E`: local SGD epochs per selected server per round.
    pub local_epochs: usize,
    /// Local optimizer settings (Table II defaults).
    pub sgd: SgdConfig,
    /// How participants are chosen each round.
    pub selection: SelectionStrategy,
    /// How uploads are combined (Eq. 2 uniform by default).
    pub aggregation: AggregationRule,
    /// Evaluate the global model every this many rounds (1 = every round).
    pub eval_every: usize,
    /// Probability that a selected server fails to deliver its update this
    /// round (crash, radio loss). The coordinator aggregates the survivors;
    /// a round in which everyone drops leaves the global model unchanged.
    pub dropout_prob: f64,
    /// Seed for selection and dropout randomness.
    pub seed: u64,
}

impl Default for FedAvgConfig {
    fn default() -> Self {
        Self {
            clients_per_round: 1,
            local_epochs: 1,
            sgd: SgdConfig::paper_default(),
            selection: SelectionStrategy::UniformRandom,
            aggregation: AggregationRule::Uniform,
            eval_every: 1,
            dropout_prob: 0.0,
            seed: 0x0FED,
        }
    }
}

/// When a [`FedAvg::run_until`] loop stops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StopCondition {
    /// Hard cap on global rounds.
    pub max_rounds: usize,
    /// Stop early once test accuracy reaches this level (checked on
    /// evaluation rounds).
    pub target_accuracy: Option<f64>,
}

impl StopCondition {
    /// Runs exactly `rounds` rounds.
    pub fn rounds(rounds: usize) -> Self {
        Self { max_rounds: rounds, target_accuracy: None }
    }

    /// Runs until `accuracy` is reached, at most `max_rounds` rounds.
    pub fn accuracy(accuracy: f64, max_rounds: usize) -> Self {
        Self { max_rounds, target_accuracy: Some(accuracy) }
    }
}

/// What happened in one global round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// 0-based round index `t`.
    pub round: usize,
    /// Selected edge servers `𝒦_t`, ascending.
    pub selected: Vec<usize>,
    /// The subset of `selected` that actually delivered an update (equal to
    /// `selected` unless dropout is enabled), ascending.
    pub responded: Vec<usize>,
    /// Per-responding-server local training statistics, in `responded`
    /// order.
    pub local_stats: Vec<TrainStats>,
    /// Loss of the *new* global model over all training data, when this was
    /// an evaluation round.
    pub global_train_loss: Option<f64>,
    /// Test-set evaluation of the new global model, when evaluated.
    pub test_eval: Option<Evaluation>,
}

/// In-process FedAvg over a fixed set of client datasets, generic over the
/// trained [`Model`] (multinomial logistic regression by default).
#[derive(Debug, Clone)]
pub struct FedAvg<M: Model = LogisticRegression> {
    config: FedAvgConfig,
    clients: Vec<Dataset>,
    test: Dataset,
    global: M,
    selector: ClientSelector,
    trainer: LocalTrainer,
    dropout_rng: DetRng,
    round: usize,
}

impl FedAvg<LogisticRegression> {
    /// Creates a run training the paper's model — multinomial logistic
    /// regression starting at zero (`ω₀ = 0`).
    ///
    /// # Panics
    ///
    /// Panics if there are no clients, any client dataset is empty, shapes
    /// are inconsistent, `clients_per_round` is 0 or exceeds the client
    /// count, `local_epochs == 0`, or `eval_every == 0`.
    pub fn new(config: FedAvgConfig, clients: Vec<Dataset>, test: Dataset) -> Self {
        assert!(!clients.is_empty(), "need at least one client dataset");
        let global = LogisticRegression::zeros(clients[0].dim(), clients[0].num_classes());
        Self::with_model(config, clients, test, global)
    }
}

impl<M: Model> FedAvg<M> {
    /// Creates a run from per-client datasets, a test set, and an initial
    /// global model `ω₀` of any [`Model`] type.
    ///
    /// # Panics
    ///
    /// Same validation as [`FedAvg::new`], plus a model/dataset shape check.
    pub fn with_model(
        config: FedAvgConfig,
        clients: Vec<Dataset>,
        test: Dataset,
        global: M,
    ) -> Self {
        assert!(!clients.is_empty(), "need at least one client dataset");
        assert!(
            clients.iter().all(|c| !c.is_empty()),
            "every client needs at least one sample"
        );
        let dim = clients[0].dim();
        let classes = clients[0].num_classes();
        assert!(
            clients.iter().all(|c| c.dim() == dim && c.num_classes() == classes),
            "client datasets must share a shape"
        );
        assert_eq!(test.dim(), dim, "test set dimension mismatch");
        assert_eq!(test.num_classes(), classes, "test set class mismatch");
        assert_eq!(global.dim(), dim, "model dimension mismatch");
        assert_eq!(global.num_classes(), classes, "model class mismatch");
        assert!(config.clients_per_round > 0, "K must be at least 1");
        assert!(
            config.clients_per_round <= clients.len(),
            "K = {} exceeds N = {}",
            config.clients_per_round,
            clients.len()
        );
        assert!(config.local_epochs > 0, "E must be at least 1");
        assert!(config.eval_every > 0, "eval_every must be at least 1");
        assert!(
            (0.0..1.0).contains(&config.dropout_prob),
            "dropout probability must be in [0, 1)"
        );

        let selector = ClientSelector::new(config.selection, clients.len(), config.seed);
        let trainer = LocalTrainer::new(config.sgd.clone());
        let dropout_rng = DetRng::new(config.seed).fork(0xD80);
        Self { config, clients, test, global, selector, trainer, dropout_rng, round: 0 }
    }

    /// The run's configuration.
    pub fn config(&self) -> &FedAvgConfig {
        &self.config
    }

    /// Number of edge servers `N`.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// The current global model.
    pub fn global_model(&self) -> &M {
        &self.global
    }

    /// Rounds completed so far.
    pub fn rounds_completed(&self) -> usize {
        self.round
    }

    /// Loss of the current global model over the union of all client data
    /// (the "global loss value" of Fig. 4).
    pub fn global_train_loss(&self) -> f64 {
        let total: usize = self.clients.iter().map(Dataset::len).sum();
        let weighted: f64 = self
            .clients
            .iter()
            .map(|c| self.global.loss(c) * c.len() as f64)
            .sum();
        weighted / total as f64
    }

    /// Test-set evaluation of the current global model.
    pub fn evaluate(&self) -> Evaluation {
        Evaluation::of(&self.global, &self.test)
    }

    /// Executes one global round (§III-A steps 2–4) and returns its record.
    ///
    /// With dropout enabled, each selected server independently fails to
    /// respond with the configured probability; the coordinator aggregates
    /// whoever answered. A fully dropped round leaves the model unchanged.
    pub fn run_round(&mut self) -> RoundRecord {
        let t = self.round;
        let selected = self.selector.select(t, self.config.clients_per_round);
        let responded: Vec<usize> = selected
            .iter()
            .copied()
            .filter(|_| {
                self.config.dropout_prob == 0.0
                    || self.dropout_rng.next_f64() >= self.config.dropout_prob
            })
            .collect();

        let mut updates = Vec::with_capacity(responded.len());
        let mut local_stats = Vec::with_capacity(responded.len());
        for &client in &responded {
            let mut local = self.global.clone();
            let stats =
                self.trainer
                    .train(&mut local, &self.clients[client], self.config.local_epochs, t);
            updates.push((local.to_flat().to_vec(), self.clients[client].len()));
            local_stats.push(stats);
        }

        if !updates.is_empty() {
            let merged = aggregate(&updates, self.config.aggregation);
            self.global.set_flat(&merged);
        }
        self.round += 1;

        let evaluated = self.round.is_multiple_of(self.config.eval_every);
        RoundRecord {
            round: t,
            selected,
            responded,
            local_stats,
            global_train_loss: evaluated.then(|| self.global_train_loss()),
            test_eval: evaluated.then(|| self.evaluate()),
        }
    }

    /// Runs rounds until `stop` is satisfied, returning the full history.
    pub fn run_until(&mut self, stop: StopCondition) -> TrainingHistory {
        let mut history = TrainingHistory::new();
        for _ in 0..stop.max_rounds {
            let record = self.run_round();
            let reached = match (stop.target_accuracy, &record.test_eval) {
                (Some(target), Some(eval)) => eval.accuracy >= target,
                _ => false,
            };
            history.push(record);
            if reached {
                break;
            }
        }
        history
    }
}

#[cfg(test)]
mod tests {
    use fei_data::{Partition, SyntheticMnist, SyntheticMnistConfig};
    use fei_sim::DetRng;

    use super::*;

    fn setup(n_clients: usize, samples: usize) -> (Vec<Dataset>, Dataset) {
        let gen = SyntheticMnist::new(SyntheticMnistConfig {
            pixel_noise_std: 0.2,
            label_flip_prob: 0.0,
            ..Default::default()
        });
        let train = gen.generate(samples, 0);
        let test = gen.generate(samples / 4, 1);
        let parts = Partition::iid(train.len(), n_clients, &mut DetRng::new(7)).apply(&train);
        (parts, test)
    }

    #[test]
    fn round_selects_k_and_records_stats() {
        let (clients, test) = setup(5, 100);
        let config = FedAvgConfig { clients_per_round: 3, local_epochs: 2, ..Default::default() };
        let mut fed = FedAvg::new(config, clients, test);
        let rec = fed.run_round();
        assert_eq!(rec.round, 0);
        assert_eq!(rec.selected.len(), 3);
        assert_eq!(rec.responded, rec.selected);
        assert_eq!(rec.local_stats.len(), 3);
        assert!(rec.local_stats.iter().all(|s| s.epochs_run == 2));
        assert!(rec.test_eval.is_some());
        assert_eq!(fed.rounds_completed(), 1);
    }

    #[test]
    fn training_improves_loss_and_accuracy() {
        let (clients, test) = setup(4, 400);
        let config = FedAvgConfig {
            clients_per_round: 4,
            local_epochs: 5,
            sgd: SgdConfig::new(0.3, 1.0, None),
            ..Default::default()
        };
        let mut fed = FedAvg::new(config, clients, test);
        let initial_loss = fed.global_train_loss();
        let initial_acc = fed.evaluate().accuracy;
        let history = fed.run_until(StopCondition::rounds(15));
        assert_eq!(history.len(), 15);
        let final_rec = history.last().unwrap();
        assert!(final_rec.global_train_loss.unwrap() < initial_loss * 0.7);
        assert!(final_rec.test_eval.unwrap().accuracy > initial_acc);
    }

    #[test]
    fn k_equals_n_with_e1_matches_centralized_gradient_direction() {
        // With K = N, E = 1, uniform aggregation on an exactly even split,
        // FedAvg's first round equals one full-batch gradient step on the
        // union (the mini-batch-SGD equivalence the paper cites).
        let (clients, test) = setup(4, 400);
        let union: Dataset = {
            let mut u = Dataset::empty(clients[0].dim(), clients[0].num_classes());
            for c in &clients {
                for (x, y) in c.iter() {
                    u.push(x, y);
                }
            }
            u
        };
        let config = FedAvgConfig {
            clients_per_round: 4,
            local_epochs: 1,
            sgd: SgdConfig::new(0.01, 1.0, None),
            ..Default::default()
        };
        let mut fed = FedAvg::new(config, clients, test);
        fed.run_round();

        let mut central = LogisticRegression::zeros(union.dim(), union.num_classes());
        let all: Vec<usize> = (0..union.len()).collect();
        let (_, grad) = central.loss_and_gradient(&union, &all);
        central.apply_gradient(&grad, 0.01);

        let dist = fed.global_model().param_distance_sq(&central);
        assert!(dist < 1e-12, "distance {dist}");
    }

    #[test]
    fn runs_are_reproducible_per_seed() {
        let (clients, test) = setup(6, 120);
        let config = FedAvgConfig { clients_per_round: 2, local_epochs: 1, ..Default::default() };
        let mut a = FedAvg::new(config.clone(), clients.clone(), test.clone());
        let mut b = FedAvg::new(config, clients, test);
        let ha = a.run_until(StopCondition::rounds(5));
        let hb = b.run_until(StopCondition::rounds(5));
        assert_eq!(ha.records(), hb.records());
        assert_eq!(a.global_model(), b.global_model());
    }

    #[test]
    fn early_stop_on_target_accuracy() {
        let (clients, test) = setup(4, 400);
        let config = FedAvgConfig {
            clients_per_round: 4,
            local_epochs: 5,
            sgd: SgdConfig::new(0.3, 1.0, None),
            ..Default::default()
        };
        let mut fed = FedAvg::new(config, clients, test);
        let history = fed.run_until(StopCondition::accuracy(0.5, 500));
        assert!(history.len() < 500, "should stop before the cap");
        assert!(history.last().unwrap().test_eval.unwrap().accuracy >= 0.5);
    }

    #[test]
    fn eval_every_skips_evaluations() {
        let (clients, test) = setup(3, 60);
        let config = FedAvgConfig {
            clients_per_round: 1,
            local_epochs: 1,
            eval_every: 3,
            ..Default::default()
        };
        let mut fed = FedAvg::new(config, clients, test);
        let history = fed.run_until(StopCondition::rounds(6));
        let evaluated: Vec<bool> =
            history.records().iter().map(|r| r.test_eval.is_some()).collect();
        assert_eq!(evaluated, vec![false, false, true, false, false, true]);
    }

    #[test]
    fn dropout_shrinks_responders_but_training_continues() {
        let (clients, test) = setup(6, 180);
        let config = FedAvgConfig {
            clients_per_round: 6,
            local_epochs: 1,
            dropout_prob: 0.4,
            ..Default::default()
        };
        let mut fed = FedAvg::new(config, clients, test);
        let mut dropped_any = false;
        let initial_loss = fed.global_train_loss();
        for _ in 0..10 {
            let rec = fed.run_round();
            assert!(rec.responded.iter().all(|c| rec.selected.contains(c)));
            assert_eq!(rec.responded.len(), rec.local_stats.len());
            dropped_any |= rec.responded.len() < rec.selected.len();
        }
        assert!(dropped_any, "40% dropout over 60 draws must drop someone");
        assert!(fed.global_train_loss() < initial_loss, "training still progresses");
    }

    #[test]
    fn fully_dropped_round_is_a_no_op() {
        let (clients, test) = setup(2, 40);
        let config = FedAvgConfig {
            clients_per_round: 1,
            local_epochs: 1,
            dropout_prob: 0.999_999,
            ..Default::default()
        };
        let mut fed = FedAvg::new(config, clients, test);
        let before = fed.global_model().clone();
        let rec = fed.run_round();
        assert!(rec.responded.is_empty());
        assert_eq!(fed.global_model(), &before);
        assert_eq!(fed.rounds_completed(), 1);
    }

    #[test]
    fn zero_dropout_is_the_default_and_identical() {
        let (clients, test) = setup(4, 80);
        let base = FedAvgConfig { clients_per_round: 2, local_epochs: 1, ..Default::default() };
        let explicit = FedAvgConfig { dropout_prob: 0.0, ..base.clone() };
        let mut a = FedAvg::new(base, clients.clone(), test.clone());
        let mut b = FedAvg::new(explicit, clients, test);
        for _ in 0..3 {
            assert_eq!(a.run_round(), b.run_round());
        }
    }

    #[test]
    #[should_panic(expected = "dropout probability")]
    fn rejects_certain_dropout() {
        let (clients, test) = setup(2, 40);
        let config = FedAvgConfig { dropout_prob: 1.0, ..Default::default() };
        let _ = FedAvg::new(config, clients, test);
    }

    #[test]
    #[should_panic(expected = "exceeds N")]
    fn rejects_k_above_n() {
        let (clients, test) = setup(2, 40);
        let config = FedAvgConfig { clients_per_round: 3, ..Default::default() };
        let _ = FedAvg::new(config, clients, test);
    }

    #[test]
    #[should_panic(expected = "E must be")]
    fn rejects_zero_epochs() {
        let (clients, test) = setup(2, 40);
        let config = FedAvgConfig { local_epochs: 0, ..Default::default() };
        let _ = FedAvg::new(config, clients, test);
    }
}
