//! Asynchronous federated averaging.
//!
//! The paper's FedAvg is synchronous: every round barriers on `K` uploads,
//! so one slow device stalls the fleet (quantified by the straggler
//! ablation). The asynchronous variant removes the barrier: each edge server
//! trains continuously against its latest snapshot of the global model and
//! the coordinator merges each update the moment it arrives, discounted by its
//! *staleness* (how many merges happened since the snapshot was taken):
//!
//! ```text
//! w = mixing_rate / (1 + staleness)^staleness_exponent
//! global ← (1 − w)·global + w·local
//! ```
//!
//! Arrival order is driven by per-client job durations on the `fei-sim`
//! virtual clock, so runs are deterministic and wall-clock comparisons
//! against the synchronous engine are meaningful.

use fei_data::Dataset;
use fei_ml::{Evaluation, LocalTrainer, LogisticRegression, Model, SgdConfig};
use fei_proto::{control_round_bytes, DeviceReport, LivenessTracker, RoundMachine, RoundPolicy};
use fei_sim::{SimDuration, SimTime, Simulation};
use serde::{Deserialize, Serialize};

/// Configuration of an asynchronous run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsyncConfig {
    /// Local SGD epochs per job (`E`).
    pub local_epochs: usize,
    /// Local optimizer settings.
    pub sgd: SgdConfig,
    /// Base mixing rate `α ∈ (0, 1]` applied to a fresh (staleness-0) update.
    pub mixing_rate: f64,
    /// Staleness-discount exponent `a ≥ 0`; `0` ignores staleness.
    pub staleness_exponent: f64,
    /// Wall-clock duration of one local job per client, seconds. Length
    /// fixes the fleet size; unequal values model heterogeneous hardware.
    pub job_seconds: Vec<f64>,
    /// Evaluate the global model every this many applied updates.
    pub eval_every: usize,
}

impl AsyncConfig {
    /// A homogeneous fleet of `n` clients with `job_seconds` each and the
    /// common staleness discount `α = 0.6, a = 0.5`.
    pub fn uniform(n: usize, job_seconds: f64, local_epochs: usize) -> Self {
        Self {
            local_epochs,
            sgd: SgdConfig::paper_default(),
            mixing_rate: 0.6,
            staleness_exponent: 0.5,
            job_seconds: vec![job_seconds; n],
            eval_every: 1,
        }
    }
}

/// One applied asynchronous update.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsyncUpdateRecord {
    /// 0-based index of the merge.
    pub update: usize,
    /// Client that delivered it.
    pub client: usize,
    /// Merges applied between the client's snapshot and its delivery.
    pub staleness: usize,
    /// Mixing weight actually used.
    pub weight: f64,
    /// Virtual time of the merge.
    pub at: SimTime,
    /// Test evaluation after the merge, on evaluation updates.
    pub test_eval: Option<Evaluation>,
}

/// History of an asynchronous run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AsyncHistory {
    records: Vec<AsyncUpdateRecord>,
}

impl AsyncHistory {
    /// All records, in merge order.
    pub fn records(&self) -> &[AsyncUpdateRecord] {
        &self.records
    }

    /// Number of merges recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether anything was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Virtual time at which test accuracy first reached `target`, if ever.
    pub fn time_to_accuracy(&self, target: f64) -> Option<SimTime> {
        self.records
            .iter()
            .find(|r| r.test_eval.is_some_and(|e| e.accuracy >= target))
            .map(|r| r.at)
    }

    /// Number of merges until test accuracy first reached `target`.
    pub fn updates_to_accuracy(&self, target: f64) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.test_eval.is_some_and(|e| e.accuracy >= target))
            .map(|r| r.update + 1)
    }

    /// Largest staleness observed.
    pub fn max_staleness(&self) -> usize {
        self.records.iter().map(|r| r.staleness).max().unwrap_or(0)
    }

    /// Per-client update counts (length = fleet size implied by the run).
    pub fn updates_per_client(&self, n: usize) -> Vec<usize> {
        let mut counts = vec![0usize; n];
        for r in &self.records {
            counts[r.client] += 1;
        }
        counts
    }
}

/// The asynchronous coordinator.
#[derive(Debug, Clone)]
pub struct AsyncFedAvg<M: Model = LogisticRegression> {
    config: AsyncConfig,
    clients: Vec<Dataset>,
    test: Dataset,
    global: M,
    trainer: LocalTrainer,
    /// Control-plane bytes of the protocol: each merge is a one-client
    /// round (selection notice down, heartbeat up, commit back down).
    control_bytes: u64,
    /// Heartbeat leases that lapsed because a client went more than
    /// `4 · fleet` merges without delivering (the client rejoins on its
    /// next delivery; its merges still apply, discounted by staleness).
    lease_expiries: u64,
}

impl AsyncFedAvg<LogisticRegression> {
    /// Creates a run training a zero-initialized logistic regression.
    ///
    /// # Panics
    ///
    /// Same validation as [`AsyncFedAvg::with_model`].
    pub fn new(config: AsyncConfig, clients: Vec<Dataset>, test: Dataset) -> Self {
        assert!(!clients.is_empty(), "need at least one client dataset");
        let global = LogisticRegression::zeros(clients[0].dim(), clients[0].num_classes());
        Self::with_model(config, clients, test, global)
    }
}

impl<M: Model> AsyncFedAvg<M> {
    /// Creates a run from client datasets, a test set, and an initial model.
    ///
    /// # Panics
    ///
    /// Panics on empty/mismatched datasets, a `job_seconds` length different
    /// from the client count or containing non-positive values,
    /// `mixing_rate` outside `(0, 1]`, a negative `staleness_exponent`, or
    /// zero `local_epochs`/`eval_every`.
    pub fn with_model(
        config: AsyncConfig,
        clients: Vec<Dataset>,
        test: Dataset,
        global: M,
    ) -> Self {
        assert!(!clients.is_empty(), "need at least one client dataset");
        assert!(
            clients.iter().all(|c| !c.is_empty()),
            "every client needs data"
        );
        let dim = clients[0].dim();
        let classes = clients[0].num_classes();
        assert!(
            clients
                .iter()
                .all(|c| c.dim() == dim && c.num_classes() == classes),
            "client datasets must share a shape"
        );
        assert_eq!(test.dim(), dim, "test set dimension mismatch");
        assert_eq!(global.dim(), dim, "model dimension mismatch");
        assert_eq!(
            config.job_seconds.len(),
            clients.len(),
            "one job duration per client"
        );
        assert!(
            config.job_seconds.iter().all(|&s| s.is_finite() && s > 0.0),
            "job durations must be positive"
        );
        assert!(
            config.mixing_rate > 0.0 && config.mixing_rate <= 1.0,
            "mixing rate must be in (0, 1]"
        );
        assert!(
            config.staleness_exponent >= 0.0,
            "staleness exponent must be non-negative"
        );
        assert!(config.local_epochs > 0, "E must be at least 1");
        assert!(config.eval_every > 0, "eval_every must be at least 1");
        let trainer = LocalTrainer::new(config.sgd.clone());
        Self {
            config,
            clients,
            test,
            global,
            trainer,
            control_bytes: 0,
            lease_expiries: 0,
        }
    }

    /// The run's configuration.
    pub fn config(&self) -> &AsyncConfig {
        &self.config
    }

    /// The current global model.
    pub fn global_model(&self) -> &M {
        &self.global
    }

    /// Control-plane bytes the protocol moved so far (one selection
    /// notice, heartbeat, and commit per applied merge).
    pub fn control_bytes(&self) -> u64 {
        self.control_bytes
    }

    /// Heartbeat leases that lapsed so far: merges by a client that had
    /// gone silent past its lease and had to rejoin before delivering.
    pub fn lease_expiries(&self) -> u64 {
        self.lease_expiries
    }

    /// Runs until `max_updates` merges have been applied (or until
    /// `target_accuracy` is reached, when given), returning the history.
    pub fn run(&mut self, max_updates: usize, target_accuracy: Option<f64>) -> AsyncHistory {
        let n = self.clients.len();
        let mut sim: Simulation<usize> = Simulation::new();
        // Every client starts training against version 0 immediately.
        let mut snapshot_version = vec![0usize; n];
        let mut snapshots: Vec<M> = vec![self.global.clone(); n];
        for client in 0..n {
            sim.schedule_after(
                SimDuration::from_secs_f64(self.config.job_seconds[client]),
                client,
            );
        }

        let mut history = AsyncHistory::default();
        let mut version = 0usize;
        // Heartbeat leases on the merge clock: a client is expected to
        // deliver at least every 4·n merges (four full waves of an equal
        // fleet) or its lease lapses and it rejoins on the next delivery.
        let mut liveness = LivenessTracker::new(4 * n as u64);
        for client in 0..n {
            liveness.register(client as u64, 0);
        }
        while history.len() < max_updates {
            let Some((now, client)) = sim.step() else {
                break;
            };
            // The client finished a job it started against snapshot_version.
            let mut local = snapshots[client].clone();
            // Deterministic per-client round id: its own snapshot version.
            self.trainer.train(
                &mut local,
                &self.clients[client],
                self.config.local_epochs,
                snapshot_version[client],
            );

            let staleness = version - snapshot_version[client];

            // Each arrival is a degenerate one-client round driven through
            // the shared fei-proto decision core: quorum 1, no deadline —
            // asynchrony discounts staleness instead of rejecting it.
            liveness.expire(version as u64);
            if liveness.contains(client as u64) {
                let _ = liveness.beat(client as u64, version as u64);
            } else {
                // The lease lapsed while the job ran; the client rejoins.
                self.lease_expiries += 1;
                liveness.register(client as u64, version as u64);
            }
            let policy = RoundPolicy {
                k: 1,
                over_select: 0,
                quorum: 1,
                deadline_s: None,
            };
            let Ok(mut machine) = RoundMachine::begin(policy, version as u64, 1) else {
                // Unreachable: one delivering client satisfies a quorum of 1.
                break;
            };
            machine.offer(
                client,
                DeviceReport {
                    straggle_factor: 1.0 + staleness as f64,
                    delivered: true,
                    arrival_s: 0.0,
                },
            );
            let closed = machine.close();
            if !closed.quorum_met {
                break;
            }
            self.control_bytes += control_round_bytes(1, 1, true, 1);

            let weight = self.config.mixing_rate
                / (1.0 + staleness as f64).powf(self.config.staleness_exponent);
            merge_into(&mut self.global, &local, weight);
            version += 1;

            let update = history.len();
            let evaluated = (update + 1) % self.config.eval_every == 0;
            let test_eval = evaluated.then(|| Evaluation::of(&self.global, &self.test));
            history.records.push(AsyncUpdateRecord {
                update,
                client,
                staleness,
                weight,
                at: now,
                test_eval,
            });

            let reached = match (target_accuracy, test_eval) {
                (Some(t), Some(e)) => e.accuracy >= t,
                _ => false,
            };
            if reached {
                break;
            }

            // The client snapshots the fresh global model and goes again.
            snapshots[client] = self.global.clone();
            snapshot_version[client] = version;
            sim.schedule_after(
                SimDuration::from_secs_f64(self.config.job_seconds[client]),
                client,
            );
        }
        history
    }
}

/// `global ← (1 − w)·global + w·local` over the flat parameters.
fn merge_into<M: Model>(global: &mut M, local: &M, weight: f64) {
    let merged: Vec<f64> = global
        .to_flat()
        .iter()
        .zip(local.to_flat())
        .map(|(g, l)| (1.0 - weight) * g + weight * l)
        .collect();
    global.set_flat(&merged);
}

#[cfg(test)]
mod tests {
    use fei_data::{Partition, SyntheticMnist, SyntheticMnistConfig};
    use fei_sim::DetRng;

    use super::*;

    fn setup(n: usize, samples: usize) -> (Vec<Dataset>, Dataset) {
        let gen = SyntheticMnist::new(SyntheticMnistConfig {
            pixel_noise_std: 0.2,
            label_flip_prob: 0.0,
            ..Default::default()
        });
        let train = gen.generate(samples, 0);
        let test = gen.generate(samples / 4, 1);
        let parts = Partition::iid(train.len(), n, &mut DetRng::new(3)).apply(&train);
        (parts, test)
    }

    fn fast_config(n: usize) -> AsyncConfig {
        AsyncConfig {
            sgd: SgdConfig::new(0.1, 1.0, None),
            ..AsyncConfig::uniform(n, 1.0, 5)
        }
    }

    #[test]
    fn async_training_converges() {
        let (clients, test) = setup(4, 240);
        let mut run = AsyncFedAvg::new(fast_config(4), clients, test);
        let history = run.run(200, Some(0.8));
        let reached = history.updates_to_accuracy(0.8);
        assert!(reached.is_some(), "async run never reached 80%");
        assert!(history.len() <= 200);
    }

    #[test]
    fn staleness_is_bounded_by_fleet_size_under_equal_speeds() {
        // With equal job durations every client delivers once per "wave",
        // so at most n − 1 merges happen between snapshot and delivery.
        let (clients, test) = setup(5, 100);
        let mut run = AsyncFedAvg::new(fast_config(5), clients, test);
        let history = run.run(60, None);
        assert!(
            history.max_staleness() <= 5,
            "staleness {}",
            history.max_staleness()
        );
        // The very first delivery has staleness 0.
        assert_eq!(history.records()[0].staleness, 0);
    }

    #[test]
    fn staleness_discount_shrinks_weights() {
        let (clients, test) = setup(4, 80);
        let config = AsyncConfig {
            staleness_exponent: 1.0,
            ..fast_config(4)
        };
        let mut run = AsyncFedAvg::new(config, clients, test);
        let history = run.run(40, None);
        for r in history.records() {
            let expected = 0.6 / (1.0 + r.staleness as f64);
            assert!((r.weight - expected).abs() < 1e-12);
            assert!(r.weight <= 0.6);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let (clients, test) = setup(3, 90);
        let mut a = AsyncFedAvg::new(fast_config(3), clients.clone(), test.clone());
        let mut b = AsyncFedAvg::new(fast_config(3), clients, test);
        let ha = a.run(30, None);
        let hb = b.run(30, None);
        assert_eq!(ha, hb);
        assert_eq!(a.global_model(), b.global_model());
    }

    #[test]
    fn slow_clients_contribute_fewer_updates() {
        let (clients, test) = setup(3, 90);
        let config = AsyncConfig {
            job_seconds: vec![1.0, 1.0, 10.0],
            ..fast_config(3)
        };
        let mut run = AsyncFedAvg::new(config, clients, test);
        let history = run.run(60, None);
        let counts = history.updates_per_client(3);
        assert!(
            counts[2] < counts[0] / 3,
            "slow client contributed {counts:?}"
        );
        // Yet the fleet keeps merging at full speed: virtual time for 60
        // updates stays near 30 waves of the fast pair.
        let last = history.records().last().unwrap().at;
        assert!(last < fei_sim::SimTime::from_secs_f64(35.0), "took {last}");
    }

    #[test]
    fn virtual_clock_orders_merges() {
        let (clients, test) = setup(2, 60);
        let config = AsyncConfig {
            job_seconds: vec![1.0, 2.5],
            ..fast_config(2)
        };
        let mut run = AsyncFedAvg::new(config, clients, test);
        let history = run.run(10, None);
        // Timestamps are non-decreasing and the fast client leads 2.5:1.
        for pair in history.records().windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        let counts = history.updates_per_client(2);
        assert!(counts[0] > counts[1]);
    }

    #[test]
    fn control_bytes_count_one_protocol_round_per_merge() {
        let (clients, test) = setup(3, 90);
        let mut run = AsyncFedAvg::new(fast_config(3), clients, test);
        let history = run.run(30, None);
        let per_merge = fei_proto::control_round_bytes(1, 1, true, 1);
        assert_eq!(run.control_bytes(), history.len() as u64 * per_merge);
        // An equal-speed fleet never outruns its leases.
        assert_eq!(run.lease_expiries(), 0);
    }

    #[test]
    fn slow_client_lease_lapses_and_rejoins() {
        // A 20x-slow client goes ~40 merges between deliveries while the
        // lease allows 4·n = 12: it expires and rejoins each time — and its
        // merges still apply, staleness-discounted, exactly as before.
        let (clients, test) = setup(3, 90);
        let config = AsyncConfig {
            job_seconds: vec![1.0, 1.0, 20.0],
            ..fast_config(3)
        };
        let mut run = AsyncFedAvg::new(config, clients, test);
        let history = run.run(80, None);
        assert!(run.lease_expiries() >= 1, "slow client never lapsed");
        assert!(
            history.updates_per_client(3)[2] >= 1,
            "lapsed client must still contribute after rejoining"
        );
    }

    #[test]
    #[should_panic(expected = "one job duration per client")]
    fn rejects_mismatched_speed_vector() {
        let (clients, test) = setup(3, 60);
        let config = AsyncConfig::uniform(2, 1.0, 1);
        let _ = AsyncFedAvg::new(config, clients, test);
    }

    #[test]
    #[should_panic(expected = "mixing rate")]
    fn rejects_zero_mixing() {
        let (clients, test) = setup(2, 60);
        let config = AsyncConfig {
            mixing_rate: 0.0,
            ..AsyncConfig::uniform(2, 1.0, 1)
        };
        let _ = AsyncFedAvg::new(config, clients, test);
    }
}
