//! Client (edge-server) selection strategies.
//!
//! The paper selects a uniformly random subset `𝒦_t` of `K` edge servers in
//! each round (§III-A step 2). Round-robin and all-clients strategies are
//! provided for ablations.

use fei_sim::DetRng;
use serde::{Deserialize, Serialize};

/// How the coordinator picks the `K` participants of each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SelectionStrategy {
    /// Uniformly random `K`-subset per round (the paper's setting).
    #[default]
    UniformRandom,
    /// Deterministic rotation: round `t` takes clients
    /// `{(tK) mod N, …, (tK + K - 1) mod N}`.
    RoundRobin,
}

/// Stateful selector bound to a population size and strategy.
#[derive(Debug, Clone)]
pub struct ClientSelector {
    strategy: SelectionStrategy,
    num_clients: usize,
    rng: DetRng,
}

impl ClientSelector {
    /// Creates a selector over `num_clients` clients.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients == 0`.
    pub fn new(strategy: SelectionStrategy, num_clients: usize, seed: u64) -> Self {
        assert!(num_clients > 0, "need at least one client");
        Self {
            strategy,
            num_clients,
            rng: DetRng::new(seed).fork(0x5E1E),
        }
    }

    /// The population size.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Selects `k` distinct client indices for round `round`, sorted
    /// ascending.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `k > num_clients`.
    pub fn select(&mut self, round: usize, k: usize) -> Vec<usize> {
        assert!(k > 0, "must select at least one client");
        assert!(
            k <= self.num_clients,
            "cannot select {k} of {} clients",
            self.num_clients
        );
        let mut chosen = match self.strategy {
            SelectionStrategy::UniformRandom => self.rng.sample_indices(self.num_clients, k),
            SelectionStrategy::RoundRobin => {
                (0..k).map(|i| (round * k + i) % self.num_clients).collect()
            }
        };
        chosen.sort_unstable();
        chosen.dedup();
        // Round-robin with k close to N can wrap onto itself; pad from the
        // remaining clients deterministically.
        let mut next = 0;
        while chosen.len() < k {
            if !chosen.contains(&next) {
                chosen.push(next);
                chosen.sort_unstable();
            }
            next += 1;
        }
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_selection_is_distinct_sorted_subset() {
        let mut sel = ClientSelector::new(SelectionStrategy::UniformRandom, 20, 1);
        for round in 0..50 {
            let s = sel.select(round, 10);
            assert_eq!(s.len(), 10);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&c| c < 20));
        }
    }

    #[test]
    fn random_selection_varies_across_rounds() {
        let mut sel = ClientSelector::new(SelectionStrategy::UniformRandom, 20, 1);
        let a = sel.select(0, 5);
        let b = sel.select(1, 5);
        // Identical selections in consecutive rounds are possible but
        // astronomically unlikely over 10 draws.
        let c = sel.select(2, 5);
        assert!(a != b || b != c);
    }

    #[test]
    fn random_selection_reproducible_per_seed() {
        let mut a = ClientSelector::new(SelectionStrategy::UniformRandom, 20, 9);
        let mut b = ClientSelector::new(SelectionStrategy::UniformRandom, 20, 9);
        for round in 0..10 {
            assert_eq!(a.select(round, 7), b.select(round, 7));
        }
    }

    #[test]
    fn round_robin_rotates() {
        let mut sel = ClientSelector::new(SelectionStrategy::RoundRobin, 6, 0);
        assert_eq!(sel.select(0, 2), vec![0, 1]);
        assert_eq!(sel.select(1, 2), vec![2, 3]);
        assert_eq!(sel.select(2, 2), vec![4, 5]);
        assert_eq!(sel.select(3, 2), vec![0, 1]);
    }

    #[test]
    fn round_robin_covers_everyone_fairly() {
        let mut sel = ClientSelector::new(SelectionStrategy::RoundRobin, 6, 0);
        let mut counts = [0usize; 6];
        for round in 0..12 {
            for c in sel.select(round, 2) {
                counts[c] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn round_robin_wrap_pads_to_k_distinct() {
        let mut sel = ClientSelector::new(SelectionStrategy::RoundRobin, 5, 0);
        // k=4, round 1: raw picks {4,0,1,2} -> fine; round with wrap onto
        // itself (k=5 over 5 clients always picks everything).
        let s = sel.select(3, 5);
        assert_eq!(s, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn select_all_is_identity_set() {
        let mut sel = ClientSelector::new(SelectionStrategy::UniformRandom, 8, 3);
        assert_eq!(sel.select(0, 8), (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn rejects_oversized_k() {
        let mut sel = ClientSelector::new(SelectionStrategy::UniformRandom, 3, 0);
        let _ = sel.select(0, 4);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn rejects_zero_selection() {
        let mut sel = ClientSelector::new(SelectionStrategy::UniformRandom, 3, 0);
        let _ = sel.select(0, 0);
    }
}
