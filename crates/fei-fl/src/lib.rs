//! FedAvg federated-learning runtime.
//!
//! Implements the four-step training loop of §III-A: the coordinator selects
//! `K` of `N` edge servers, dispatches the global model, each selected server
//! runs `E` local SGD epochs on its own data, uploads its model, and the
//! coordinator averages the uploads (Eq. 2).
//!
//! Two execution engines share the same configuration and produce identical
//! results for the same seed:
//!
//! * [`fedavg::FedAvg`] — in-process, single-threaded; used by experiments
//!   that sweep many `(K, E)` combinations;
//! * [`runtime::ThreadedFedAvg`] — one OS thread per edge server, with model
//!   parameters serialized into byte frames (via `fei-net`) and moved over
//!   crossbeam channels, exercising the communication code path a real
//!   deployment would use.
//!
//! A third, barrier-free engine — [`asynchronous::AsyncFedAvg`] — merges
//! staleness-discounted updates as they arrive on a virtual clock.
//!
//! # Example
//!
//! ```
//! use fei_data::{Partition, SyntheticMnist, SyntheticMnistConfig};
//! use fei_fl::{FedAvg, FedAvgConfig};
//! use fei_sim::DetRng;
//!
//! let gen = SyntheticMnist::new(SyntheticMnistConfig::default());
//! let train = gen.generate(200, 0);
//! let test = gen.generate(50, 1);
//! let parts = Partition::iid(train.len(), 4, &mut DetRng::new(1)).apply(&train);
//!
//! let config = FedAvgConfig { clients_per_round: 2, local_epochs: 3, ..Default::default() };
//! let mut fed = FedAvg::new(config, parts, test);
//! let record = fed.run_round();
//! assert_eq!(record.selected.len(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod adversary;
pub mod aggregate;
pub mod asynchronous;
pub mod error;
pub mod fault;
pub mod fedavg;
pub mod history;
pub mod resume;
pub mod robust;
pub mod runtime;
pub mod selection;

pub use adversary::{Adversary, AdversarySpec, AttackBehavior};
pub use aggregate::{aggregate, try_aggregate, AggregateError, AggregationRule};
pub use asynchronous::{AsyncConfig, AsyncFedAvg, AsyncHistory, AsyncUpdateRecord};
pub use error::FlError;
pub use fault::{FaultInjector, FaultSpec, RetryPolicy, UploadOutcome};
pub use fedavg::{
    FedAvg, FedAvgConfig, RoundFaultStats, RoundOutcome, RoundRecord, StopCondition,
    ToleranceConfig,
};
pub use fei_net::wire::{Encoding, WireConfig};
pub use history::TrainingHistory;
pub use resume::EngineCheckpoint;
pub use robust::{
    robust_aggregate, DefenseConfig, RobustRule, ScreenPolicy, ScreenReason, ScreenReport,
    UpdateScreen,
};
pub use runtime::{ThreadedFedAvg, TransportStats};
pub use selection::{ClientSelector, SelectionStrategy};
