//! Training histories: the raw material of Fig. 4's convergence curves.

use serde::{Deserialize, Serialize};

use crate::fedavg::RoundRecord;

/// An ordered collection of [`RoundRecord`]s from one FedAvg run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TrainingHistory {
    records: Vec<RoundRecord>,
    /// Accuracy target the run was asked to reach but did not before its
    /// round cap expired.
    missed_target: Option<f64>,
}

impl TrainingHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a round record.
    pub fn push(&mut self, record: RoundRecord) {
        self.records.push(record);
    }

    /// All records, in round order.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Number of rounds recorded.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the history is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The last record, if any.
    pub fn last(&self) -> Option<&RoundRecord> {
        self.records.last()
    }

    /// Marks this run as having missed `target` accuracy within its round
    /// cap. Set by `run_until` when the stop condition's target was never
    /// reached.
    pub fn record_missed_target(&mut self, target: f64) {
        self.missed_target = Some(target);
    }

    /// The accuracy target this run failed to reach, if any. `None` means
    /// the run either had no target or reached it.
    pub fn missed_target(&self) -> Option<f64> {
        self.missed_target
    }

    /// Best test accuracy observed across evaluation rounds.
    pub fn best_accuracy(&self) -> Option<f64> {
        self.accuracy_curve()
            .into_iter()
            .map(|(_, a)| a)
            .max_by(f64::total_cmp)
    }

    /// Rounds that committed an aggregate (fully or partially).
    pub fn committed_rounds(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.outcome.committed())
            .count()
    }

    /// Rounds abandoned for missing quorum — training time and energy spent
    /// for no model progress.
    pub fn abandoned_rounds(&self) -> usize {
        self.records.len() - self.committed_rounds()
    }

    /// The first round (1-based count of rounds run) at which test accuracy
    /// reached `target`, or `None` if it never did. This is the paper's
    /// `T(target)` — the required number of global coordinations.
    pub fn rounds_to_accuracy(&self, target: f64) -> Option<usize> {
        self.records
            .iter()
            .find(|r| r.test_eval.is_some_and(|e| e.accuracy >= target))
            .map(|r| r.round + 1)
    }

    /// Test-accuracy curve as `(round, accuracy)` points (evaluation rounds
    /// only).
    pub fn accuracy_curve(&self) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .filter_map(|r| r.test_eval.map(|e| (r.round, e.accuracy)))
            .collect()
    }

    /// Global-train-loss curve as `(round, loss)` points (evaluation rounds
    /// only).
    pub fn loss_curve(&self) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .filter_map(|r| r.global_train_loss.map(|l| (r.round, l)))
            .collect()
    }

    /// Total local epochs executed across all servers and rounds
    /// (`≈ E · K · T`, the paper's total-gradient-rounds accounting).
    pub fn total_local_epochs(&self) -> usize {
        self.records
            .iter()
            .flat_map(|r| &r.local_stats)
            .map(|s| s.epochs_run)
            .sum()
    }

    /// Whether the global-train-loss curve is non-increasing within
    /// `tolerance` — the monotone-improvement assumption of the paper's
    /// Proposition 2.
    pub fn is_loss_monotone(&self, tolerance: f64) -> bool {
        self.loss_curve()
            .windows(2)
            .all(|w| w[1].1 <= w[0].1 + tolerance)
    }

    /// Mean global train loss over evaluated rounds — `F(ω̄_T)`'s empirical
    /// counterpart. Proposition 2: under monotone improvement this average
    /// dominates the final loss, so a bound on the average bounds the final
    /// model too. Returns `None` without evaluations.
    pub fn mean_loss(&self) -> Option<f64> {
        let curve = self.loss_curve();
        if curve.is_empty() {
            return None;
        }
        Some(curve.iter().map(|&(_, l)| l).sum::<f64>() / curve.len() as f64)
    }

    /// Final global train loss, if evaluated.
    pub fn final_loss(&self) -> Option<f64> {
        self.loss_curve().last().map(|&(_, l)| l)
    }

    /// Total gradient steps executed across all servers and rounds.
    pub fn total_gradient_steps(&self) -> usize {
        self.records
            .iter()
            .flat_map(|r| &r.local_stats)
            .map(|s| s.gradient_steps)
            .sum()
    }
}

impl FromIterator<RoundRecord> for TrainingHistory {
    fn from_iter<I: IntoIterator<Item = RoundRecord>>(iter: I) -> Self {
        Self {
            records: iter.into_iter().collect(),
            missed_target: None,
        }
    }
}

impl Extend<RoundRecord> for TrainingHistory {
    fn extend<I: IntoIterator<Item = RoundRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use fei_ml::Evaluation;

    use super::*;

    fn record(round: usize, acc: Option<f64>, loss: Option<f64>) -> RoundRecord {
        RoundRecord {
            round,
            selected: vec![0],
            responded: vec![0],
            local_stats: vec![fei_ml::TrainStats {
                epochs_run: 2,
                gradient_steps: 2,
                initial_loss: 1.0,
                final_loss: 0.9,
                samples: 10,
            }],
            global_train_loss: loss,
            test_eval: acc.map(|a| Evaluation {
                loss: loss.unwrap_or(1.0),
                accuracy: a,
            }),
            outcome: crate::fedavg::RoundOutcome::Full,
            faults: crate::fedavg::RoundFaultStats::default(),
        }
    }

    #[test]
    fn rounds_to_accuracy_finds_first_crossing() {
        let h: TrainingHistory = vec![
            record(0, Some(0.5), Some(1.0)),
            record(1, Some(0.85), Some(0.6)),
            record(2, Some(0.91), Some(0.4)),
            record(3, Some(0.89), Some(0.45)),
        ]
        .into_iter()
        .collect();
        assert_eq!(h.rounds_to_accuracy(0.9), Some(3));
        assert_eq!(h.rounds_to_accuracy(0.5), Some(1));
        assert_eq!(h.rounds_to_accuracy(0.99), None);
    }

    #[test]
    fn curves_skip_unevaluated_rounds() {
        let h: TrainingHistory = vec![
            record(0, None, None),
            record(1, Some(0.7), Some(0.8)),
            record(2, None, None),
            record(3, Some(0.8), Some(0.6)),
        ]
        .into_iter()
        .collect();
        assert_eq!(h.accuracy_curve(), vec![(1, 0.7), (3, 0.8)]);
        assert_eq!(h.loss_curve(), vec![(1, 0.8), (3, 0.6)]);
    }

    #[test]
    fn epoch_accounting() {
        let h: TrainingHistory = vec![record(0, None, None), record(1, None, None)]
            .into_iter()
            .collect();
        assert_eq!(h.total_local_epochs(), 4);
        assert_eq!(h.total_gradient_steps(), 4);
    }

    #[test]
    fn proposition2_mean_dominates_final_on_monotone_history() {
        let h: TrainingHistory = vec![
            record(0, None, Some(2.0)),
            record(1, None, Some(1.5)),
            record(2, None, Some(1.0)),
        ]
        .into_iter()
        .collect();
        assert!(h.is_loss_monotone(0.0));
        let mean = h.mean_loss().unwrap();
        let last = h.final_loss().unwrap();
        assert!(mean >= last, "Proposition 2: {mean} >= {last}");
        assert!((mean - 1.5).abs() < 1e-12);
    }

    #[test]
    fn monotonicity_respects_tolerance() {
        let h: TrainingHistory = vec![record(0, None, Some(1.0)), record(1, None, Some(1.05))]
            .into_iter()
            .collect();
        assert!(!h.is_loss_monotone(0.0));
        assert!(h.is_loss_monotone(0.1));
    }

    #[test]
    fn loss_helpers_on_unevaluated_history() {
        let h: TrainingHistory = vec![record(0, None, None)].into_iter().collect();
        assert!(h.mean_loss().is_none());
        assert!(h.final_loss().is_none());
        assert!(h.is_loss_monotone(0.0));
    }

    #[test]
    fn empty_history_behaviour() {
        let h = TrainingHistory::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert!(h.last().is_none());
        assert_eq!(h.rounds_to_accuracy(0.1), None);
        assert!(h.accuracy_curve().is_empty());
    }

    #[test]
    fn extend_appends() {
        let mut h = TrainingHistory::new();
        h.extend(vec![record(0, None, None)]);
        h.push(record(1, None, None));
        assert_eq!(h.len(), 2);
        assert_eq!(h.last().unwrap().round, 1);
    }
}
