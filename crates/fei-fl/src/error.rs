//! Typed errors for fault-tolerant federated rounds.

use std::fmt;

use crate::aggregate::AggregateError;

/// Why a federated round (or run) could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlError {
    /// The live fleet is smaller than the configured quorum, so no round can
    /// commit until devices restart. Callers should re-plan for the
    /// surviving fleet or abort the run.
    FleetBelowQuorum {
        /// Round at which the shortfall was detected.
        round: usize,
        /// Devices currently up.
        alive: usize,
        /// Minimum updates required to commit a round.
        required: usize,
    },
    /// The round's delivered updates could not be aggregated (malformed
    /// input that survived screening, or undefined weights). The global
    /// model is unchanged.
    Aggregate {
        /// Round at which aggregation failed.
        round: usize,
        /// The underlying aggregation error.
        source: AggregateError,
    },
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::FleetBelowQuorum {
                round,
                alive,
                required,
            } => write!(
                f,
                "round {round}: live fleet of {alive} device(s) is below the quorum of {required}"
            ),
            Self::Aggregate { round, source } => {
                write!(f, "round {round}: aggregation failed: {source}")
            }
        }
    }
}

impl std::error::Error for FlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::FleetBelowQuorum { .. } => None,
            Self::Aggregate { source, .. } => Some(source),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_shortfall() {
        let err = FlError::FleetBelowQuorum {
            round: 7,
            alive: 2,
            required: 5,
        };
        let msg = err.to_string();
        assert!(msg.contains("round 7"));
        assert!(msg.contains('2'));
        assert!(msg.contains('5'));
    }

    #[test]
    fn aggregate_error_wraps_with_round_and_source() {
        use std::error::Error;
        let err = FlError::Aggregate {
            round: 3,
            source: AggregateError::ZeroTotalWeight,
        };
        let msg = err.to_string();
        assert!(msg.contains("round 3"), "{msg}");
        assert!(msg.contains("at least one sample"), "{msg}");
        assert!(err.source().is_some());
    }
}
