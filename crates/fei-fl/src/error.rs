//! Typed errors for fault-tolerant federated rounds.

use std::fmt;

/// Why a federated round (or run) could not proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlError {
    /// The live fleet is smaller than the configured quorum, so no round can
    /// commit until devices restart. Callers should re-plan for the
    /// surviving fleet or abort the run.
    FleetBelowQuorum {
        /// Round at which the shortfall was detected.
        round: usize,
        /// Devices currently up.
        alive: usize,
        /// Minimum updates required to commit a round.
        required: usize,
    },
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::FleetBelowQuorum {
                round,
                alive,
                required,
            } => write!(
                f,
                "round {round}: live fleet of {alive} device(s) is below the quorum of {required}"
            ),
        }
    }
}

impl std::error::Error for FlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_shortfall() {
        let err = FlError::FleetBelowQuorum {
            round: 7,
            alive: 2,
            required: 5,
        };
        let msg = err.to_string();
        assert!(msg.contains("round 7"));
        assert!(msg.contains('2'));
        assert!(msg.contains('5'));
    }
}
