//! Deterministic adversarial (Byzantine) client behaviors.
//!
//! Complements [`crate::fault`]'s *omission* faults with *commission*
//! faults: a compromised device completes the round protocol but ships a
//! hostile update. Four classic behaviors are modeled:
//!
//! * **sign-flip** — upload `ω_g − (ω − ω_g)`: the local progress reflected
//!   through the global model, steering aggregation backwards;
//! * **scaled-update** (model boosting) — upload `ω_g + λ(ω − ω_g)` with
//!   `λ ≫ 1`, amplifying the attacker's influence on the mean;
//! * **Gaussian noise** — add `N(0, σ²)` noise to every parameter;
//! * **label-flip** — train honestly but on deterministically flipped
//!   labels (`y ↦ C−1−y`), a data-poisoning attack.
//!
//! Like [`crate::fault::FaultInjector`], every decision is a **pure
//! function of `(device, round)`** under the adversary's seed: the
//! malicious set is a seeded draw at construction, and per-round noise
//! comes from a decorrelated cell RNG. The serial and threaded engines
//! therefore observe bit-identical attacks regardless of thread
//! interleaving.

use std::collections::BTreeSet;

use fei_data::Dataset;
use fei_sim::DetRng;
use serde::{Deserialize, Serialize};

/// Deterministic label-flip transform: every label `y` becomes `C−1−y`
/// over a copy of `data`. Both engines derive a compromised device's
/// training set through this single function, so they poison identically.
pub fn flip_dataset_labels(data: &Dataset) -> Dataset {
    let classes = data.num_classes();
    let mut out = Dataset::empty(data.dim(), classes);
    for (x, y) in data.iter() {
        out.push(x, classes - 1 - y);
    }
    out
}

/// Stream salt keeping noise draws decorrelated from fault streams.
const SALT_NOISE: u64 = 0xBAD_5EED;

/// What a compromised device does each round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AttackBehavior {
    /// Upload the local progress reflected through the global model.
    SignFlip,
    /// Upload the local progress scaled by `boost`, amplifying influence.
    ScaledUpdate {
        /// Amplification factor `λ` (> 1 boosts, < 0 reverses and boosts).
        boost: f64,
    },
    /// Add zero-mean Gaussian noise to every uploaded parameter.
    GaussianNoise {
        /// Standard deviation `σ` of the added noise.
        std_dev: f64,
    },
    /// Train honestly on deterministically flipped labels (`y ↦ C−1−y`).
    LabelFlip,
}

/// Configuration of the adversarial cohort.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdversarySpec {
    /// Fraction of the fleet that is compromised, in `[0, 1)`. The
    /// malicious device count is `⌊fraction · N⌋`.
    pub fraction: f64,
    /// The attack every compromised device runs.
    pub behavior: AttackBehavior,
    /// Seed of the malicious-set draw and the noise streams. Independent of
    /// the training and fault seeds.
    pub seed: u64,
}

impl AdversarySpec {
    /// A sign-flip cohort at `fraction`.
    pub fn sign_flip(fraction: f64) -> Self {
        Self {
            fraction,
            behavior: AttackBehavior::SignFlip,
            seed: 0xAD50,
        }
    }

    fn validate(&self) {
        assert!(
            (0.0..1.0).contains(&self.fraction),
            "attacker fraction must be in [0, 1), got {}",
            self.fraction
        );
        match self.behavior {
            AttackBehavior::ScaledUpdate { boost } => {
                assert!(boost.is_finite(), "boost must be finite, got {boost}");
            }
            AttackBehavior::GaussianNoise { std_dev } => {
                assert!(
                    std_dev.is_finite() && std_dev >= 0.0,
                    "noise std_dev must be finite and non-negative, got {std_dev}"
                );
            }
            AttackBehavior::SignFlip | AttackBehavior::LabelFlip => {}
        }
    }
}

/// A seeded, stateless adversarial cohort over a fleet of `n` devices.
///
/// Construct once per campaign; query per `(device, round)`. Identical
/// `(spec, n)` yield identical cohorts and attacks on every engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adversary {
    spec: AdversarySpec,
    fleet: usize,
    malicious: BTreeSet<usize>,
}

impl Adversary {
    /// Draws the malicious cohort: `⌊fraction · n⌋` devices picked by a
    /// seeded shuffle of `0..n`.
    ///
    /// # Panics
    ///
    /// Panics on a fraction outside `[0, 1)`, a non-finite boost, or a
    /// negative noise deviation.
    pub fn new(spec: AdversarySpec, n: usize) -> Self {
        spec.validate();
        let count = (spec.fraction * n as f64).floor() as usize;
        let mut ids: Vec<usize> = (0..n).collect();
        DetRng::new(spec.seed).fork(0xC0607).shuffle(&mut ids);
        let malicious: BTreeSet<usize> = ids.into_iter().take(count).collect();
        Self {
            spec,
            fleet: n,
            malicious,
        }
    }

    /// The spec this adversary was built from.
    pub fn spec(&self) -> &AdversarySpec {
        &self.spec
    }

    /// Fleet size the cohort was drawn over.
    pub fn fleet_size(&self) -> usize {
        self.fleet
    }

    /// The compromised devices, ascending.
    pub fn malicious_devices(&self) -> impl Iterator<Item = usize> + '_ {
        self.malicious.iter().copied()
    }

    /// Number of compromised devices.
    pub fn num_malicious(&self) -> usize {
        self.malicious.len()
    }

    /// Whether `device` is compromised.
    pub fn is_malicious(&self, device: usize) -> bool {
        self.malicious.contains(&device)
    }

    /// Whether `device` trains on flipped labels (label-flip cohort only).
    pub fn flips_labels(&self, device: usize) -> bool {
        matches!(self.spec.behavior, AttackBehavior::LabelFlip) && self.is_malicious(device)
    }

    /// Applies `device`'s attack at `round` to its trained parameters
    /// (in place), given the round's reference global model. Honest devices
    /// and [`AttackBehavior::LabelFlip`] (which poisons training, not the
    /// upload) leave `params` untouched.
    ///
    /// Pure in `(device, round)`: the Gaussian stream is re-derived from the
    /// cell, never from shared state.
    pub fn poison(&self, device: usize, round: usize, global: &[f64], params: &mut [f64]) {
        if !self.is_malicious(device) {
            return;
        }
        match self.spec.behavior {
            AttackBehavior::LabelFlip => {}
            AttackBehavior::SignFlip => {
                for (p, &g) in params.iter_mut().zip(global) {
                    *p = g - (*p - g);
                }
            }
            AttackBehavior::ScaledUpdate { boost } => {
                for (p, &g) in params.iter_mut().zip(global) {
                    *p = g + boost * (*p - g);
                }
            }
            AttackBehavior::GaussianNoise { std_dev } => {
                let mut rng = self.cell_rng(device, round);
                for p in params.iter_mut() {
                    *p += rng.gaussian_with(0.0, std_dev);
                }
            }
        }
    }

    /// A decorrelated RNG for one `(device, round)` noise cell.
    fn cell_rng(&self, device: usize, round: usize) -> DetRng {
        let mix = (device as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((round as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(SALT_NOISE.wrapping_mul(0x94D0_49BB_1331_11EB));
        DetRng::new(self.spec.seed ^ mix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(behavior: AttackBehavior) -> AdversarySpec {
        AdversarySpec {
            fraction: 0.4,
            behavior,
            seed: 7,
        }
    }

    #[test]
    fn cohort_size_is_floor_of_fraction() {
        let adv = Adversary::new(spec(AttackBehavior::SignFlip), 10);
        assert_eq!(adv.num_malicious(), 4);
        let none = Adversary::new(AdversarySpec::sign_flip(0.0), 10);
        assert_eq!(none.num_malicious(), 0);
        let small = Adversary::new(AdversarySpec::sign_flip(0.19), 10);
        assert_eq!(small.num_malicious(), 1);
    }

    #[test]
    fn cohort_is_deterministic_per_seed() {
        let a = Adversary::new(spec(AttackBehavior::SignFlip), 20);
        let b = Adversary::new(spec(AttackBehavior::SignFlip), 20);
        assert_eq!(a, b);
        let mut other = spec(AttackBehavior::SignFlip);
        other.seed = 8;
        let c = Adversary::new(other, 20);
        assert_ne!(
            a.malicious_devices().collect::<Vec<_>>(),
            c.malicious_devices().collect::<Vec<_>>(),
            "different seeds should draw different cohorts"
        );
    }

    #[test]
    fn sign_flip_reflects_through_global() {
        let adv = Adversary::new(
            AdversarySpec {
                fraction: 0.5,
                behavior: AttackBehavior::SignFlip,
                seed: 7,
            },
            2,
        );
        let mallory = adv.malicious_devices().next().unwrap();
        let global = [1.0, -2.0];
        let mut params = vec![3.0, 0.0];
        adv.poison(mallory, 0, &global, &mut params);
        assert_eq!(params, vec![-1.0, -4.0]);
    }

    #[test]
    fn honest_devices_are_untouched() {
        let adv = Adversary::new(spec(AttackBehavior::SignFlip), 10);
        let honest = (0..10).find(|&d| !adv.is_malicious(d)).unwrap();
        let mut params = vec![3.0, 0.0];
        adv.poison(honest, 0, &[0.0, 0.0], &mut params);
        assert_eq!(params, vec![3.0, 0.0]);
    }

    #[test]
    fn scaled_update_boosts_progress() {
        let adv = Adversary::new(
            AdversarySpec {
                fraction: 0.5,
                behavior: AttackBehavior::ScaledUpdate { boost: 10.0 },
                seed: 7,
            },
            2,
        );
        let mallory = adv.malicious_devices().next().unwrap();
        let mut params = vec![1.1];
        adv.poison(mallory, 3, &[1.0], &mut params);
        assert!((params[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn gaussian_noise_is_pure_in_device_and_round() {
        let mk = || {
            Adversary::new(
                AdversarySpec {
                    fraction: 0.5,
                    behavior: AttackBehavior::GaussianNoise { std_dev: 1.0 },
                    seed: 11,
                },
                4,
            )
        };
        let (a, b) = (mk(), mk());
        let mallory = a.malicious_devices().next().unwrap();
        let mut pa = vec![0.0; 8];
        let mut pb = vec![0.0; 8];
        // Query b at a decoy round first: cell purity means no state leaks.
        let mut decoy = vec![0.0; 8];
        b.poison(mallory, 9, &[0.0; 8], &mut decoy);
        a.poison(mallory, 2, &[0.0; 8], &mut pa);
        b.poison(mallory, 2, &[0.0; 8], &mut pb);
        assert_eq!(pa, pb);
        assert!(pa.iter().any(|&p| p != 0.0), "noise must perturb");
    }

    #[test]
    fn label_flip_marks_training_not_upload() {
        let adv = Adversary::new(spec(AttackBehavior::LabelFlip), 10);
        let mallory = adv.malicious_devices().next().unwrap();
        assert!(adv.flips_labels(mallory));
        let honest = (0..10).find(|&d| !adv.is_malicious(d)).unwrap();
        assert!(!adv.flips_labels(honest));
        let mut params = vec![5.0];
        adv.poison(mallory, 0, &[0.0], &mut params);
        assert_eq!(params, vec![5.0], "label-flip must not touch the upload");
    }

    #[test]
    fn flip_dataset_labels_reverses_classes_and_keeps_features() {
        let mut d = Dataset::empty(1, 3);
        d.push(&[0.5], 0);
        d.push(&[0.6], 2);
        d.push(&[0.7], 1);
        let f = flip_dataset_labels(&d);
        assert_eq!(f.labels(), &[2, 0, 1]);
        assert_eq!(f.sample(0), &[0.5]);
        assert_eq!(f.num_classes(), 3);
    }

    #[test]
    #[should_panic(expected = "attacker fraction")]
    fn rejects_full_fraction() {
        let _ = Adversary::new(AdversarySpec::sign_flip(1.0), 10);
    }
}
