//! Lint configuration: which rules run, and where.

use std::collections::BTreeSet;
use std::path::PathBuf;

use crate::rules::RuleId;

/// Scoping and rule selection for one lint run.
///
/// The defaults encode this workspace's contracts; everything is
/// overridable (CLI flags on the binary, struct fields from tests).
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Workspace root to scan.
    pub root: PathBuf,
    /// Rules to run. `BTreeSet` so reports are deterministically ordered —
    /// the linter holds itself to the determinism contract it enforces.
    pub rules: BTreeSet<RuleId>,
    /// Crates whose non-test code must be bit-replayable. The determinism
    /// rules (`det-*`) run only here.
    pub det_crates: Vec<String>,
    /// Crates whose public energy APIs must route joules through
    /// `EnergyUse` (the `ledger-discipline` rule).
    pub ledger_crates: Vec<String>,
    /// Crates that own the wire schema. The cross-file `wire-schema` and
    /// `truncating-cast` rules audit `TAG_*` constants and codec casts
    /// here.
    pub wire_crates: Vec<String>,
    /// Enum names whose every variant must be billed and surfaced
    /// somewhere (the `enum-billing` rule).
    pub billed_enums: Vec<String>,
    /// File-name stems that mark a file as a codec/journal path for the
    /// `truncating-cast` rule (matched as substrings of the file name).
    pub cast_file_stems: Vec<String>,
    /// Crates that host fast-path numeric kernels. Allow directives in
    /// their kernel files face the `allow-audit` check below.
    pub kernel_crates: Vec<String>,
    /// File-name stems (substring-matched, like `cast_file_stems`) that
    /// mark a file in a kernel crate as fast-path kernel code.
    pub kernel_file_stems: Vec<String>,
    /// Phrases at least one of which an allow directive's `reason` in a
    /// kernel file must contain (case-insensitive): the reason must *name
    /// the numeric invariant the exception preserves*, not merely assert
    /// the code is fine — a suppressed rule on the fast path is one
    /// golden-numerics bisection away from being load-bearing.
    pub invariant_vocabulary: Vec<String>,
    /// Directory names never descended into.
    pub skip_dirs: Vec<String>,
    /// Directory names whose files are test code: scanned for the
    /// workspace model (pass 1) so cross-file rules can see test
    /// references, but exempt from per-file rules and excluded from
    /// `files_scanned`.
    pub test_dirs: Vec<String>,
    /// When true, `no-panic` also covers `src/bin/` and `src/main.rs`
    /// entry points (off by default: binaries may abort on operational
    /// errors; the contract is about library code).
    pub lint_bins: bool,
}

impl LintConfig {
    /// The workspace defaults, rooted at `root`.
    pub fn for_root(root: PathBuf) -> LintConfig {
        LintConfig {
            root,
            rules: RuleId::ALL.into_iter().collect(),
            det_crates: vec![
                "fei-fl".to_string(),
                "fei-core".to_string(),
                "fei-proto".to_string(),
                "fei-sim".to_string(),
            ],
            ledger_crates: vec!["fei-core".to_string(), "fei-power".to_string()],
            wire_crates: vec!["fei-proto".to_string(), "fei-net".to_string()],
            billed_enums: vec!["EnergyUse".to_string(), "AbortReason".to_string()],
            cast_file_stems: vec![
                "codec".to_string(),
                "wire".to_string(),
                "frames".to_string(),
                "journal".to_string(),
            ],
            kernel_crates: vec!["fei-math".to_string(), "fei-ml".to_string()],
            kernel_file_stems: vec![
                "pack".to_string(),
                "reduce".to_string(),
                "lanes".to_string(),
                "matrix".to_string(),
                "model".to_string(),
                "mlp".to_string(),
                "scratch".to_string(),
                "pool".to_string(),
            ],
            invariant_vocabulary: vec![
                "bit-identity".to_string(),
                "bit-identical".to_string(),
                "bit-for-bit".to_string(),
                "reduction order".to_string(),
                "accumulation order".to_string(),
                "fold order".to_string(),
                "pairwise".to_string(),
                "golden".to_string(),
                "reference kernel".to_string(),
                "matmul_reference".to_string(),
                "same contributions".to_string(),
            ],
            skip_dirs: vec![
                ".git".to_string(),
                "target".to_string(),
                // Vendored stand-ins for external deps: not ours to gate.
                "vendor".to_string(),
                // The linter's own known-bad test corpus.
                "fixtures".to_string(),
            ],
            // Integration tests, examples, and benches are test code: pass 1
            // reads them (wire-schema's "named in a test" leg needs them),
            // the per-file rules do not.
            test_dirs: vec![
                "tests".to_string(),
                "examples".to_string(),
                "benches".to_string(),
            ],
            lint_bins: false,
        }
    }

    /// The crate a workspace-relative path belongs to (`crates/<name>/…`),
    /// or the facade crate for the root `src/`.
    pub fn crate_of(rel_path: &str) -> &str {
        let mut parts = rel_path.split('/');
        match parts.next() {
            Some("crates") => parts.next().unwrap_or("ee-fei"),
            _ => "ee-fei",
        }
    }
}
