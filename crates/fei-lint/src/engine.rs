//! The lint driver: two passes over the workspace.
//!
//! Pass 1 walks every `.rs` file — library code *and* the `tests/`,
//! `examples/`, and `benches/` trees — lexing each once and extracting
//! its [`FileFacts`] into a [`WorkspaceModel`]. Pass 2 runs the per-file
//! rules on library files (test trees stay exempt, as before) and the
//! cross-file rules ([`crate::crossfile`]) over the whole model, which is
//! how wire-schema can demand that every tag is named in at least one
//! test. `files_scanned` keeps its historical meaning: library files
//! checked by per-file rules.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::LintConfig;
use crate::crossfile;
use crate::lexer::LexedFile;
use crate::model::{FileFacts, WorkspaceModel};
use crate::report::{Report, Violation};
use crate::rules::RuleId;

/// Lints the whole workspace described by `config`.
///
/// # Errors
///
/// Returns `io::Error` only for filesystem failures (unreadable root,
/// file deleted mid-scan); rule violations are reported, not errors.
pub fn run(config: &LintConfig) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(&config.root, config, false, &mut files)?;
    // Deterministic scan order regardless of directory-entry order.
    files.sort();

    let mut report = Report::default();
    let mut model = WorkspaceModel::default();
    let mut lexed_by_path: BTreeMap<String, LexedFile> = BTreeMap::new();
    for (path, in_test_tree) in &files {
        let source = fs::read_to_string(path)?;
        let rel = relative_unix_path(&config.root, path);
        let lexed = LexedFile::lex(&source);
        model.files.push(FileFacts::extract(
            &rel,
            LintConfig::crate_of(&rel),
            *in_test_tree,
            &lexed,
        ));
        if !*in_test_tree {
            report.violations.extend(lint_lexed(config, &rel, &lexed));
            report.files_scanned += 1;
        }
        lexed_by_path.insert(rel, lexed);
    }
    report
        .violations
        .extend(crossfile::check(config, &model, &lexed_by_path));
    report.finish();
    Ok(report)
}

/// Lints one file's source text under `config` with the per-file rules.
/// Exposed for fixture tests; cross-file rules need [`run`].
pub fn lint_source(config: &LintConfig, rel_path: &str, source: &str) -> Vec<Violation> {
    lint_lexed(config, rel_path, &LexedFile::lex(source))
}

/// The per-file pass over one already-lexed file.
fn lint_lexed(config: &LintConfig, rel_path: &str, lexed: &LexedFile) -> Vec<Violation> {
    let crate_name = LintConfig::crate_of(rel_path);
    let mut out = Vec::new();

    // A malformed escape comment is itself a violation: a directive that
    // silently fails to parse would un-suppress nothing and hide typos.
    let audit_reasons = is_kernel_file(config, crate_name, rel_path);
    for d in &lexed.directives {
        if let Some(err) = &d.parse_error {
            out.push(Violation {
                rule: "directive-syntax".to_string(),
                path: rel_path.to_string(),
                line: d.line,
                col: 1,
                message: format!("malformed fei-lint directive: {err}"),
                snippet: lexed.raw_line(d.line).trim().to_string(),
            });
            continue;
        }
        for rule in &d.rules {
            if RuleId::from_name(rule).is_none() {
                out.push(Violation {
                    rule: "directive-syntax".to_string(),
                    path: rel_path.to_string(),
                    line: d.line,
                    col: 1,
                    message: format!("directive allows unknown rule `{rule}`"),
                    snippet: lexed.raw_line(d.line).trim().to_string(),
                });
            }
        }
        // Allow-audit: in fast-path kernel files a suppression's reason
        // must *name the numeric invariant preserved* (bit-identity,
        // reduction/accumulation order, reference-kernel equivalence…),
        // because every exception there sits on arithmetic the golden
        // pins depend on. "The code is fine" is not a justification a
        // reviewer can check; "skips exactly where matmul_reference
        // skips, preserving bit-identity" is.
        if audit_reasons {
            let reason = d.reason.as_deref().unwrap_or_default().to_lowercase();
            let named = config
                .invariant_vocabulary
                .iter()
                .any(|kw| reason.contains(&kw.to_lowercase()));
            if !named {
                out.push(Violation {
                    rule: "allow-audit".to_string(),
                    path: rel_path.to_string(),
                    line: d.line,
                    col: 1,
                    message: format!(
                        "allow directive in a kernel file must name the invariant \
                         its exception preserves (one of: {})",
                        config.invariant_vocabulary.join(", ")
                    ),
                    snippet: lexed.raw_line(d.line).trim().to_string(),
                });
            }
        }
    }

    for rule in &config.rules {
        if rule.applies(config, crate_name, rel_path) {
            out.extend(rule.check(lexed, rel_path));
        }
    }
    out
}

/// Whether `rel_path` is fast-path kernel code for the allow-audit: a
/// file in a kernel crate whose name carries a kernel stem.
fn is_kernel_file(config: &LintConfig, crate_name: &str, rel_path: &str) -> bool {
    if !config.kernel_crates.iter().any(|c| c == crate_name) {
        return false;
    }
    let file = rel_path.rsplit('/').next().unwrap_or(rel_path);
    config
        .kernel_file_stems
        .iter()
        .any(|stem| file.contains(stem.as_str()))
}

/// Recursively collects `.rs` files with a test-tree flag, skipping
/// `skip_dirs` by name. A file is test-tree once any ancestor directory
/// name is in `test_dirs`.
fn collect_rs_files(
    dir: &Path,
    config: &LintConfig,
    in_test_tree: bool,
    out: &mut Vec<(PathBuf, bool)>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if config.skip_dirs.iter().any(|d| d.as_str() == name) {
                continue;
            }
            let test_here = in_test_tree || config.test_dirs.iter().any(|d| d.as_str() == name);
            collect_rs_files(&path, config, test_here, out)?;
        } else if name.ends_with(".rs") {
            out.push((path, in_test_tree));
        }
    }
    Ok(())
}

/// `root`-relative path with `/` separators (stable across platforms for
/// reports and JSON).
fn relative_unix_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Locates the workspace root: ascends from `start` looking for a
/// `Cargo.toml` that declares `[workspace]`, falling back to the
/// compile-time manifest's grandparent (`crates/fei-lint/../..`).
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return d;
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    let compile_time = Path::new(env!("CARGO_MANIFEST_DIR"));
    compile_time
        .parent()
        .and_then(Path::parent)
        .unwrap_or(compile_time)
        .to_path_buf()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> LintConfig {
        LintConfig::for_root(PathBuf::from("."))
    }

    #[test]
    fn crate_scoping_applies_det_rules_only_in_det_crates() {
        let src = "use std::collections::HashMap;\n";
        let hit = lint_source(&config(), "crates/fei-fl/src/x.rs", src);
        assert_eq!(hit.len(), 1, "{hit:?}");
        assert_eq!(hit[0].rule, "det-map-iter");
        let miss = lint_source(&config(), "crates/fei-power/src/x.rs", src);
        assert!(miss.is_empty(), "{miss:?}");
    }

    #[test]
    fn bins_are_exempt_from_no_panic_by_default() {
        let src = "fn main() { run().unwrap(); }\n";
        assert!(lint_source(&config(), "crates/fei-bench/src/bin/x.rs", src).is_empty());
        let lib_hit = lint_source(&config(), "crates/fei-bench/src/lib.rs", src);
        assert_eq!(lib_hit.len(), 1);
        let mut strict = config();
        strict.lint_bins = true;
        assert_eq!(
            lint_source(&strict, "crates/fei-bench/src/bin/x.rs", src).len(),
            1
        );
    }

    #[test]
    fn unknown_rule_in_directive_is_a_violation() {
        let src = "// fei-lint: allow(not-a-rule, reason = \"x\")\nlet a = 1;\n";
        let v = lint_source(&config(), "crates/fei-math/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "directive-syntax");
    }

    #[test]
    fn kernel_file_allow_must_name_the_invariant() {
        let vague = "// fei-lint: allow(float-eq, reason = \"this is fine\")\nlet a = 1;\n";
        let v = lint_source(&config(), "crates/fei-math/src/pack.rs", vague);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "allow-audit");

        let named = "// fei-lint: allow(float-eq, reason = \"exact-zero skip preserving bit-identity with the reference kernel\")\nlet a = 1;\n";
        assert!(
            lint_source(&config(), "crates/fei-math/src/pack.rs", named).is_empty(),
            "a reason naming the invariant must pass"
        );
    }

    #[test]
    fn allow_audit_scopes_to_kernel_files_only() {
        let vague =
            "// fei-lint: allow(float-eq, reason = \"degenerate-variance sentinel\")\nlet a = 1;\n";
        assert!(
            lint_source(&config(), "crates/fei-math/src/stats.rs", vague).is_empty(),
            "non-kernel files keep the reasons-are-freeform policy"
        );
        assert!(
            lint_source(&config(), "crates/fei-power/src/model.rs", vague).is_empty(),
            "kernel stems outside kernel crates are not audited"
        );
    }

    #[test]
    fn workspace_root_discovery_finds_this_workspace() {
        let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
        assert!(root.join("Cargo.toml").exists());
        assert!(root.join("crates").is_dir());
    }
}
