//! The ratcheting baseline: pin today's findings, fail only on new ones.
//!
//! A rule that fires on existing code would either block the tree on a
//! large burn-down or get disabled; the baseline is the third option.
//! Findings are keyed by `(rule, path, structural hash)` where the hash
//! covers the whitespace-normalized offending snippet — not the line
//! number — so unrelated edits that move a pinned finding do not churn
//! the file, while any *new* site (or a second copy of a pinned one)
//! fails immediately.
//!
//! The ratchet only turns one way: `--write-baseline` refuses to produce
//! a baseline with more findings than the committed one. Growing the
//! debt requires either fixing the code or an explicit
//! `// fei-lint: allow(rule, reason = "…")` at the site — both visible
//! in review — never a silent regeneration.
//!
//! The JSON reader/writer is hand-rolled like the rest of the crate
//! (dependency-free gate), and strict: it reads exactly the shape
//! `--write-baseline` emits.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::report::{json_string, Report, Violation};

/// Baseline file format version.
pub const BASELINE_VERSION: u64 = 1;

/// The identity of one pinned finding class.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct BaselineKey {
    /// Kebab-case rule name.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// FNV-1a 64 hash (hex) of the normalized snippet.
    pub hash: String,
}

/// One pinned finding class with its allowed multiplicity.
#[derive(Debug, Clone)]
pub struct BaselineEntry {
    /// Identity of the class.
    pub key: BaselineKey,
    /// How many identical findings are pinned.
    pub count: usize,
    /// The (trimmed) snippet, kept for human review of the file.
    pub snippet: String,
}

/// A committed set of pinned findings.
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    /// Pinned classes, keyed for lookup.
    pub entries: BTreeMap<BaselineKey, BaselineEntry>,
}

/// The result of filtering a report through a baseline.
#[derive(Debug, Default)]
pub struct BaselineOutcome {
    /// Findings not covered by the baseline — these fail the run.
    pub new: Vec<Violation>,
    /// Findings suppressed because the baseline pins them.
    pub baselined: usize,
    /// Pinned classes (with leftover counts) that no longer occur: the
    /// debt shrank; rewrite the baseline to lock the progress in.
    pub stale: Vec<BaselineEntry>,
}

/// The structural key of one violation.
pub fn key_of(v: &Violation) -> BaselineKey {
    BaselineKey {
        rule: v.rule.clone(),
        path: v.path.clone(),
        hash: format!("{:016x}", fnv1a64(&normalize(&v.snippet))),
    }
}

/// Collapses whitespace runs so formatting churn does not re-key findings.
fn normalize(snippet: &str) -> String {
    let mut out = String::with_capacity(snippet.len());
    let mut in_ws = false;
    for c in snippet.trim().chars() {
        if c.is_whitespace() {
            in_ws = true;
            continue;
        }
        if in_ws && !out.is_empty() {
            out.push(' ');
        }
        in_ws = false;
        out.push(c);
    }
    out
}

/// FNV-1a 64-bit — tiny, dependency-free, stable across platforms.
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Baseline {
    /// Builds the baseline that would pin every finding in `report`.
    pub fn from_report(report: &Report) -> Baseline {
        let mut entries: BTreeMap<BaselineKey, BaselineEntry> = BTreeMap::new();
        for v in &report.violations {
            let key = key_of(v);
            entries
                .entry(key.clone())
                .or_insert_with(|| BaselineEntry {
                    key,
                    count: 0,
                    snippet: v.snippet.clone(),
                })
                .count += 1;
        }
        Baseline { entries }
    }

    /// Total pinned findings across all classes.
    pub fn total(&self) -> usize {
        self.entries.values().map(|e| e.count).sum()
    }

    /// Splits `report`'s violations into baselined and new, consuming pin
    /// counts in the report's deterministic order.
    pub fn filter(&self, report: &Report) -> BaselineOutcome {
        let mut remaining: BTreeMap<BaselineKey, usize> = self
            .entries
            .iter()
            .map(|(k, e)| (k.clone(), e.count))
            .collect();
        let mut outcome = BaselineOutcome::default();
        for v in &report.violations {
            let key = key_of(v);
            match remaining.get_mut(&key).filter(|n| **n > 0) {
                Some(n) => {
                    *n -= 1;
                    outcome.baselined += 1;
                }
                None => outcome.new.push(v.clone()),
            }
        }
        for (key, left) in remaining {
            if left > 0 {
                let mut entry = self.entries[&key].clone();
                entry.count = left;
                outcome.stale.push(entry);
            }
        }
        outcome
    }

    /// The ratchet: whether replacing `old` with `self` would grow the
    /// debt anywhere. Returns the offending classes.
    pub fn grows_over(&self, old: &Baseline) -> Vec<&BaselineEntry> {
        self.entries
            .values()
            .filter(|e| {
                let pinned = old.entries.get(&e.key).map_or(0, |o| o.count);
                e.count > pinned
            })
            .collect()
    }

    /// Renders the committed JSON form.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"version\": {BASELINE_VERSION},");
        let _ = writeln!(out, "  \"total\": {},", self.total());
        out.push_str("  \"findings\": [\n");
        for (i, e) in self.entries.values().enumerate() {
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"rule\": {}, \"path\": {}, \"hash\": {}, \"count\": {}, \
                 \"snippet\": {}}}{comma}",
                json_string(&e.key.rule),
                json_string(&e.key.path),
                json_string(&e.key.hash),
                e.count,
                json_string(&e.snippet)
            );
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the committed JSON form.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first structural problem; a baseline
    /// that cannot be read must fail the run loudly, not pass it.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = JsonValue::parse(text)?;
        let obj = value.as_object("baseline root")?;
        let version = obj
            .get("version")
            .ok_or("baseline missing \"version\"")?
            .as_u64("version")?;
        if version != BASELINE_VERSION {
            return Err(format!(
                "baseline version {version} unsupported (this fei-lint reads {BASELINE_VERSION}); \
                 regenerate with --write-baseline"
            ));
        }
        let findings = obj
            .get("findings")
            .ok_or("baseline missing \"findings\"")?
            .as_array("findings")?;
        let mut baseline = Baseline::default();
        for (i, f) in findings.iter().enumerate() {
            let f = f.as_object("finding")?;
            let field = |name: &str| -> Result<&JsonValue, String> {
                f.get(name)
                    .ok_or_else(|| format!("finding #{i} missing \"{name}\""))
            };
            let key = BaselineKey {
                rule: field("rule")?.as_str("rule")?.to_string(),
                path: field("path")?.as_str("path")?.to_string(),
                hash: field("hash")?.as_str("hash")?.to_string(),
            };
            let count = field("count")?.as_u64("count")? as usize;
            let snippet = field("snippet")?.as_str("snippet")?.to_string();
            if baseline
                .entries
                .insert(
                    key.clone(),
                    BaselineEntry {
                        key,
                        count,
                        snippet,
                    },
                )
                .is_some()
            {
                return Err(format!("finding #{i} duplicates an earlier key"));
            }
        }
        Ok(baseline)
    }
}

/// A minimal JSON value — just enough to read the baseline format.
enum JsonValue {
    String(String),
    Number(u64),
    Array(Vec<JsonValue>),
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut at = 0;
        let value = parse_value(bytes, &mut at)?;
        skip_ws(bytes, &mut at);
        if at != bytes.len() {
            return Err(format!("trailing bytes after JSON value at offset {at}"));
        }
        Ok(value)
    }

    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, JsonValue>, String> {
        match self {
            JsonValue::Object(m) => Ok(m),
            _ => Err(format!("{what}: expected an object")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Array(v) => Ok(v),
            _ => Err(format!("{what}: expected an array")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            JsonValue::String(s) => Ok(s),
            _ => Err(format!("{what}: expected a string")),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            JsonValue::Number(n) => Ok(*n),
            _ => Err(format!("{what}: expected a non-negative integer")),
        }
    }
}

fn skip_ws(bytes: &[u8], at: &mut usize) {
    while *at < bytes.len() && bytes[*at].is_ascii_whitespace() {
        *at += 1;
    }
}

fn parse_value(bytes: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, at);
    match bytes.get(*at) {
        Some(b'{') => parse_object(bytes, at),
        Some(b'[') => parse_array(bytes, at),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, at)?)),
        Some(b'0'..=b'9') => parse_number(bytes, at),
        Some(other) => Err(format!(
            "unexpected byte {:?} at offset {at}",
            *other as char
        )),
        None => Err("unexpected end of baseline JSON".to_string()),
    }
}

fn expect_byte(bytes: &[u8], at: &mut usize, b: u8) -> Result<(), String> {
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b) {
        *at += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at offset {at}", b as char))
    }
}

fn parse_object(bytes: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    expect_byte(bytes, at, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b'}') {
        *at += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, at);
        let key = parse_string(bytes, at)?;
        expect_byte(bytes, at, b':')?;
        let value = parse_value(bytes, at)?;
        map.insert(key, value);
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b',') => *at += 1,
            Some(b'}') => {
                *at += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at offset {at}")),
        }
    }
}

fn parse_array(bytes: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    expect_byte(bytes, at, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, at);
    if bytes.get(*at) == Some(&b']') {
        *at += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, at)?);
        skip_ws(bytes, at);
        match bytes.get(*at) {
            Some(b',') => *at += 1,
            Some(b']') => {
                *at += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at offset {at}")),
        }
    }
}

fn parse_string(bytes: &[u8], at: &mut usize) -> Result<String, String> {
    expect_byte(bytes, at, b'"')?;
    let mut out = String::new();
    while *at < bytes.len() {
        match bytes[*at] {
            b'"' => {
                *at += 1;
                return Ok(out);
            }
            b'\\' => {
                *at += 1;
                match bytes.get(*at) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes.get(*at + 1..*at + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| "non-ASCII \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("\\u{hex} is not a scalar value"))?,
                        );
                        *at += 4;
                    }
                    _ => return Err(format!("bad escape at offset {at}")),
                }
                *at += 1;
            }
            _ => {
                // Copy one UTF-8 scalar, however many bytes it takes.
                let s = std::str::from_utf8(&bytes[*at..])
                    .map_err(|_| "baseline JSON is not valid UTF-8".to_string())?;
                let c = s
                    .chars()
                    .next()
                    .expect("invariant: non-empty by loop guard");
                out.push(c);
                *at += c.len_utf8();
            }
        }
    }
    Err("unterminated string in baseline JSON".to_string())
}

fn parse_number(bytes: &[u8], at: &mut usize) -> Result<JsonValue, String> {
    let start = *at;
    while *at < bytes.len() && bytes[*at].is_ascii_digit() {
        *at += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*at]).expect("invariant: digits are ASCII");
    text.parse::<u64>()
        .map(JsonValue::Number)
        .map_err(|e| format!("bad number at offset {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation(rule: &str, path: &str, line: usize, snippet: &str) -> Violation {
        Violation {
            rule: rule.to_string(),
            path: path.to_string(),
            line,
            col: 1,
            message: "m".to_string(),
            snippet: snippet.to_string(),
        }
    }

    fn report(violations: Vec<Violation>) -> Report {
        let mut r = Report {
            violations,
            ..Report::default()
        };
        r.finish();
        r
    }

    #[test]
    fn keys_ignore_line_numbers_and_whitespace() {
        let a = violation("truncating-cast", "a.rs", 10, "let x = n as u32;");
        let b = violation("truncating-cast", "a.rs", 99, "let x  =  n as u32;");
        assert_eq!(key_of(&a), key_of(&b));
        let c = violation("truncating-cast", "a.rs", 10, "let y = n as u32;");
        assert_ne!(key_of(&a), key_of(&c));
    }

    #[test]
    fn round_trip_and_filter() {
        let r = report(vec![
            violation("wire-schema", "a.rs", 1, "const TAG_X: u8 = 1;"),
            violation("truncating-cast", "b.rs", 2, "n as u32"),
            violation("truncating-cast", "b.rs", 5, "n as u32"),
        ]);
        let baseline = Baseline::from_report(&r);
        assert_eq!(baseline.total(), 3);
        let reparsed = Baseline::parse(&baseline.to_json()).expect("own format parses");
        assert_eq!(reparsed.total(), 3);

        // Same findings: everything baselined, nothing new or stale.
        let outcome = reparsed.filter(&r);
        assert!(outcome.new.is_empty());
        assert_eq!(outcome.baselined, 3);
        assert!(outcome.stale.is_empty());

        // One fixed, one new: the new one fails, the fixed one is stale.
        let drifted = report(vec![
            violation("wire-schema", "a.rs", 1, "const TAG_X: u8 = 1;"),
            violation("truncating-cast", "b.rs", 2, "n as u32"),
            violation("enum-billing", "c.rs", 9, "Poisoned,"),
        ]);
        let outcome = reparsed.filter(&drifted);
        assert_eq!(outcome.new.len(), 1);
        assert_eq!(outcome.new[0].rule, "enum-billing");
        assert_eq!(outcome.baselined, 2);
        assert_eq!(outcome.stale.len(), 1);
        assert_eq!(outcome.stale[0].count, 1);
    }

    #[test]
    fn extra_copies_of_a_pinned_finding_are_new() {
        let one = report(vec![violation("truncating-cast", "b.rs", 2, "n as u32")]);
        let baseline = Baseline::from_report(&one);
        let two = report(vec![
            violation("truncating-cast", "b.rs", 2, "n as u32"),
            violation("truncating-cast", "b.rs", 7, "n as u32"),
        ]);
        let outcome = baseline.filter(&two);
        assert_eq!(outcome.baselined, 1);
        assert_eq!(outcome.new.len(), 1);
    }

    #[test]
    fn ratchet_rejects_growth_and_accepts_shrink() {
        let old = Baseline::from_report(&report(vec![
            violation("wire-schema", "a.rs", 1, "const TAG_X: u8 = 1;"),
            violation("truncating-cast", "b.rs", 2, "n as u32"),
        ]));
        let shrunk = Baseline::from_report(&report(vec![violation(
            "truncating-cast",
            "b.rs",
            2,
            "n as u32",
        )]));
        assert!(shrunk.grows_over(&old).is_empty());
        let grown = Baseline::from_report(&report(vec![
            violation("wire-schema", "a.rs", 1, "const TAG_X: u8 = 1;"),
            violation("truncating-cast", "b.rs", 2, "n as u32"),
            violation("truncating-cast", "b.rs", 9, "m as u16"),
        ]));
        assert_eq!(grown.grows_over(&old).len(), 1);
    }

    #[test]
    fn parse_rejects_malformed_baselines() {
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"version\": 9, \"findings\": []}").is_err());
        assert!(Baseline::parse("{\"version\": 1, \"findings\": [{}]}").is_err());
        assert!(Baseline::parse("{\"version\": 1, \"findings\": []} x").is_err());
        let empty = Baseline::parse("{\"version\": 1, \"findings\": []}").expect("empty ok");
        assert_eq!(empty.total(), 0);
    }
}
