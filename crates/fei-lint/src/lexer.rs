//! A small, dependency-free Rust source lexer.
//!
//! `fei-lint` cannot use `syn` (the workspace builds fully offline against
//! vendored deps, and `syn` is not among them), so rules run over a
//! *masked* view of each source file produced here:
//!
//! * comment bodies, string-literal contents, and char-literal contents are
//!   replaced byte-for-byte with spaces, so token searches never match
//!   inside prose or data;
//! * the masked text has exactly the same byte length as the original, so
//!   an offset found in the masked view indexes the raw view too (used by
//!   the `no-panic` rule to inspect `expect(..)` messages);
//! * `#[cfg(test)]`- and `#[test]`-gated regions are resolved by brace
//!   matching on the masked text, so rules can exempt test code;
//! * `// fei-lint: allow(rule, reason = "...")` escape comments are parsed
//!   into [`Directive`]s that suppress exactly the named rules on their own
//!   line and the line below.
//!
//! The lexer understands line comments, nested block comments, string /
//! raw-string / byte-string literals, char and byte-char literals, and
//! lifetimes. That is all the Rust syntax the rules need.

/// A parsed `// fei-lint: allow(...)` escape comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line the comment sits on.
    pub line: usize,
    /// Rule names this directive suppresses.
    pub rules: Vec<String>,
    /// The mandatory justification string.
    pub reason: Option<String>,
    /// Set when the comment looked like a directive but did not parse.
    pub parse_error: Option<String>,
}

/// A lexed source file: raw + masked text and the structure rules need.
#[derive(Debug)]
pub struct LexedFile {
    /// Original file contents.
    pub raw: String,
    /// Same byte length as `raw`; comment/literal interiors blanked.
    pub masked: String,
    /// Byte offset where each 1-based line starts.
    line_starts: Vec<usize>,
    /// Byte ranges (start inclusive, end exclusive) of test-gated code.
    test_regions: Vec<(usize, usize)>,
    /// All escape comments found, in file order.
    pub directives: Vec<Directive>,
}

impl LexedFile {
    /// Lexes `raw` into a masked view plus directives and test regions.
    pub fn lex(raw: &str) -> LexedFile {
        let (masked, comments) = mask(raw);
        let line_starts = line_starts(raw);
        let mut file = LexedFile {
            raw: raw.to_string(),
            masked,
            line_starts,
            test_regions: Vec::new(),
            directives: Vec::new(),
        };
        file.test_regions = find_test_regions(&file.masked);
        file.directives = comments
            .iter()
            .filter_map(|c| parse_directive(c.text.trim(), file.line_of(c.start)))
            .collect();
        file
    }

    /// 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// 1-based column (in bytes) of `offset` within its line.
    pub fn col_of(&self, offset: usize) -> usize {
        let line = self.line_of(offset);
        offset - self.line_starts[line - 1] + 1
    }

    /// Whether byte `offset` falls inside `#[cfg(test)]`/`#[test]` code.
    pub fn is_test(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| offset >= s && offset < e)
    }

    /// Rules suppressed at 1-based `line` by a directive on that line or
    /// the line directly above.
    pub fn allowed_rules_at(&self, line: usize) -> Vec<&str> {
        self.directives
            .iter()
            .filter(|d| d.parse_error.is_none() && (d.line == line || d.line + 1 == line))
            .flat_map(|d| d.rules.iter().map(String::as_str))
            .collect()
    }

    /// The raw text of 1-based `line`, without its newline.
    pub fn raw_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.raw.len(), |&next| next);
        self.raw[start..end].trim_end_matches(['\n', '\r'])
    }
}

/// One comment's text (without the `//` / `/*` markers) and start offset.
struct Comment {
    start: usize,
    text: String,
}

/// Byte offsets of `needle` in `hay` at identifier boundaries.
pub(crate) fn find_idents(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            hits.push(at);
        }
        from = at + needle.len();
    }
    hits
}

/// The contiguous identifier ending at byte `end` (exclusive), if any.
pub(crate) fn ident_ending_at(bytes: &[u8], end: usize) -> &[u8] {
    let mut start = end;
    while start > 0 && is_ident_byte(bytes[start - 1]) {
        start -= 1;
    }
    &bytes[start..end]
}

/// The contiguous identifier starting at or after `start`, skipping spaces.
pub(crate) fn ident_starting_at(bytes: &[u8], mut start: usize) -> (usize, &[u8]) {
    while start < bytes.len() && (bytes[start] == b' ' || bytes[start] == b'\n') {
        start += 1;
    }
    let mut end = start;
    while end < bytes.len() && is_ident_byte(bytes[end]) {
        end += 1;
    }
    (start, &bytes[start..end])
}

/// Byte offsets at which each line begins (line 1 starts at 0).
fn line_starts(src: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Whether `b` can appear inside a Rust identifier.
pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Masks comments and literal interiors with spaces, byte-for-byte, and
/// collects comment texts for directive parsing.
fn mask(src: &str) -> (String, Vec<Comment>) {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut comments = Vec::new();
    let mut i = 0;

    // Pushes `n` bytes from position `i` as blanks, preserving newlines.
    let blank = |out: &mut Vec<u8>, bytes: &[u8], i: usize, n: usize| {
        for &b in &bytes[i..i + n] {
            out.push(if b == b'\n' { b'\n' } else { b' ' });
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        let next = bytes.get(i + 1).copied();

        // Line comment.
        if b == b'/' && next == Some(b'/') {
            let start = i;
            let mut j = i + 2;
            while j < bytes.len() && bytes[j] != b'\n' {
                j += 1;
            }
            comments.push(Comment {
                start,
                text: src[start + 2..j].to_string(),
            });
            blank(&mut out, bytes, i, j - i);
            i = j;
            continue;
        }

        // Block comment (nested: every `/*` needs its own `*/`).
        if b == b'/' && next == Some(b'*') {
            let start = i;
            let mut depth = 1usize;
            let mut j = i + 2;
            while j < bytes.len() && depth > 0 {
                if bytes[j] == b'/' && bytes.get(j + 1) == Some(&b'*') {
                    depth += 1;
                    j += 2;
                } else if bytes[j] == b'*' && bytes.get(j + 1) == Some(&b'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            // `j - 2` is only a `*/` delimiter when the comment closed; an
            // unterminated comment runs to EOF and keeps its full text.
            let text_end = if depth == 0 { j - 2 } else { j };
            comments.push(Comment {
                start,
                text: src[(start + 2).min(text_end)..text_end.max(start + 2).min(src.len())]
                    .to_string(),
            });
            blank(&mut out, bytes, i, j - i);
            i = j;
            continue;
        }

        // Raw string / raw byte string: r"..", r#".."#, br#".."#.
        let prev_ident = i > 0 && is_ident_byte(bytes[i - 1]);
        if !prev_ident && (b == b'r' || (b == b'b' && next == Some(b'r'))) {
            let mut j = if b == b'b' { i + 2 } else { i + 1 };
            let mut hashes = 0usize;
            while bytes.get(j) == Some(&b'#') {
                hashes += 1;
                j += 1;
            }
            if bytes.get(j) == Some(&b'"') {
                // Scan for the closing quote followed by `hashes` hashes.
                // Backslash is NOT an escape inside raw strings.
                let mut k = j + 1;
                let mut closed = false;
                'scan: while k < bytes.len() {
                    if bytes[k] == b'"' {
                        let mut h = 0;
                        while h < hashes && bytes.get(k + 1 + h) == Some(&b'#') {
                            h += 1;
                        }
                        if h == hashes {
                            k += 1 + hashes;
                            closed = true;
                            break 'scan;
                        }
                    }
                    k += 1;
                }
                // Keep the opening/closing delimiters visible; blank the body.
                // An unterminated raw string (EOF mid-literal) is blanked to
                // the very end so no tail bytes leak into rule matching.
                out.extend_from_slice(&bytes[i..=j]);
                if closed {
                    let close_start = k - (hashes + 1);
                    blank(&mut out, bytes, j + 1, close_start - (j + 1));
                    out.extend_from_slice(&bytes[close_start..k]);
                } else {
                    blank(&mut out, bytes, j + 1, k - (j + 1));
                }
                i = k;
                continue;
            }
            // Not a raw string (e.g. the ident `r` or `br`): fall through.
        }

        // String / byte string literal.
        if b == b'"' || (b == b'b' && next == Some(b'"') && !prev_ident) {
            let quote = if b == b'b' { i + 1 } else { i };
            let mut j = quote + 1;
            let mut closed = false;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'"' => {
                        j += 1;
                        closed = true;
                        break;
                    }
                    _ => j += 1,
                }
            }
            // `\` just before EOF can overshoot the buffer by one.
            let j = j.min(bytes.len());
            out.extend_from_slice(&bytes[i..=quote]);
            if closed {
                blank(&mut out, bytes, quote + 1, j - 1 - (quote + 1));
                out.push(b'"');
            } else {
                // Unterminated at EOF: blank every remaining byte (dropping
                // one would shift all downstream offsets off by one).
                blank(&mut out, bytes, quote + 1, j - (quote + 1));
            }
            i = j;
            continue;
        }

        // Char literal vs lifetime.
        if b == b'\'' || (b == b'b' && next == Some(b'\'') && !prev_ident) {
            let quote = if b == b'b' { i + 1 } else { i };
            let after = bytes.get(quote + 1).copied();
            let is_lifetime = b != b'b'
                && matches!(after, Some(c) if is_ident_byte(c))
                && after != Some(b'\\')
                && bytes
                    .get(quote + 2)
                    .is_none_or(|&c| is_ident_byte(c) || c != b'\'');
            if is_lifetime {
                out.push(b'\'');
                i += 1;
                continue;
            }
            let mut j = quote + 1;
            let mut closed = false;
            while j < bytes.len() {
                match bytes[j] {
                    b'\\' => j += 2,
                    b'\'' => {
                        j += 1;
                        closed = true;
                        break;
                    }
                    _ => j += 1,
                }
            }
            let j = j.min(bytes.len());
            out.extend_from_slice(&bytes[i..=quote]);
            if closed {
                blank(&mut out, bytes, quote + 1, j - 1 - (quote + 1));
                out.push(b'\'');
            } else {
                blank(&mut out, bytes, quote + 1, j - (quote + 1));
            }
            i = j;
            continue;
        }

        out.push(b);
        i += 1;
    }

    let masked = String::from_utf8_lossy(&out).into_owned();
    debug_assert_eq!(masked.len(), src.len(), "masking must preserve length");
    (masked, comments)
}

/// Finds byte ranges of `#[cfg(test)]` / `#[test]`-gated items by brace
/// matching on masked text.
fn find_test_regions(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut regions = Vec::new();
    for marker in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0;
        while let Some(pos) = masked[from..].find(marker) {
            let start = from + pos;
            let after = start + marker.len();
            // The gated item ends at the matching `}` of its first brace,
            // or at the first `;` before any brace (e.g. `mod tests;`).
            let mut j = after;
            let mut end = masked.len();
            while j < bytes.len() {
                match bytes[j] {
                    b';' => {
                        end = j + 1;
                        break;
                    }
                    b'{' => {
                        let mut depth = 1usize;
                        let mut k = j + 1;
                        while k < bytes.len() && depth > 0 {
                            match bytes[k] {
                                b'{' => depth += 1,
                                b'}' => depth -= 1,
                                _ => {}
                            }
                            k += 1;
                        }
                        end = k;
                        break;
                    }
                    _ => j += 1,
                }
            }
            regions.push((start, end));
            from = after;
        }
    }
    regions.sort_unstable();
    regions
}

/// Parses one comment body as a `fei-lint: allow(...)` directive.
///
/// Returns `None` for ordinary comments; returns a [`Directive`] with
/// `parse_error` set when the comment invokes `fei-lint:` but is malformed
/// (so the engine can surface it instead of silently ignoring it).
fn parse_directive(text: &str, line: usize) -> Option<Directive> {
    let rest = text.strip_prefix('!').unwrap_or(text).trim_start();
    let rest = rest.strip_prefix("fei-lint:")?.trim();
    let malformed = |why: &str| {
        Some(Directive {
            line,
            rules: Vec::new(),
            reason: None,
            parse_error: Some(why.to_string()),
        })
    };
    let Some(body) = rest.strip_prefix("allow(") else {
        return malformed("expected `allow(<rule>, reason = \"...\")` after `fei-lint:`");
    };
    let Some(body) = body.strip_suffix(')') else {
        return malformed("unterminated `allow(`: missing closing `)`");
    };
    let mut rules = Vec::new();
    let mut reason = None;
    for part in split_top_level_commas(body) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        if let Some(r) = part.strip_prefix("reason") {
            let r = r.trim_start();
            let Some(r) = r.strip_prefix('=') else {
                return malformed("expected `reason = \"...\"`");
            };
            let r = r.trim();
            if r.len() < 2 || !r.starts_with('"') || !r.ends_with('"') {
                return malformed("reason must be a double-quoted string");
            }
            let quoted = &r[1..r.len() - 1];
            if quoted.trim().is_empty() {
                return malformed("reason must not be empty");
            }
            reason = Some(quoted.to_string());
        } else if part
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
        {
            rules.push(part.to_string());
        } else {
            return malformed("rule names are lowercase kebab-case idents");
        }
    }
    if rules.is_empty() {
        return malformed("directive names no rule");
    }
    if reason.is_none() {
        return malformed("directive is missing `reason = \"...\"`");
    }
    Some(Directive {
        line,
        rules,
        reason,
        parse_error: None,
    })
}

/// Splits on commas that are not inside a double-quoted string.
fn split_top_level_commas(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_strings_comments_and_chars() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet c = 'H'; /* HashMap */ let l: &'a u8;";
        let lexed = LexedFile::lex(src);
        assert_eq!(lexed.masked.len(), src.len());
        assert!(!lexed.masked.contains("HashMap"));
        // Code identifiers survive.
        assert!(lexed.masked.contains("let x"));
        assert!(lexed.masked.contains("&'a u8"));
    }

    #[test]
    fn masks_raw_strings() {
        let src = r##"let x = r#"Instant::now() "quoted" inside"#; let y = 1;"##;
        let lexed = LexedFile::lex(src);
        assert_eq!(lexed.masked.len(), src.len());
        assert!(!lexed.masked.contains("Instant"));
        assert!(lexed.masked.contains("let y = 1;"));
    }

    #[test]
    fn test_regions_cover_cfg_test_mods() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let lexed = LexedFile::lex(src);
        let unwrap_at = src.find(".unwrap").map_or(0, |p| p);
        assert!(lexed.is_test(unwrap_at));
        assert!(!lexed.is_test(src.find("fn lib").map_or(0, |p| p)));
        assert!(!lexed.is_test(src.find("fn tail").map_or(0, |p| p)));
    }

    #[test]
    fn masks_byte_strings_and_hashed_raw_strings() {
        let src = r###"let a = b"thread_rng"; let b = br#"OsRng"#; let c = r##"panic! "#" inside"##; let tail = 1;"###;
        let lexed = LexedFile::lex(src);
        assert_eq!(lexed.masked.len(), src.len());
        for leaked in ["thread_rng", "OsRng", "panic"] {
            assert!(
                !lexed.masked.contains(leaked),
                "{leaked} leaked:\n{}",
                lexed.masked
            );
        }
        assert!(lexed.masked.contains("let tail = 1;"));
    }

    #[test]
    fn nested_block_comments_mask_to_their_true_end() {
        let src = "/* outer /* inner unwrap() */ still comment unwrap() */ let x = y.unwrap();";
        let lexed = LexedFile::lex(src);
        assert_eq!(lexed.masked.len(), src.len());
        // Only the code unwrap survives the mask — a non-nesting lexer
        // would end the comment at the first `*/` and leak the second.
        assert_eq!(find_idents(&lexed.masked, "unwrap").len(), 1);
        assert!(lexed.masked.contains("let x = y.unwrap();"));
    }

    #[test]
    fn unterminated_literals_at_eof_preserve_length_and_leak_nothing() {
        // Each input ends mid-literal; masking must neither panic, nor
        // shorten the text, nor let the tail bytes reach rule matching.
        for (src, leaked) in [
            ("let s = \"panic! and on", "panic"),
            ("let s = \"esc \\", "esc"),
            ("let r = r#\"thread_rng() tail", "thread_rng"),
            ("let b = b\"OsRng tail", "OsRng"),
            ("let c = /* unwrap() never closes", "unwrap"),
            ("let c = /* nested /* unwrap() */", "unwrap"),
            ("let c = '\\", "x"),
        ] {
            let lexed = LexedFile::lex(src);
            assert_eq!(lexed.masked.len(), src.len(), "length drift for {src:?}");
            assert!(
                find_idents(&lexed.masked, leaked).is_empty(),
                "{leaked:?} leaked from {src:?}:\n{}",
                lexed.masked
            );
        }
    }

    #[test]
    fn raw_string_closing_guard_is_not_fooled_by_fewer_hashes() {
        // `"#` inside an `r##"…"##` literal is content, not a terminator.
        let src = r###"let x = r##"a "# b"##; let y = SystemTime;"###;
        let lexed = LexedFile::lex(src);
        assert_eq!(lexed.masked.len(), src.len());
        // `y = SystemTime` is code: a lexer that closed the raw string at
        // `"#` would have swallowed part of the code after it.
        assert_eq!(find_idents(&lexed.masked, "SystemTime").len(), 1);
    }

    #[test]
    fn directive_parses_rules_and_reason() {
        let src = "// fei-lint: allow(no-panic, float-eq, reason = \"why, exactly\")\nlet x = 1;\n";
        let lexed = LexedFile::lex(src);
        assert_eq!(lexed.directives.len(), 1);
        let d = &lexed.directives[0];
        assert_eq!(d.rules, vec!["no-panic", "float-eq"]);
        assert_eq!(d.reason.as_deref(), Some("why, exactly"));
        assert!(d.parse_error.is_none());
        // Applies to its own line and the next.
        assert_eq!(lexed.allowed_rules_at(1), vec!["no-panic", "float-eq"]);
        assert_eq!(lexed.allowed_rules_at(2), vec!["no-panic", "float-eq"]);
        assert!(lexed.allowed_rules_at(3).is_empty());
    }

    #[test]
    fn malformed_directive_is_reported_not_ignored() {
        for bad in [
            "// fei-lint: allow(no-panic)",                // missing reason
            "// fei-lint: allow(, reason = \"r\")",        // no rule
            "// fei-lint: allow(no-panic, reason = \"\")", // empty reason
            "// fei-lint: deny(no-panic)",                 // unknown verb
        ] {
            let lexed = LexedFile::lex(bad);
            assert_eq!(lexed.directives.len(), 1, "{bad}");
            assert!(lexed.directives[0].parse_error.is_some(), "{bad}");
        }
        // An ordinary comment is not a directive at all.
        assert!(LexedFile::lex("// plain comment").directives.is_empty());
    }

    #[test]
    fn line_and_col_mapping() {
        let src = "a\nbb\nccc\n";
        let lexed = LexedFile::lex(src);
        assert_eq!(lexed.line_of(0), 1);
        assert_eq!(lexed.line_of(2), 2);
        assert_eq!(lexed.line_of(5), 3);
        assert_eq!(lexed.col_of(6), 2);
        assert_eq!(lexed.raw_line(2), "bb");
    }
}
