//! `fei-lint`: the workspace invariant linter.
//!
//! The reproduction's headline guarantees are behavioural: the serial and
//! threaded FedAvg engines agree bit-for-bit (`tests/engines_agree.rs`),
//! defenses with a zero Byzantine budget equal the plain mean exactly
//! (`tests/byzantine.rs`), and every joule lands in exactly one
//! [`EnergyLedger`](../fei_core/ledger) bucket
//! (`tests/energy_accounting.rs`). Those tests catch violations only on
//! the inputs they happen to run; this crate turns the underlying coding
//! contracts into a compile-time-style gate over the whole workspace:
//!
//! * **determinism** (`det-map-iter`, `det-wallclock`, `det-entropy`) —
//!   no seeded-order containers, wall clocks, or OS entropy in
//!   `fei-fl`/`fei-core`/`fei-sim`;
//! * **no-panic library code** (`no-panic`) — fallible paths return typed
//!   errors; `expect("invariant: …")` is the sanctioned form for provably
//!   unreachable states;
//! * **numeric safety** (`float-eq`) — no exact `==`/`!=` against float
//!   literals; use `fei_math::approx` or justify the exact sentinel;
//! * **ledger discipline** (`ledger-discipline`) — public joule-taking
//!   APIs in `fei-core`/`fei-power` must carry an `EnergyUse`
//!   classification.
//!
//! Since v2 the engine runs **two passes**: pass 1 builds a lightweight
//! [`model::WorkspaceModel`] from every file (including test trees), and
//! pass 2 adds cross-file rules over it ([`crossfile`]): `wire-schema`
//! (tag uniqueness + encode/decode/test reachability), `enum-billing`
//! (no dead `EnergyUse`/`AbortReason` variants), `truncating-cast` (no
//! bare narrowing `as` in codec paths), and `journal-discipline`
//! (write-ahead phase transitions, followed across helper functions).
//! Pre-existing findings can be pinned in a shrink-only
//! [`baseline::Baseline`] (`--baseline` / `--write-baseline`) so new
//! rules gate new code immediately while the burn-down stays visible.
//!
//! Sites that deliberately break a rule carry an escape comment on the
//! same line or the line above:
//!
//! ```text
//! // fei-lint: allow(no-panic, reason = "fault-injection: the panic IS the fault")
//! ```
//!
//! The reason is mandatory and malformed directives are themselves
//! violations, so the escape hatch stays auditable. See DESIGN.md,
//! "Statically-enforced invariants", for the policy; run the binary with
//! `cargo run -p fei-lint` (add `-- --json` for machine-readable output).

#![forbid(unsafe_code)]

pub mod baseline;
pub mod config;
pub mod crossfile;
pub mod engine;
pub mod lexer;
pub mod model;
pub mod report;
pub mod rules;

pub use baseline::{Baseline, BaselineOutcome};
pub use config::LintConfig;
pub use engine::{find_workspace_root, lint_source, run};
pub use report::{Report, Violation};
pub use rules::RuleId;
