//! The invariant rule set.
//!
//! Each rule encodes one of the repo's domain contracts and names the
//! runtime test it protects (see DESIGN.md, "Statically-enforced
//! invariants"). Rules run over the masked view produced by
//! [`crate::lexer::LexedFile`], so comments and string contents never
//! trigger them, and test-gated code is exempt.

use crate::config::LintConfig;
use crate::lexer::LexedFile;
use crate::report::Violation;

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// No `HashMap`/`HashSet` in deterministic crates: their iteration
    /// order is seeded per-process, which would break the serial/threaded
    /// bit-identity contract (`tests/engines_agree.rs`).
    DetMapIter,
    /// No `Instant::now`/`SystemTime` in deterministic crates: the
    /// simulator's logical clock (`fei_sim::SimTime`) is the only
    /// sanctioned time source.
    DetWallclock,
    /// No OS entropy (`thread_rng`, `OsRng`, …) in deterministic crates:
    /// `fei_sim::DetRng` is the only sanctioned randomness source.
    DetEntropy,
    /// No `unwrap()`/bare `expect()`/`panic!` in library code: fallible
    /// paths return typed errors (`AggregateError`, `CoreError`, …).
    /// `expect("invariant: …")` is sanctioned for genuinely unreachable
    /// states; anything else needs an allow directive.
    NoPanic,
    /// No exact `==`/`!=` against floating-point literals: use the
    /// `fei_math::approx` helpers, or justify an exact sentinel/zero-guard
    /// with an allow directive.
    FloatEq,
    /// Public energy-accounting entry points in `fei-core`/`fei-power`
    /// that accept raw joules must also accept an `EnergyUse`
    /// classification, so no joule can bypass the `EnergyLedger` buckets
    /// (`tests/energy_accounting.rs`).
    LedgerDiscipline,
    /// Write-ahead logging in the coordinator: every `.phase =` state
    /// transition in `fei-proto` coordinator code must follow a
    /// round-journal append — in the same function or via a helper called
    /// earlier in it — so no transition can outrun its durability point
    /// and crash recovery never loses acknowledged state
    /// (`tests/recovery.rs`). Cross-file since v2: the check walks the
    /// workspace model's call facts instead of a line window.
    JournalDiscipline,
    /// Wire-schema conformance across `fei-proto`/`fei-net`: every
    /// `TAG_*` value unique, every tag produced by an encode arm and
    /// matched by a decode arm, every tag named in at least one test
    /// (`tests/proto_wire.rs`). Cross-file.
    WireSchema,
    /// Every `EnergyUse`/`AbortReason` variant must be constructed
    /// outside its defining file and surfaced in a match arm (stats or
    /// report path) — dead-variant detection for the energy accounting
    /// the paper's e_U/e_P results rest on. Cross-file.
    EnumBilling,
    /// No bare `as` casts to ≤32-bit integers in codec/wire/frames/
    /// journal files of the wire crates: lengths and tags must go through
    /// checked conversions so oversized payloads fail loudly instead of
    /// truncating on the wire. Cross-file.
    TruncatingCast,
}

impl RuleId {
    /// Every rule, in reporting order.
    pub const ALL: [RuleId; 10] = [
        RuleId::DetMapIter,
        RuleId::DetWallclock,
        RuleId::DetEntropy,
        RuleId::NoPanic,
        RuleId::FloatEq,
        RuleId::LedgerDiscipline,
        RuleId::JournalDiscipline,
        RuleId::WireSchema,
        RuleId::EnumBilling,
        RuleId::TruncatingCast,
    ];

    /// Whether this rule runs over the pass-1 workspace model
    /// ([`crate::crossfile`]) rather than per file.
    pub fn is_cross_file(self) -> bool {
        matches!(
            self,
            RuleId::JournalDiscipline
                | RuleId::WireSchema
                | RuleId::EnumBilling
                | RuleId::TruncatingCast
        )
    }

    /// The kebab-case name used in reports and allow directives.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::DetMapIter => "det-map-iter",
            RuleId::DetWallclock => "det-wallclock",
            RuleId::DetEntropy => "det-entropy",
            RuleId::NoPanic => "no-panic",
            RuleId::FloatEq => "float-eq",
            RuleId::LedgerDiscipline => "ledger-discipline",
            RuleId::JournalDiscipline => "journal-discipline",
            RuleId::WireSchema => "wire-schema",
            RuleId::EnumBilling => "enum-billing",
            RuleId::TruncatingCast => "truncating-cast",
        }
    }

    /// One-line summary for `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::DetMapIter => {
                "no HashMap/HashSet in deterministic crates (seeded iteration order)"
            }
            RuleId::DetWallclock => {
                "no Instant::now/SystemTime in deterministic crates (use fei_sim::SimTime)"
            }
            RuleId::DetEntropy => {
                "no OS entropy in deterministic crates (use fei_sim::DetRng)"
            }
            RuleId::NoPanic => {
                "no unwrap()/bare expect()/panic! in library code (typed errors or expect(\"invariant: ...\"))"
            }
            RuleId::FloatEq => {
                "no ==/!= against float literals (use fei_math::approx or justify the sentinel)"
            }
            RuleId::LedgerDiscipline => {
                "public joule-taking fns in fei-core/fei-power must take an EnergyUse classification"
            }
            RuleId::JournalDiscipline => {
                "coordinator phase transitions must follow a round-journal append (write-ahead logging)"
            }
            RuleId::WireSchema => {
                "TAG_* values unique across wire crates; every tag encoded, decoded, and named in a test"
            }
            RuleId::EnumBilling => {
                "every EnergyUse/AbortReason variant constructed outside its file and surfaced in a match"
            }
            RuleId::TruncatingCast => {
                "no bare `as` casts to <=32-bit ints in codec/journal files (use try_from/from)"
            }
        }
    }

    /// Parses a rule name as used on the CLI and in directives.
    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == name)
    }

    /// Whether this rule applies to `crate_name` / `rel_path` in the
    /// per-file pass. Cross-file rules scope themselves inside
    /// [`crate::crossfile`] and never run here.
    pub fn applies(self, config: &LintConfig, crate_name: &str, rel_path: &str) -> bool {
        match self {
            RuleId::DetMapIter | RuleId::DetWallclock | RuleId::DetEntropy => {
                config.det_crates.iter().any(|c| c == crate_name)
            }
            RuleId::LedgerDiscipline => config.ledger_crates.iter().any(|c| c == crate_name),
            RuleId::JournalDiscipline
            | RuleId::WireSchema
            | RuleId::EnumBilling
            | RuleId::TruncatingCast => false,
            RuleId::NoPanic => {
                // Binary entry points (src/bin/, src/main.rs) may abort on
                // operational errors; the contract covers library code.
                config.lint_bins
                    || !(rel_path.contains("/bin/") || rel_path.ends_with("src/main.rs"))
            }
            RuleId::FloatEq => true,
        }
    }

    /// Runs this rule over one lexed file. Cross-file rules return
    /// nothing here — they run in [`crate::crossfile::check`].
    pub fn check(self, file: &LexedFile, path: &str) -> Vec<Violation> {
        match self {
            RuleId::JournalDiscipline
            | RuleId::WireSchema
            | RuleId::EnumBilling
            | RuleId::TruncatingCast => Vec::new(),
            RuleId::DetMapIter => check_idents(
                self,
                file,
                path,
                &["HashMap", "HashSet", "hash_map", "hash_set"],
                "non-deterministic iteration order; use BTreeMap/BTreeSet or an index-keyed Vec",
            ),
            RuleId::DetWallclock => check_wallclock(self, file, path),
            RuleId::DetEntropy => check_idents(
                self,
                file,
                path,
                &[
                    "thread_rng",
                    "ThreadRng",
                    "OsRng",
                    "from_entropy",
                    "getrandom",
                    "RandomState",
                ],
                "OS entropy breaks replayability; thread the campaign's fei_sim::DetRng instead",
            ),
            RuleId::NoPanic => check_no_panic(self, file, path),
            RuleId::FloatEq => check_float_eq(self, file, path),
            RuleId::LedgerDiscipline => check_ledger(self, file, path),
        }
    }
}

/// Byte offsets of `needle` in `hay` at identifier boundaries.
fn find_idents(hay: &str, needle: &str) -> Vec<usize> {
    let bytes = hay.as_bytes();
    let mut hits = Vec::new();
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            hits.push(at);
        }
        from = at + needle.len();
    }
    hits
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Emits a violation at `offset` unless the site is test code or allowed.
fn emit(
    rule: RuleId,
    file: &LexedFile,
    path: &str,
    offset: usize,
    message: String,
    out: &mut Vec<Violation>,
) {
    if file.is_test(offset) {
        return;
    }
    let line = file.line_of(offset);
    if file.allowed_rules_at(line).contains(&rule.name()) {
        return;
    }
    out.push(Violation {
        rule: rule.name().to_string(),
        path: path.to_string(),
        line,
        col: file.col_of(offset),
        message,
        snippet: file.raw_line(line).trim().to_string(),
    });
}

fn check_idents(
    rule: RuleId,
    file: &LexedFile,
    path: &str,
    needles: &[&str],
    hint: &str,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for needle in needles {
        for offset in find_idents(&file.masked, needle) {
            emit(
                rule,
                file,
                path,
                offset,
                format!("`{needle}` in deterministic code: {hint}"),
                &mut out,
            );
        }
    }
    out
}

fn check_wallclock(rule: RuleId, file: &LexedFile, path: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    for needle in ["SystemTime", "Instant"] {
        for offset in find_idents(&file.masked, needle) {
            emit(
                rule,
                file,
                path,
                offset,
                format!(
                    "`{needle}` is wall-clock time: replays diverge under load; \
                     use the campaign's logical clock (fei_sim::SimTime)"
                ),
                &mut out,
            );
        }
    }
    out
}

/// Macros whose expansion aborts the process.
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

fn check_no_panic(rule: RuleId, file: &LexedFile, path: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let masked = &file.masked;
    let bytes = masked.as_bytes();

    for offset in find_idents(masked, "unwrap") {
        let preceded_by_dot = offset > 0 && bytes[offset - 1] == b'.';
        let followed_by_call = masked[offset + "unwrap".len()..]
            .trim_start()
            .starts_with('(');
        if preceded_by_dot && followed_by_call {
            emit(
                rule,
                file,
                path,
                offset,
                "`unwrap()` in library code: return a typed error, or use \
                 `expect(\"invariant: ...\")` for a provably unreachable state"
                    .to_string(),
                &mut out,
            );
        }
    }

    for offset in find_idents(masked, "expect") {
        let preceded_by_dot = offset > 0 && bytes[offset - 1] == b'.';
        let after = &masked[offset + "expect".len()..];
        if !preceded_by_dot || !after.trim_start().starts_with('(') {
            continue;
        }
        if expect_message_is_invariant(file, offset) {
            continue;
        }
        emit(
            rule,
            file,
            path,
            offset,
            "`expect()` whose message does not start with \"invariant: \": \
             either the state is reachable (return a typed error) or it is \
             not (say so: `expect(\"invariant: ...\")`)"
                .to_string(),
            &mut out,
        );
    }

    for mac in PANIC_MACROS {
        for offset in find_idents(masked, mac) {
            let rest = masked[offset + mac.len()..].trim_start();
            if rest.starts_with('!') {
                emit(
                    rule,
                    file,
                    path,
                    offset,
                    format!("`{mac}!` in library code: return a typed error instead"),
                    &mut out,
                );
            }
        }
    }
    out
}

/// Inspects the *raw* text after `.expect(` for a `"invariant: ..."` string.
fn expect_message_is_invariant(file: &LexedFile, expect_offset: usize) -> bool {
    let raw = file.raw.as_bytes();
    let Some(open) = file.masked[expect_offset..]
        .find('(')
        .map(|p| expect_offset + p)
    else {
        return false;
    };
    let mut i = open + 1;
    while i < raw.len() && (raw[i] as char).is_whitespace() {
        i += 1;
    }
    raw.get(i..)
        .is_some_and(|rest| rest.starts_with(b"\"invariant: "))
}

fn check_float_eq(rule: RuleId, file: &LexedFile, path: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let bytes = file.masked.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let two = &bytes[i..i + 2];
        let is_eq = two == b"==";
        let is_ne = two == b"!=";
        if !(is_eq || is_ne) {
            i += 1;
            continue;
        }
        // Not part of `<=`, `>=`, `=>`, `===`-like runs or compound ops.
        let prev = if i > 0 { bytes[i - 1] } else { b' ' };
        let next = bytes.get(i + 2).copied().unwrap_or(b' ');
        if is_eq && (b"=!<>+-*/%&|^".contains(&prev) || next == b'=') {
            i += 2;
            continue;
        }
        if is_ne && next == b'=' {
            i += 2;
            continue;
        }
        let left = token_left(bytes, i);
        let right = token_right(bytes, i + 2);
        if is_float_literal(&left) || is_float_literal(&right) {
            let op = if is_eq { "==" } else { "!=" };
            emit(
                rule,
                file,
                path,
                i,
                format!(
                    "exact `{op}` against float literal `{}`: use \
                     fei_math::approx::approx_eq/approx_ne, or justify the \
                     exact sentinel with an allow directive",
                    if is_float_literal(&left) {
                        &left
                    } else {
                        &right
                    }
                ),
                &mut out,
            );
        }
        i += 2;
    }
    out
}

/// The contiguous `[A-Za-z0-9_.]` token ending just before `op_start`.
fn token_left(bytes: &[u8], op_start: usize) -> String {
    let mut end = op_start;
    while end > 0 && bytes[end - 1] == b' ' {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (is_ident_byte(bytes[start - 1]) || bytes[start - 1] == b'.') {
        start -= 1;
    }
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

/// The contiguous `[A-Za-z0-9_.]` token starting just after the operator.
fn token_right(bytes: &[u8], mut start: usize) -> String {
    while start < bytes.len() && bytes[start] == b' ' {
        start += 1;
    }
    // A leading unary minus still makes a float literal.
    if bytes.get(start) == Some(&b'-') {
        start += 1;
    }
    let mut end = start;
    while end < bytes.len() && (is_ident_byte(bytes[end]) || bytes[end] == b'.') {
        end += 1;
    }
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

/// `0.0`, `1.5e3`, `2f64`, … — but not `self.x`, `0xFF`, or plain ints.
fn is_float_literal(tok: &str) -> bool {
    let tok = tok.trim_end_matches("f64").trim_end_matches("f32");
    let mut chars = tok.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !first.is_ascii_digit() {
        return false;
    }
    if tok.starts_with("0x") || tok.starts_with("0b") || tok.starts_with("0o") {
        return false;
    }
    tok.contains('.') || tok.contains(['e', 'E'])
}

fn check_ledger(rule: RuleId, file: &LexedFile, path: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    let masked = &file.masked;
    for offset in find_idents(masked, "pub") {
        // `pub fn`, `pub(crate) fn`, …
        let mut rest = &masked[offset + 3..];
        let mut consumed = offset + 3;
        let trimmed = rest.trim_start();
        consumed += rest.len() - trimmed.len();
        rest = trimmed;
        if rest.starts_with('(') {
            let Some(close) = rest.find(')') else {
                continue;
            };
            consumed += close + 1;
            rest = &masked[consumed..];
            let trimmed = rest.trim_start();
            consumed += rest.len() - trimmed.len();
            rest = trimmed;
        }
        if !rest.starts_with("fn") || rest.as_bytes().get(2).copied().is_some_and(is_ident_byte) {
            continue;
        }
        // Capture the parameter list: first `(` after the fn name, to its
        // matching `)`.
        let Some(open_rel) = rest.find('(') else {
            continue;
        };
        let open = consumed + open_rel;
        let bytes = masked.as_bytes();
        let mut depth = 0usize;
        let mut close = open;
        for (k, &b) in bytes.iter().enumerate().skip(open) {
            match b {
                b'(' => depth += 1,
                b')' => {
                    depth -= 1;
                    if depth == 0 {
                        close = k;
                        break;
                    }
                }
                _ => {}
            }
        }
        if close == open {
            continue;
        }
        let params = &masked[open + 1..close];
        if !find_idents(params, "f64").is_empty()
            && has_joule_param(params)
            && find_idents(params, "EnergyUse").is_empty()
        {
            emit(
                rule,
                file,
                path,
                offset,
                "public fn takes raw joules (`f64`) without an `EnergyUse` \
                 classification: route the spend through EnergyLedger::charge, \
                 or justify why this spend is outside ledger accounting"
                    .to_string(),
                &mut out,
            );
        }
    }
    out
}

/// Whether a parameter list names a joule-carrying parameter
/// (`joules: f64`, `capacity_j: f64`, …).
fn has_joule_param(params: &str) -> bool {
    let mut depth = 0i32;
    let mut start = 0usize;
    let bytes = params.as_bytes();
    let mut found = false;
    let mut scan = |param: &str| {
        let Some(colon) = param.find(':') else { return };
        let name = param[..colon]
            .trim()
            .trim_start_matches("mut ")
            .trim_start_matches("ref ")
            .trim();
        if name == "joules" || name.ends_with("_j") || name.ends_with("_joules") {
            found = true;
        }
    };
    for (k, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'<' | b'[' => depth += 1,
            b')' | b'>' | b']' => depth -= 1,
            b',' if depth == 0 => {
                scan(&params[start..k]);
                start = k + 1;
            }
            _ => {}
        }
    }
    scan(&params[start..]);
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex(src: &str) -> LexedFile {
        LexedFile::lex(src)
    }

    #[test]
    fn rule_names_round_trip() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::from_name(rule.name()), Some(rule));
        }
        assert_eq!(RuleId::from_name("nope"), None);
    }

    #[test]
    fn unwrap_and_bare_expect_flagged_invariant_expect_sanctioned() {
        let src = "fn f() {\n    let a = x.unwrap();\n    let b = y.expect(\"oops\");\n    let c = z.expect(\"invariant: checked above\");\n    let d = m.unwrap_or(0);\n}\n";
        let v = RuleId::NoPanic.check(&lex(src), "p.rs");
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].snippet.contains("unwrap()"));
        assert!(v[1].snippet.contains("oops"));
    }

    #[test]
    fn float_eq_flags_literal_comparisons_only() {
        let src = "fn f(a: f64, n: usize) {\n    if a == 0.0 {}\n    if a != 1.5e3 {}\n    if n == 0 {}\n    if a <= 0.0 {}\n    let arrow = |x: usize| x;\n}\n";
        let v = RuleId::FloatEq.check(&lex(src), "p.rs");
        assert_eq!(v.len(), 2, "{v:?}");
    }

    #[test]
    fn ledger_rule_requires_energy_use_next_to_joules() {
        let src = "pub fn consume(&mut self, device: usize, joules: f64) {}\n\
                   pub fn charge(&mut self, usage: EnergyUse, joules: f64) {}\n\
                   pub fn energy_joules(&self) -> f64 { 0.0 }\n";
        let v = RuleId::LedgerDiscipline.check(&lex(src), "p.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn cross_file_rules_never_run_in_the_per_file_pass() {
        let config = LintConfig::for_root(std::path::PathBuf::from("."));
        for rule in RuleId::ALL.into_iter().filter(|r| r.is_cross_file()) {
            assert!(!rule.applies(&config, "fei-proto", "crates/fei-proto/src/coordinator.rs"));
            assert!(rule
                .check(&lex("fn f() { self.phase = Phase::Idle; }\n"), "c.rs")
                .is_empty());
        }
    }

    #[test]
    fn panicking_macros_flagged_outside_tests() {
        let src = "fn f() { panic!(\"x\") }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { unreachable!() }\n}\n";
        let v = RuleId::NoPanic.check(&lex(src), "p.rs");
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }
}
