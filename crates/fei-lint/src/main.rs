//! CLI for the workspace invariant linter.
//!
//! ```text
//! cargo run -p fei-lint                 # human-readable, exit 1 on violations
//! cargo run -p fei-lint -- --json       # machine-readable report
//! cargo run -p fei-lint -- --only no-panic --only float-eq
//! cargo run -p fei-lint -- --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use fei_lint::{find_workspace_root, run, Baseline, LintConfig, RuleId};

const USAGE: &str = "\
fei-lint: workspace invariant linter (determinism / no-panic / float-eq / ledger / wire schema)

USAGE: fei-lint [OPTIONS]

OPTIONS:
  --json                  emit a JSON report instead of human-readable text
  --root <PATH>           workspace root to scan (default: auto-discovered)
  --only <RULE>           run only this rule (repeatable)
  --skip <RULE>           disable this rule (repeatable)
  --include-bins          apply no-panic to src/bin/ and src/main.rs too
  --baseline <PATH>       suppress findings pinned in this baseline; fail only on new ones
  --write-baseline <PATH> pin the current findings (ratchet: refuses to grow an existing file)
  --list-rules            print every rule with a one-line summary
  -h, --help              this help
";

fn main() -> ExitCode {
    match cli() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("fei-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn cli() -> Result<ExitCode, String> {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut only: Vec<RuleId> = Vec::new();
    let mut skip: Vec<RuleId> = Vec::new();
    let mut include_bins = false;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;

    let mut args = env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--include-bins" => include_bins = true,
            "--root" => {
                let p = args.next().ok_or("--root needs a path argument")?;
                root = Some(PathBuf::from(p));
            }
            "--baseline" => {
                let p = args.next().ok_or("--baseline needs a path argument")?;
                baseline_path = Some(PathBuf::from(p));
            }
            "--write-baseline" => {
                let p = args
                    .next()
                    .ok_or("--write-baseline needs a path argument")?;
                write_baseline = Some(PathBuf::from(p));
            }
            "--only" | "--skip" => {
                let name = args
                    .next()
                    .ok_or_else(|| format!("{arg} needs a rule name"))?;
                let rule = RuleId::from_name(&name)
                    .ok_or_else(|| format!("unknown rule `{name}` (see --list-rules)"))?;
                if arg == "--only" {
                    only.push(rule);
                } else {
                    skip.push(rule);
                }
            }
            "--list-rules" => {
                for rule in RuleId::ALL {
                    println!("{:<18} {}", rule.name(), rule.summary());
                }
                return Ok(ExitCode::SUCCESS);
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n\n{USAGE}")),
        }
    }

    let cwd = env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = root.unwrap_or_else(|| find_workspace_root(&cwd));
    let mut config = LintConfig::for_root(root);
    config.lint_bins = include_bins;
    if !only.is_empty() {
        config.rules = only.into_iter().collect();
    }
    for rule in skip {
        config.rules.remove(&rule);
    }

    let mut report = run(&config).map_err(|e| format!("scan failed: {e}"))?;

    if let Some(path) = write_baseline {
        let new = Baseline::from_report(&report);
        // The ratchet only turns one way: an existing baseline may shrink
        // but never grow. Growing the debt requires fixing the finding or
        // an allow directive at the site — both visible in review.
        if let Ok(text) = fs::read_to_string(&path) {
            let old = Baseline::parse(&text)
                .map_err(|e| format!("cannot read existing baseline {}: {e}", path.display()))?;
            let grown = new.grows_over(&old);
            if !grown.is_empty() {
                let mut msg = format!(
                    "ratchet: refusing to grow the baseline ({} finding class(es) \
                     exceed their pinned count):\n",
                    grown.len()
                );
                for e in grown {
                    msg.push_str(&format!(
                        "  [{}] {} x{}: {}\n",
                        e.key.rule, e.key.path, e.count, e.snippet
                    ));
                }
                msg.push_str("fix the findings or justify them with allow directives");
                return Err(msg);
            }
        }
        fs::write(&path, new.to_json())
            .map_err(|e| format!("cannot write baseline {}: {e}", path.display()))?;
        eprintln!(
            "fei-lint: baseline written to {} ({} finding(s) pinned)",
            path.display(),
            new.total()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(path) = baseline_path {
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("cannot read baseline {}: {e}", path.display()))?;
        let baseline = Baseline::parse(&text)
            .map_err(|e| format!("cannot parse baseline {}: {e}", path.display()))?;
        let outcome = baseline.filter(&report);
        report.violations = outcome.new;
        report.baselined = outcome.baselined;
        report.stale_baseline = outcome.stale.len();
        report.finish();
    }

    if json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
