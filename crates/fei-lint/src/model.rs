//! Pass 1 of the two-pass engine: a lightweight workspace model.
//!
//! Per-file rules can only see one file's tokens; the drift modes that
//! actually bite the protocol stack are *cross-file*: a wire-tag value
//! reused in another crate, an enum variant that is defined but never
//! billed anywhere, a truncating cast hiding in a codec length path, a
//! phase transition whose journal append lives in a helper function. This
//! module extracts just enough structure from the existing lexer's masked
//! view — no external parser, staying dependency-free — for the
//! cross-file rules in [`crate::crossfile`] to reason about the workspace
//! as a whole:
//!
//! * `const TAG_*: u8 = …` declarations with their values;
//! * references to those tags, classified as decode match arms
//!   (`TAG_X => …`), encode arms (`… => TAG_X`), or plain mentions;
//! * enum definitions with their variants;
//! * `Enum::Variant` references, classified as match arms vs.
//!   constructions/uses;
//! * `expr as <int>` casts with the target width and the source token;
//! * functions with their body spans, call sites, journal touches, and
//!   `.phase =` writes (for the cross-function journal-discipline rule).
//!
//! Every fact carries its byte offset and an `is_test` flag (true inside
//! `#[cfg(test)]`/`#[test]` regions *or* anywhere in a `tests/`,
//! `examples/`, or `benches/` tree), so rules can distinguish production
//! reachability from test reachability.

use crate::lexer::{find_idents, ident_ending_at, ident_starting_at, is_ident_byte, LexedFile};

/// How a tag or variant reference sits relative to a `match`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefContext {
    /// The reference is a match pattern: `TAG_X => …` / `Enum::V => …`
    /// (including struct/tuple-variant patterns before the arrow).
    MatchArm,
    /// The reference is an arm's *result*: `… => TAG_X` — the shape of
    /// every `fn tag()`-style encoder table.
    Produced,
    /// Any other expression or pattern position.
    Other,
}

/// One `const TAG_*: u8 = <value>;` declaration.
#[derive(Debug, Clone)]
pub struct TagConst {
    /// The constant's name (starts with `TAG_`).
    pub name: String,
    /// Its `u8` value, when the initializer is a literal we can read.
    pub value: Option<u8>,
    /// Byte offset of the name in the file.
    pub offset: usize,
    /// Whether the declaration sits in test code.
    pub is_test: bool,
}

/// One reference to a `TAG_*` identifier outside its declaration.
#[derive(Debug, Clone)]
pub struct TagRef {
    /// The referenced tag name.
    pub name: String,
    /// Byte offset of the reference.
    pub offset: usize,
    /// Whether the reference sits in test code.
    pub is_test: bool,
    /// Match-arm / produced / other classification.
    pub context: RefContext,
}

/// One variant of a parsed enum definition.
#[derive(Debug, Clone)]
pub struct VariantDef {
    /// The variant's name.
    pub name: String,
    /// Byte offset of the variant name.
    pub offset: usize,
}

/// One `enum` definition.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// Byte offset of the enum name.
    pub offset: usize,
    /// Whether the definition sits in test code.
    pub is_test: bool,
    /// The variants, in declaration order.
    pub variants: Vec<VariantDef>,
}

/// One `Enum::Variant` path reference.
#[derive(Debug, Clone)]
pub struct VariantRef {
    /// The enum segment (`EnergyUse` in `EnergyUse::Wasted`).
    pub enum_name: String,
    /// The variant segment.
    pub variant: String,
    /// Byte offset of the enum segment.
    pub offset: usize,
    /// Whether the reference sits in test code.
    pub is_test: bool,
    /// Match-arm vs. construction/use classification.
    pub context: RefContext,
}

/// One `expr as <integer type>` cast site.
#[derive(Debug, Clone)]
pub struct CastSite {
    /// The target type token (`u8`, `i32`, …).
    pub target: String,
    /// Bit width of the target (8, 16, 32, 64, 128; `usize`/`isize` = 64).
    pub target_bits: u32,
    /// The source token immediately left of `as` (`len`, `0xFF`, `q`, or
    /// empty when the cast closes a parenthesized expression).
    pub source_token: String,
    /// Byte offset of the `as` keyword.
    pub offset: usize,
    /// Whether the cast sits in test code.
    pub is_test: bool,
    /// Whether the cast's line also names a checked conversion
    /// (`try_from`/`try_into`), marking the `as` as a documented rewrap.
    pub line_has_checked: bool,
}

/// One function definition with the facts journal-discipline v2 needs.
#[derive(Debug, Clone)]
pub struct FnFacts {
    /// The function's name.
    pub name: String,
    /// Byte offset of the name.
    pub offset: usize,
    /// Body span (after `{`, before matching `}`); `None` for bodyless
    /// trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Offsets of `journal` identifier touches inside the body.
    pub journal_touches: Vec<usize>,
    /// Offsets of `.phase = …` writes inside the body.
    pub phase_writes: Vec<usize>,
    /// `(callee name, offset)` for every `ident(`-shaped call in the body.
    pub calls: Vec<(String, usize)>,
}

/// Everything pass 1 extracted from one file.
#[derive(Debug)]
pub struct FileFacts {
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// The crate the file belongs to (see [`crate::LintConfig::crate_of`]).
    pub crate_name: String,
    /// True for files under `tests/`, `examples/`, or `benches/` trees —
    /// every fact in such a file is test-context regardless of regions.
    pub in_test_tree: bool,
    /// `const TAG_*: u8` declarations.
    pub tag_consts: Vec<TagConst>,
    /// `TAG_*` references (excluding the declarations themselves).
    pub tag_refs: Vec<TagRef>,
    /// Enum definitions.
    pub enums: Vec<EnumDef>,
    /// `Enum::Variant` references.
    pub variant_refs: Vec<VariantRef>,
    /// Narrow-integer cast sites.
    pub casts: Vec<CastSite>,
    /// Function facts (journal-discipline v2).
    pub fns: Vec<FnFacts>,
}

/// The pass-1 model: one [`FileFacts`] per scanned file, in path order.
#[derive(Debug, Default)]
pub struct WorkspaceModel {
    /// Per-file facts, sorted by path.
    pub files: Vec<FileFacts>,
}

impl FileFacts {
    /// Extracts every fact the cross-file rules need from one lexed file.
    pub fn extract(
        path: &str,
        crate_name: &str,
        in_test_tree: bool,
        lexed: &LexedFile,
    ) -> FileFacts {
        let mut facts = FileFacts {
            path: path.to_string(),
            crate_name: crate_name.to_string(),
            in_test_tree,
            tag_consts: Vec::new(),
            tag_refs: Vec::new(),
            enums: Vec::new(),
            variant_refs: Vec::new(),
            casts: Vec::new(),
            fns: Vec::new(),
        };
        facts.scan_tags(lexed);
        facts.scan_enums(lexed);
        facts.scan_variant_refs(lexed);
        facts.scan_casts(lexed);
        facts.scan_fns(lexed);
        facts
    }

    fn is_test_at(&self, lexed: &LexedFile, offset: usize) -> bool {
        self.in_test_tree || lexed.is_test(offset)
    }

    /// Collects `TAG_*` declarations and references with arm context.
    fn scan_tags(&mut self, lexed: &LexedFile) {
        let masked = &lexed.masked;
        let bytes = masked.as_bytes();
        let mut at = 0;
        while at < bytes.len() {
            if !is_ident_byte(bytes[at]) {
                at += 1;
                continue;
            }
            let start = at;
            while at < bytes.len() && is_ident_byte(bytes[at]) {
                at += 1;
            }
            // Identifier boundary on the left too?
            if start > 0 && is_ident_byte(bytes[start - 1]) {
                continue;
            }
            let ident = &masked[start..at];
            if !ident.starts_with("TAG_") || ident.len() <= 4 {
                continue;
            }
            let is_test = self.is_test_at(lexed, start);
            // A declaration: `const TAG_X: u8 = 0x10;`
            let prev = ident_ending_at(bytes, prev_token_end(bytes, start));
            if prev == b"const" {
                self.tag_consts.push(TagConst {
                    name: ident.to_string(),
                    value: parse_tag_value(masked, at),
                    offset: start,
                    is_test,
                });
                continue;
            }
            self.tag_refs.push(TagRef {
                name: ident.to_string(),
                offset: start,
                is_test,
                context: classify_ref(bytes, start, at),
            });
        }
    }

    /// Collects enum definitions and their variants.
    fn scan_enums(&mut self, lexed: &LexedFile) {
        let masked = &lexed.masked;
        let bytes = masked.as_bytes();
        for kw in find_idents(masked, "enum") {
            let (name_at, name) = ident_starting_at(bytes, kw + "enum".len());
            if name.is_empty() {
                continue;
            }
            // Find the body's opening brace; a `;` or new item first means
            // this was not a definition we can read.
            let mut open = name_at + name.len();
            while open < bytes.len() && bytes[open] != b'{' && bytes[open] != b';' {
                open += 1;
            }
            if open >= bytes.len() || bytes[open] != b'{' {
                continue;
            }
            let close = match_brace(bytes, open);
            let mut def = EnumDef {
                name: String::from_utf8_lossy(name).into_owned(),
                offset: name_at,
                is_test: self.is_test_at(lexed, name_at),
                variants: Vec::new(),
            };
            // Variants: the first identifier of each depth-0 chunk between
            // commas (attributes and doc comments are already blanked).
            let mut at = open + 1;
            while at < close {
                // Skip `#[…]` attributes ahead of the variant name.
                while at < close {
                    let (next_at, tok) = ident_starting_at(bytes, at);
                    if tok.is_empty() {
                        if next_at < close && bytes[next_at] == b'#' {
                            let mut k = next_at;
                            while k < close && bytes[k] != b']' {
                                k += 1;
                            }
                            at = k + 1;
                            continue;
                        }
                        at = next_at + 1;
                        if at >= close {
                            break;
                        }
                        continue;
                    }
                    at = next_at;
                    break;
                }
                if at >= close {
                    break;
                }
                let (v_at, v_name) = ident_starting_at(bytes, at);
                if v_name.is_empty() {
                    break;
                }
                def.variants.push(VariantDef {
                    name: String::from_utf8_lossy(v_name).into_owned(),
                    offset: v_at,
                });
                // Skip to the next depth-0 comma (fields, discriminants).
                let mut depth = 0usize;
                let mut k = v_at + v_name.len();
                while k < close {
                    match bytes[k] {
                        b'{' | b'(' | b'[' => depth += 1,
                        b'}' | b')' | b']' => depth = depth.saturating_sub(1),
                        b',' if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                at = k + 1;
            }
            self.enums.push(def);
        }
    }

    /// Collects `Enum::Variant` path references with arm context.
    fn scan_variant_refs(&mut self, lexed: &LexedFile) {
        let masked = &lexed.masked;
        let bytes = masked.as_bytes();
        let mut from = 0;
        while let Some(pos) = masked[from..].find("::") {
            let at = from + pos;
            from = at + 2;
            let left = ident_ending_at(bytes, at);
            let (right_at, right) = ident_starting_at(bytes, at + 2);
            if right_at != at + 2 || left.is_empty() || right.is_empty() {
                continue;
            }
            let type_like = |t: &[u8]| t[0].is_ascii_uppercase();
            if !type_like(left) || !type_like(right) {
                continue;
            }
            let left_start = at - left.len();
            self.variant_refs.push(VariantRef {
                enum_name: String::from_utf8_lossy(left).into_owned(),
                variant: String::from_utf8_lossy(right).into_owned(),
                offset: left_start,
                is_test: self.is_test_at(lexed, left_start),
                context: classify_ref(bytes, left_start, right_at + right.len()),
            });
        }
    }

    /// Collects `expr as <integer>` cast sites.
    fn scan_casts(&mut self, lexed: &LexedFile) {
        let masked = &lexed.masked;
        let bytes = masked.as_bytes();
        for at in find_idents(masked, "as") {
            let (_, target) = ident_starting_at(bytes, at + 2);
            let target = String::from_utf8_lossy(target).into_owned();
            let Some(bits) = int_type_bits(&target) else {
                continue;
            };
            let source_end = prev_token_end(bytes, at);
            let source_token =
                String::from_utf8_lossy(ident_ending_at(bytes, source_end)).into_owned();
            let line_start = masked[..at].rfind('\n').map_or(0, |p| p + 1);
            let line_end = masked[at..].find('\n').map_or(masked.len(), |p| at + p);
            let line_text = &masked[line_start..line_end];
            self.casts.push(CastSite {
                target,
                target_bits: bits,
                source_token,
                offset: at,
                is_test: self.is_test_at(lexed, at),
                line_has_checked: line_text.contains("try_from") || line_text.contains("try_into"),
            });
        }
    }

    /// Collects function spans, their journal touches, phase writes, and
    /// call sites.
    fn scan_fns(&mut self, lexed: &LexedFile) {
        let masked = &lexed.masked;
        let bytes = masked.as_bytes();
        for kw in find_idents(masked, "fn") {
            let (name_at, name) = ident_starting_at(bytes, kw + 2);
            if name.is_empty() {
                continue;
            }
            // Body: the first `{` before any `;` (bodyless trait methods
            // end in `;`).
            let mut k = name_at + name.len();
            while k < bytes.len() && bytes[k] != b'{' && bytes[k] != b';' {
                k += 1;
            }
            let body = if k < bytes.len() && bytes[k] == b'{' {
                Some((k + 1, match_brace(bytes, k)))
            } else {
                None
            };
            let mut facts = FnFacts {
                name: String::from_utf8_lossy(name).into_owned(),
                offset: name_at,
                body,
                journal_touches: Vec::new(),
                phase_writes: Vec::new(),
                calls: Vec::new(),
            };
            if let Some((s, e)) = body {
                let body_text = &masked[s..e.min(masked.len())];
                for off in find_idents(body_text, "journal") {
                    facts.journal_touches.push(s + off);
                }
                for off in find_idents(body_text, "phase") {
                    let abs = s + off;
                    if abs == 0 || bytes[abs - 1] != b'.' {
                        continue;
                    }
                    let rest = masked[abs + "phase".len()..].trim_start();
                    if rest.starts_with('=') && !rest.starts_with("==") && !rest.starts_with("=>") {
                        facts.phase_writes.push(abs);
                    }
                }
                // `ident(` call sites (methods and free functions alike).
                let body_bytes = body_text.as_bytes();
                let mut at = 0;
                while at < body_bytes.len() {
                    if !is_ident_byte(body_bytes[at]) {
                        at += 1;
                        continue;
                    }
                    let start = at;
                    while at < body_bytes.len() && is_ident_byte(body_bytes[at]) {
                        at += 1;
                    }
                    if start > 0 && is_ident_byte(body_bytes[start - 1]) {
                        continue;
                    }
                    let mut k = at;
                    while k < body_bytes.len() && body_bytes[k] == b' ' {
                        k += 1;
                    }
                    if k < body_bytes.len() && body_bytes[k] == b'(' {
                        facts
                            .calls
                            .push((body_text[start..at].to_string(), s + start));
                    }
                }
            }
            self.fns.push(facts);
        }
    }

    /// The innermost function whose body contains `offset`.
    pub fn enclosing_fn(&self, offset: usize) -> Option<&FnFacts> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(s, e)| offset >= s && offset < e))
            .min_by_key(|f| f.body.map_or(usize::MAX, |(s, e)| e - s))
    }

    /// Looks up functions by name (several `impl` blocks may reuse one).
    pub fn fns_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a FnFacts> + 'a {
        self.fns.iter().filter(move |f| f.name == name)
    }
}

/// The byte offset just past the last non-space byte before `at`,
/// skipping spaces and newlines.
fn prev_token_end(bytes: &[u8], at: usize) -> usize {
    let mut end = at;
    while end > 0 && (bytes[end - 1] == b' ' || bytes[end - 1] == b'\n' || bytes[end - 1] == b'\r')
    {
        end -= 1;
    }
    end
}

/// The offset of the matching `}` for the `{` at `open` (or EOF).
fn match_brace(bytes: &[u8], open: usize) -> usize {
    let mut depth = 1usize;
    let mut k = open + 1;
    while k < bytes.len() && depth > 0 {
        match bytes[k] {
            b'{' => depth += 1,
            b'}' => depth -= 1,
            _ => {}
        }
        k += 1;
    }
    k.saturating_sub(1)
}

/// Classifies a reference spanning `[start, end)` as a match arm
/// (followed by `=>`, possibly across a fields group), an arm result
/// (preceded by `=>`), or a plain mention.
fn classify_ref(bytes: &[u8], start: usize, end: usize) -> RefContext {
    // Preceded by `=>`? (`… => TAG_X` / `… => Enum::V`)
    let before = prev_token_end(bytes, start);
    if before >= 2 && &bytes[before - 2..before] == b"=>" {
        return RefContext::Produced;
    }
    // Followed by `=>`, optionally across one `{…}`/`(…)` fields group
    // (`Enum::V { .. } => …` and `Enum::V(x) => …` are still patterns).
    let mut k = end;
    while k < bytes.len() && (bytes[k] == b' ' || bytes[k] == b'\n' || bytes[k] == b'\r') {
        k += 1;
    }
    if k < bytes.len() && (bytes[k] == b'{' || bytes[k] == b'(') {
        let close = match bytes[k] {
            b'{' => match_brace(bytes, k),
            _ => match_paren(bytes, k),
        };
        k = close + 1;
        while k < bytes.len() && (bytes[k] == b' ' || bytes[k] == b'\n' || bytes[k] == b'\r') {
            k += 1;
        }
    }
    if k + 1 < bytes.len() && bytes[k] == b'=' && bytes[k + 1] == b'>' {
        return RefContext::MatchArm;
    }
    // A `Pat | Pat =>` alternation leg also counts as a match position.
    if k < bytes.len() && bytes[k] == b'|' && bytes.get(k + 1) != Some(&b'|') {
        return RefContext::MatchArm;
    }
    RefContext::Other
}

/// The offset of the matching `)` for the `(` at `open` (or EOF).
fn match_paren(bytes: &[u8], open: usize) -> usize {
    let mut depth = 1usize;
    let mut k = open + 1;
    while k < bytes.len() && depth > 0 {
        match bytes[k] {
            b'(' => depth += 1,
            b')' => depth -= 1,
            _ => {}
        }
        k += 1;
    }
    k.saturating_sub(1)
}

/// Parses the `u8` initializer after a `const TAG_X` name: expects
/// `: u8 = <literal>;` and reads hex (`0x..`) or decimal literals.
fn parse_tag_value(masked: &str, after_name: usize) -> Option<u8> {
    let rest = masked[after_name..].trim_start();
    let rest = rest.strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix("u8")?.trim_start();
    let rest = rest.strip_prefix('=')?.trim_start();
    let end = rest.find([';', '\n']).unwrap_or_else(|| rest.len().min(32));
    let literal = rest[..end].trim().replace('_', "");
    if let Some(hex) = literal
        .strip_prefix("0x")
        .or_else(|| literal.strip_prefix("0X"))
    {
        u8::from_str_radix(hex, 16).ok()
    } else {
        literal.parse::<u8>().ok()
    }
}

/// Bit width of an integer type token; `None` for anything else.
/// `usize`/`isize` are treated as 64-bit (the narrowest target we build
/// for), so casts *to* them never count as narrowing.
fn int_type_bits(tok: &str) -> Option<u32> {
    match tok {
        "u8" | "i8" => Some(8),
        "u16" | "i16" => Some(16),
        "u32" | "i32" => Some(32),
        "u64" | "i64" => Some(64),
        "u128" | "i128" => Some(128),
        "usize" | "isize" => Some(64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileFacts {
        let lexed = LexedFile::lex(src);
        FileFacts::extract("crates/fei-proto/src/frames.rs", "fei-proto", false, &lexed)
    }

    #[test]
    fn tag_consts_and_refs_classified() {
        let src = "pub const TAG_A: u8 = 0x10;\n\
                   pub const TAG_B: u8 = 17;\n\
                   fn tag(&self) -> u8 { match self { Frame::A { .. } => TAG_A, Frame::B(_) => TAG_B } }\n\
                   fn decode(t: u8) { match t { TAG_A => {} TAG_B => {} _ => {} } }\n";
        let f = facts(src);
        assert_eq!(f.tag_consts.len(), 2);
        assert_eq!(f.tag_consts[0].value, Some(0x10));
        assert_eq!(f.tag_consts[1].value, Some(17));
        let produced: Vec<_> = f
            .tag_refs
            .iter()
            .filter(|r| r.context == RefContext::Produced)
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(produced, vec!["TAG_A", "TAG_B"]);
        let arms: Vec<_> = f
            .tag_refs
            .iter()
            .filter(|r| r.context == RefContext::MatchArm)
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(arms, vec!["TAG_A", "TAG_B"]);
    }

    #[test]
    fn enum_defs_parse_variants_with_fields_and_discriminants() {
        let src = "pub enum Use {\n    Useful,\n    Wasted = 3,\n    Mixed { a: u8, b: u8 },\n    Wrapped(Vec<u8>),\n}\n";
        let f = facts(src);
        assert_eq!(f.enums.len(), 1);
        let names: Vec<_> = f.enums[0]
            .variants
            .iter()
            .map(|v| v.name.as_str())
            .collect();
        assert_eq!(names, vec!["Useful", "Wasted", "Mixed", "Wrapped"]);
    }

    #[test]
    fn variant_refs_distinguish_arms_from_constructions() {
        let src = "fn f(u: Use) -> u32 {\n\
                   match u { Use::Useful => 1, Use::Mixed { .. } => 2, _ => 0 }\n\
                   }\n\
                   fn g() -> Use { Use::Wasted }\n";
        let f = facts(src);
        let arm = |v: &str| {
            f.variant_refs
                .iter()
                .any(|r| r.variant == v && r.context == RefContext::MatchArm)
        };
        assert!(arm("Useful"));
        assert!(arm("Mixed"));
        let built: Vec<_> = f
            .variant_refs
            .iter()
            .filter(|r| r.context == RefContext::Other)
            .map(|r| r.variant.as_str())
            .collect();
        assert_eq!(built, vec!["Wasted"]);
    }

    #[test]
    fn casts_record_width_and_source() {
        let src = "fn f(n: usize, b: u8) -> u32 {\n\
                   let x = n as u32;\n\
                   let y = b as u64;\n\
                   let z = n as f64;\n\
                   x + y as u32\n}\n";
        let f = facts(src);
        let targets: Vec<_> = f.casts.iter().map(|c| c.target.as_str()).collect();
        assert_eq!(targets, vec!["u32", "u64", "u32"]);
        assert_eq!(f.casts[0].source_token, "n");
        assert_eq!(f.casts[0].target_bits, 32);
    }

    #[test]
    fn fns_record_journal_touches_phase_writes_and_calls() {
        let src = "impl C {\n\
                   fn persist(&mut self) { self.journal.append(&r); }\n\
                   fn advance(&mut self) {\n        self.persist();\n        self.phase = Phase::Next;\n    }\n\
                   }\n";
        let f = facts(src);
        let persist = f.fns_named("persist").next().expect("persist parsed");
        assert_eq!(persist.journal_touches.len(), 1);
        let advance = f.fns_named("advance").next().expect("advance parsed");
        assert_eq!(advance.phase_writes.len(), 1);
        assert!(advance.calls.iter().any(|(n, _)| n == "persist"));
        let inner = f.enclosing_fn(advance.phase_writes[0]).expect("enclosed");
        assert_eq!(inner.name, "advance");
    }

    #[test]
    fn test_tree_files_mark_every_fact_as_test() {
        let lexed = LexedFile::lex("pub const TAG_T: u8 = 0x30;\nfn f() { let _ = TAG_T; }\n");
        let f = FileFacts::extract("tests/recovery.rs", "ee-fei", true, &lexed);
        assert!(f.tag_consts[0].is_test);
        assert!(f.tag_refs.iter().all(|r| r.is_test));
    }
}
