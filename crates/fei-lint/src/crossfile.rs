//! Pass 2 of the two-pass engine: rules over the workspace model.
//!
//! Per-file rules ([`crate::rules`]) see one file's tokens; the rules here
//! see the whole [`WorkspaceModel`] and catch drift *between* files — the
//! failure modes that matter most once the wire schema and the energy
//! ledger are consumed from several crates:
//!
//! * **wire-schema** — every `TAG_*` value unique across the wire crates,
//!   every tag produced by an encode arm and matched by a decode arm, and
//!   every tag named in at least one test;
//! * **enum-billing** — every variant of a billed enum (`EnergyUse`,
//!   `AbortReason`) constructed outside its defining file and surfaced in
//!   a match arm somewhere (stats/report paths are matches);
//! * **truncating-cast** — no bare `as` casts to ≤32-bit integers inside
//!   codec/wire/frames/journal files of the wire crates;
//! * **journal-discipline** (v2) — coordinator `.phase =` transitions must
//!   be preceded, in the same function or via a helper called earlier in
//!   it, by a round-journal append (write-ahead logging).
//!
//! Findings anchor at one definite site (the tag/variant declaration, the
//! cast, the phase write), so `// fei-lint: allow(rule, reason = "…")` on
//! that site suppresses exactly that finding and nothing else.

use std::collections::BTreeMap;

use crate::config::LintConfig;
use crate::lexer::LexedFile;
use crate::model::{FileFacts, RefContext, WorkspaceModel};
use crate::report::Violation;
use crate::rules::RuleId;

/// Runs every enabled cross-file rule over the model.
pub fn check(
    config: &LintConfig,
    model: &WorkspaceModel,
    lexed: &BTreeMap<String, LexedFile>,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if config.rules.contains(&RuleId::WireSchema) {
        wire_schema(config, model, lexed, &mut out);
    }
    if config.rules.contains(&RuleId::EnumBilling) {
        enum_billing(config, model, lexed, &mut out);
    }
    if config.rules.contains(&RuleId::TruncatingCast) {
        truncating_cast(config, model, lexed, &mut out);
    }
    if config.rules.contains(&RuleId::JournalDiscipline) {
        journal_discipline(model, lexed, &mut out);
    }
    out
}

/// Emits a cross-file violation anchored at `offset` in `path`, honouring
/// test regions and allow directives at the anchor exactly like the
/// per-file rules do.
fn emit_at(
    rule: RuleId,
    path: &str,
    offset: usize,
    message: String,
    lexed: &BTreeMap<String, LexedFile>,
    out: &mut Vec<Violation>,
) {
    let Some(file) = lexed.get(path) else {
        return;
    };
    if file.is_test(offset) {
        return;
    }
    let line = file.line_of(offset);
    if file.allowed_rules_at(line).contains(&rule.name()) {
        return;
    }
    out.push(Violation {
        rule: rule.name().to_string(),
        path: path.to_string(),
        line,
        col: file.col_of(offset),
        message,
        snippet: file.raw_line(line).trim().to_string(),
    });
}

fn is_wire_crate(config: &LintConfig, crate_name: &str) -> bool {
    config.wire_crates.iter().any(|c| c == crate_name)
}

/// wire-schema: tag uniqueness and encode/decode/test reachability.
fn wire_schema(
    config: &LintConfig,
    model: &WorkspaceModel,
    lexed: &BTreeMap<String, LexedFile>,
    out: &mut Vec<Violation>,
) {
    // The schema under audit: non-test TAG_* declarations in wire crates.
    let mut decls: Vec<(&FileFacts, &crate::model::TagConst)> = Vec::new();
    for f in &model.files {
        if !is_wire_crate(config, &f.crate_name) || f.in_test_tree {
            continue;
        }
        for c in &f.tag_consts {
            if !c.is_test {
                decls.push((f, c));
            }
        }
    }

    // (a) Value uniqueness across the wire crates: a collision means two
    // frame kinds decode into each other.
    let mut by_value: BTreeMap<u8, Vec<&(&FileFacts, &crate::model::TagConst)>> = BTreeMap::new();
    for d in &decls {
        if let Some(v) = d.1.value {
            by_value.entry(v).or_default().push(d);
        }
    }
    for (value, group) in &by_value {
        if group.len() < 2 {
            continue;
        }
        // The first declarant (path, offset) keeps the value; later ones
        // are the collision sites.
        let first = group
            .iter()
            .min_by_key(|(f, c)| (&f.path, c.offset))
            .expect("invariant: group has at least two entries");
        for (f, c) in group {
            if (&f.path, c.offset) == (&first.0.path, first.1.offset) {
                continue;
            }
            emit_at(
                RuleId::WireSchema,
                &f.path,
                c.offset,
                format!(
                    "wire tag value 0x{value:02x} collides with `{}` ({}): two \
                     frame kinds would decode into each other; pick an unused \
                     value from the tag table in frames.rs",
                    first.1.name, first.0.path
                ),
                lexed,
                out,
            );
        }
    }

    // (b)+(c) Reachability: every tag must be produced by an encode arm,
    // matched by a decode arm (both in production code), and named by at
    // least one test anywhere in the workspace.
    for (f, c) in &decls {
        let mut produced = false;
        let mut matched = false;
        let mut tested = false;
        for other in &model.files {
            for r in &other.tag_refs {
                if r.name != c.name {
                    continue;
                }
                if r.is_test {
                    tested = true;
                    continue;
                }
                match r.context {
                    RefContext::Produced => produced = true,
                    RefContext::MatchArm => matched = true,
                    RefContext::Other => {}
                }
            }
        }
        let mut missing = Vec::new();
        if !produced {
            missing.push("an encode arm (`… => TAG`)");
        }
        if !matched {
            missing.push("a decode arm (`TAG => …`)");
        }
        if !tested {
            missing.push("a test that names it");
        }
        if missing.is_empty() {
            continue;
        }
        emit_at(
            RuleId::WireSchema,
            &f.path,
            c.offset,
            format!(
                "wire tag `{}` is not reachable from {}: a tag that only one \
                 side of the wire knows about is silent schema drift",
                c.name,
                missing.join(" and ")
            ),
            lexed,
            out,
        );
    }
}

/// enum-billing: every variant of a billed enum is constructed outside
/// its defining file and surfaced in a match arm.
fn enum_billing(
    config: &LintConfig,
    model: &WorkspaceModel,
    lexed: &BTreeMap<String, LexedFile>,
    out: &mut Vec<Violation>,
) {
    for def_file in &model.files {
        if def_file.in_test_tree {
            continue;
        }
        for def in &def_file.enums {
            if def.is_test || !config.billed_enums.iter().any(|e| e == &def.name) {
                continue;
            }
            for variant in &def.variants {
                let mut constructed_elsewhere = false;
                let mut surfaced = false;
                for other in &model.files {
                    for r in &other.variant_refs {
                        if r.enum_name != def.name || r.variant != variant.name || r.is_test {
                            continue;
                        }
                        match r.context {
                            RefContext::MatchArm => surfaced = true,
                            _ if other.path != def_file.path => constructed_elsewhere = true,
                            _ => {}
                        }
                    }
                }
                let mut missing = Vec::new();
                if !constructed_elsewhere {
                    missing.push("constructed outside its defining file");
                }
                if !surfaced {
                    missing.push("surfaced in a match arm (stats/report path)");
                }
                if missing.is_empty() {
                    continue;
                }
                emit_at(
                    RuleId::EnumBilling,
                    &def_file.path,
                    variant.offset,
                    format!(
                        "billed variant `{}::{}` is never {}: a bucket nothing \
                         bills into (or nothing reports) is dead accounting — \
                         wire it up or remove it",
                        def.name,
                        variant.name,
                        missing.join(" or ")
                    ),
                    lexed,
                    out,
                );
            }
        }
    }
}

/// truncating-cast: no bare `as` narrowing inside codec/journal paths.
fn truncating_cast(
    config: &LintConfig,
    model: &WorkspaceModel,
    lexed: &BTreeMap<String, LexedFile>,
    out: &mut Vec<Violation>,
) {
    for f in &model.files {
        if !is_wire_crate(config, &f.crate_name) || f.in_test_tree {
            continue;
        }
        let file_name = f.path.rsplit('/').next().unwrap_or(&f.path);
        if !config
            .cast_file_stems
            .iter()
            .any(|stem| file_name.contains(stem.as_str()))
        {
            continue;
        }
        for cast in &f.casts {
            if cast.is_test || cast.target_bits > 32 || cast.line_has_checked {
                continue;
            }
            if literal_fits(&cast.source_token, &cast.target) {
                continue;
            }
            emit_at(
                RuleId::TruncatingCast,
                &f.path,
                cast.offset,
                format!(
                    "`{} as {}` in a codec path can truncate silently: use \
                     `{}::try_from(…)` (with `expect(\"invariant: …\")` if the \
                     range is proven) or `{}::from(…)` for a widening, or \
                     justify the wrap with an allow directive",
                    if cast.source_token.is_empty() {
                        "…"
                    } else {
                        &cast.source_token
                    },
                    cast.target,
                    cast.target,
                    cast.target
                ),
                lexed,
                out,
            );
        }
    }
}

/// Whether `tok` is an integer literal that provably fits `target`.
fn literal_fits(tok: &str, target: &str) -> bool {
    let tok = tok.replace('_', "");
    let parsed = if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u128::from_str_radix(hex, 16).ok()
    } else {
        tok.parse::<u128>().ok()
    };
    let Some(v) = parsed else {
        return false;
    };
    let max: u128 = match target {
        "u8" => u8::MAX as u128,
        "i8" => i8::MAX as u128,
        "u16" => u16::MAX as u128,
        "i16" => i16::MAX as u128,
        "u32" => u32::MAX as u128,
        "i32" => i32::MAX as u128,
        _ => return false,
    };
    v <= max
}

/// journal-discipline v2: each coordinator `.phase =` write must follow a
/// journal append in the same function, directly or through a helper
/// called earlier in the function body.
fn journal_discipline(
    model: &WorkspaceModel,
    lexed: &BTreeMap<String, LexedFile>,
    out: &mut Vec<Violation>,
) {
    for f in &model.files {
        if f.crate_name != "fei-proto" || f.in_test_tree {
            continue;
        }
        let file_name = f.path.rsplit('/').next().unwrap_or(&f.path);
        if !file_name.contains("coordinator") {
            continue;
        }
        for func in &f.fns {
            for &write in &func.phase_writes {
                // Only the innermost function owns the write; outer spans
                // that merely contain a nested fn's body skip it.
                if f.enclosing_fn(write)
                    .is_some_and(|inner| inner.offset != func.offset)
                {
                    continue;
                }
                let direct = func.journal_touches.iter().any(|&t| t < write);
                let via_helper = func.calls.iter().any(|(callee, at)| {
                    *at < write && helper_touches_journal(f, callee, 3, &mut Vec::new())
                });
                if direct || via_helper {
                    continue;
                }
                emit_at(
                    RuleId::JournalDiscipline,
                    &f.path,
                    write,
                    format!(
                        "phase transition in `{}` without a prior round-journal \
                         append (directly or via a helper called earlier in the \
                         function): append the transition's JournalRecord first \
                         (write-ahead), or justify with an allow directive",
                        func.name
                    ),
                    lexed,
                    out,
                );
            }
        }
    }
}

/// Whether any same-file function named `callee` touches the journal,
/// following same-file calls up to `depth` levels (cycle-guarded).
fn helper_touches_journal<'a>(
    f: &'a FileFacts,
    callee: &'a str,
    depth: usize,
    visiting: &mut Vec<&'a str>,
) -> bool {
    if visiting.contains(&callee) {
        return false;
    }
    visiting.push(callee);
    let hit = f.fns_named(callee).any(|g| {
        if !g.journal_touches.is_empty() {
            return true;
        }
        depth > 0
            && g.calls
                .iter()
                .any(|(next, _)| helper_touches_journal(f, next, depth - 1, visiting))
    });
    visiting.pop();
    hit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FileFacts;
    use std::path::PathBuf;

    /// Builds a model + lexed map from (path, source) pairs.
    fn workspace(files: &[(&str, &str)]) -> (WorkspaceModel, BTreeMap<String, LexedFile>) {
        let mut model = WorkspaceModel::default();
        let mut lexed = BTreeMap::new();
        for (path, src) in files {
            let lf = LexedFile::lex(src);
            let in_test_tree = path.contains("/tests/")
                || path.starts_with("tests/")
                || path.contains("/examples/")
                || path.contains("/benches/");
            model.files.push(FileFacts::extract(
                path,
                LintConfig::crate_of(path),
                in_test_tree,
                &lf,
            ));
            lexed.insert((*path).to_string(), lf);
        }
        (model, lexed)
    }

    fn config() -> LintConfig {
        LintConfig::for_root(PathBuf::from("."))
    }

    const FRAMES_OK: &str = "pub const TAG_A: u8 = 0x10;\n\
         pub const TAG_B: u8 = 0x11;\n\
         fn tag(k: u32) -> u8 { match k { 0 => TAG_A, _ => TAG_B } }\n\
         fn decode(t: u8) -> u32 { match t { TAG_A => 0, TAG_B => 1, _ => 2 } }\n";
    const FRAMES_TESTS: &str = "fn t() { let _ = (TAG_A, TAG_B); }\n";

    #[test]
    fn wire_schema_clean_when_tags_unique_and_reachable() {
        let (model, lexed) = workspace(&[
            ("crates/fei-proto/src/frames.rs", FRAMES_OK),
            ("crates/fei-proto/tests/wire.rs", FRAMES_TESTS),
        ]);
        let out = check(&config(), &model, &lexed);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn wire_schema_flags_value_collision_across_crates() {
        let (model, lexed) = workspace(&[
            ("crates/fei-proto/src/frames.rs", FRAMES_OK),
            (
                "crates/fei-net/src/codec.rs",
                "pub const TAG_C: u8 = 0x10;\n\
                 fn tag() -> u8 { match 0 { _ => TAG_C } }\n\
                 fn dec(t: u8) { match t { TAG_C => {} _ => {} } }\n",
            ),
            ("crates/fei-proto/tests/wire.rs", FRAMES_TESTS),
            (
                "crates/fei-net/tests/codec.rs",
                "fn t() { let _ = TAG_C; }\n",
            ),
        ]);
        let out = check(&config(), &model, &lexed);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].path, "crates/fei-proto/src/frames.rs");
        assert!(out[0].message.contains("collides with `TAG_C`"), "{out:?}");
    }

    #[test]
    fn wire_schema_flags_missing_decode_arm_and_missing_test() {
        let (model, lexed) = workspace(&[(
            "crates/fei-proto/src/frames.rs",
            "pub const TAG_A: u8 = 0x10;\n\
             fn tag() -> u8 { match 0 { _ => TAG_A } }\n",
        )]);
        let out = check(&config(), &model, &lexed);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("a decode arm"), "{out:?}");
        assert!(out[0].message.contains("a test"), "{out:?}");
    }

    #[test]
    fn wire_schema_ignores_tags_outside_wire_crates() {
        let (model, lexed) = workspace(&[(
            "crates/fei-sim/src/events.rs",
            "pub const TAG_EVT: u8 = 0x99;\n",
        )]);
        assert!(check(&config(), &model, &lexed).is_empty());
    }

    const LEDGER: &str = "pub enum EnergyUse { Useful, Wasted }\n\
         impl L { fn charge(&mut self, u: EnergyUse) { match u { EnergyUse::Useful => {} EnergyUse::Wasted => {} } } }\n";

    #[test]
    fn enum_billing_clean_when_built_elsewhere_and_matched() {
        let (model, lexed) = workspace(&[
            ("crates/fei-core/src/ledger.rs", LEDGER),
            (
                "crates/fei-fl/src/engine.rs",
                "fn bill() { charge(EnergyUse::Useful); charge(EnergyUse::Wasted); }\n",
            ),
        ]);
        let out = check(&config(), &model, &lexed);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn enum_billing_flags_variant_never_constructed_outside() {
        let (model, lexed) = workspace(&[
            ("crates/fei-core/src/ledger.rs", LEDGER),
            (
                "crates/fei-fl/src/engine.rs",
                "fn bill() { charge(EnergyUse::Useful); }\n",
            ),
        ]);
        let out = check(&config(), &model, &lexed);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("EnergyUse::Wasted"), "{out:?}");
        assert!(out[0].message.contains("constructed outside"), "{out:?}");
    }

    #[test]
    fn enum_billing_test_only_construction_does_not_count() {
        let (model, lexed) = workspace(&[
            ("crates/fei-core/src/ledger.rs", LEDGER),
            (
                "crates/fei-fl/src/engine.rs",
                "fn bill() { charge(EnergyUse::Useful); }\n\
                 #[cfg(test)]\nmod tests {\n    fn t() { charge(EnergyUse::Wasted); }\n}\n",
            ),
        ]);
        let out = check(&config(), &model, &lexed);
        assert_eq!(
            out.len(),
            1,
            "test-gated construction must not satisfy billing: {out:?}"
        );
    }

    #[test]
    fn truncating_cast_scopes_to_codec_files_and_respects_checked_lines() {
        let (model, lexed) = workspace(&[
            (
                "crates/fei-net/src/codec.rs",
                "fn f(n: usize) -> u32 {\n\
                 let a = n as u32;\n\
                 let b = u32::try_from(n).expect(\"invariant: framed\") + (n as u32);\n\
                 let c = n as u64;\n\
                 a + b + c as u32\n}\n",
            ),
            (
                "crates/fei-net/src/planner.rs",
                "fn g(n: usize) -> u8 { n as u8 }\n",
            ),
        ]);
        let out = check(&config(), &model, &lexed);
        // Flagged: `n as u32` (line 2) and `c as u32` (line 5). The cast on
        // the try_from line is a documented rewrap; `as u64` never narrows
        // on our targets; planner.rs is out of scope.
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|v| v.rule == "truncating-cast"));
        assert!(out.iter().all(|v| v.path.ends_with("codec.rs")));
    }

    #[test]
    fn truncating_cast_allows_fitting_literals_and_allow_directives() {
        let (model, lexed) = workspace(&[(
            "crates/fei-proto/src/journal.rs",
            "fn f(q: f64) -> u8 {\n\
             let a = 255 as u8;\n\
             // fei-lint: allow(truncating-cast, reason = \"clamped to 0..=255 above\")\n\
             let b = q as u8;\n\
             let c = 300 as u8;\n\
             a + b + c\n}\n",
        )]);
        let out = check(&config(), &model, &lexed);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].snippet.contains("300"), "{out:?}");
    }

    #[test]
    fn journal_v2_accepts_append_via_helper_called_earlier() {
        let (model, lexed) = workspace(&[(
            "crates/fei-proto/src/coordinator.rs",
            "impl C {\n\
             fn persist(&mut self) { self.journal.append(&r); }\n\
             fn ok(&mut self) {\n        self.persist();\n        self.phase = Phase::Next;\n    }\n\
             fn bad(&mut self) {\n        self.phase = Phase::Idle;\n        self.persist();\n    }\n\
             }\n",
        )]);
        let out = check(&config(), &model, &lexed);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`bad`"), "{out:?}");
    }

    #[test]
    fn journal_v2_follows_helpers_transitively_but_not_cycles() {
        let (model, lexed) = workspace(&[(
            "crates/fei-proto/src/coordinator.rs",
            "impl C {\n\
             fn l2(&mut self) { self.journal.append(&r); }\n\
             fn l1(&mut self) { self.l2(); }\n\
             fn ok(&mut self) {\n        self.l1();\n        self.phase = Phase::Next;\n    }\n\
             fn spin_a(&mut self) { self.spin_b(); }\n\
             fn spin_b(&mut self) { self.spin_a(); }\n\
             fn bad(&mut self) {\n        self.spin_a();\n        self.phase = Phase::Idle;\n    }\n\
             }\n",
        )]);
        let out = check(&config(), &model, &lexed);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("`bad`"), "{out:?}");
    }
}
