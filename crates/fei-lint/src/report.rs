//! Violation collection and rendering (human-readable and JSON).
//!
//! JSON emission is hand-rolled: the linter is deliberately
//! dependency-free so it can gate every other crate without being able to
//! break their builds.

use std::fmt::Write as _;

use crate::rules::RuleId;

/// One rule violation at one source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Kebab-case rule name.
    pub rule: String,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub col: usize,
    /// What is wrong and what the sanctioned alternative is.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// The outcome of one lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// All violations, ordered by (path, line, col, rule). When a
    /// baseline was applied, only the *new* (unpinned) findings remain
    /// here — these are what fail the run.
    pub violations: Vec<Violation>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Findings suppressed by the baseline (`--baseline`).
    pub baselined: usize,
    /// Baseline entries that no longer match any finding: the debt
    /// shrank; rewrite the baseline to lock it in.
    pub stale_baseline: usize,
}

impl Report {
    /// Whether the run is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation count for one rule.
    pub fn count_for(&self, rule: RuleId) -> usize {
        self.violations
            .iter()
            .filter(|v| v.rule == rule.name())
            .count()
    }

    /// Sorts violations into the canonical deterministic order.
    pub fn finish(&mut self) {
        self.violations.sort_by(|a, b| {
            (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule))
        });
    }

    /// Human-readable report.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(
                out,
                "{}:{}:{}: [{}] {}\n    {}",
                v.path, v.line, v.col, v.rule, v.message, v.snippet
            );
        }
        let _ = writeln!(
            out,
            "fei-lint: {} file(s) scanned, {} violation(s)",
            self.files_scanned,
            self.violations.len()
        );
        if self.baselined > 0 {
            let _ = writeln!(
                out,
                "  {} pinned finding(s) suppressed by the baseline",
                self.baselined
            );
        }
        if self.stale_baseline > 0 {
            let _ = writeln!(
                out,
                "  {} stale baseline entr(y/ies): debt shrank — rewrite with --write-baseline",
                self.stale_baseline
            );
        }
        for rule in RuleId::ALL {
            let n = self.count_for(rule);
            if n > 0 {
                let _ = writeln!(out, "  {:>4}  {}", n, rule.name());
            }
        }
        out
    }

    /// Machine-readable report with per-rule counts.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(out, "  \"violations_total\": {},", self.violations.len());
        let _ = writeln!(out, "  \"baselined\": {},", self.baselined);
        let _ = writeln!(out, "  \"stale_baseline\": {},", self.stale_baseline);
        out.push_str("  \"rules\": {\n");
        for (i, rule) in RuleId::ALL.into_iter().enumerate() {
            let comma = if i + 1 < RuleId::ALL.len() { "," } else { "" };
            let _ = writeln!(
                out,
                "    {}: {{\"violations\": {}}}{comma}",
                json_string(rule.name()),
                self.count_for(rule)
            );
        }
        out.push_str("  },\n");
        out.push_str("  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let comma = if i + 1 < self.violations.len() {
                ","
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \
                 \"message\": {}, \"snippet\": {}}}{comma}",
                json_string(&v.rule),
                json_string(&v.path),
                v.line,
                v.col,
                json_string(&v.message),
                json_string(&v.snippet)
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes `s` as a JSON string literal, quotes included.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn report_orders_and_counts() {
        let mut r = Report::default();
        r.violations.push(Violation {
            rule: "no-panic".into(),
            path: "b.rs".into(),
            line: 2,
            col: 1,
            message: "m".into(),
            snippet: "s".into(),
        });
        r.violations.push(Violation {
            rule: "float-eq".into(),
            path: "a.rs".into(),
            line: 9,
            col: 4,
            message: "m".into(),
            snippet: "s".into(),
        });
        r.finish();
        assert_eq!(r.violations[0].path, "a.rs");
        assert_eq!(r.count_for(RuleId::NoPanic), 1);
        assert_eq!(r.count_for(RuleId::FloatEq), 1);
        assert_eq!(r.count_for(RuleId::DetMapIter), 0);
        let json = r.render_json();
        assert!(json.contains("\"violations_total\": 2"));
        assert!(json.contains("\"no-panic\": {\"violations\": 1}"));
    }
}
