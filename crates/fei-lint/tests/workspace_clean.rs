//! The linter's own gate on this repository: the whole workspace must lint
//! clean with the default configuration, modulo the committed baseline.
//! This is the test-suite twin of the CI `lint` job — it keeps
//! `cargo test --workspace` and the blocking CI lane enforcing the same
//! contract: no NEW findings, and no stale debt left pinned.

use std::fs;
use std::path::Path;

use fei_lint::{find_workspace_root, run, Baseline, LintConfig};

#[test]
fn the_workspace_lints_clean_modulo_the_baseline() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    let mut report = run(&LintConfig::for_root(root.clone()))
        .expect("invariant: the workspace that built this test is readable");
    assert!(
        report.files_scanned >= 95,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );

    let baseline_path = root.join("lint-baseline.json");
    if let Ok(text) = fs::read_to_string(&baseline_path) {
        let baseline = Baseline::parse(&text)
            .expect("invariant: the committed lint-baseline.json is well-formed");
        let outcome = baseline.filter(&report);
        assert!(
            outcome.stale.is_empty(),
            "baseline pins findings that no longer occur — shrink it with \
             `cargo run -p fei-lint -- --write-baseline lint-baseline.json`:\n{:?}",
            outcome.stale
        );
        report.violations = outcome.new;
        report.finish();
    }
    assert!(
        report.is_clean(),
        "NEW workspace invariant violations (not in lint-baseline.json):\n{}",
        report.render_human()
    );
}
