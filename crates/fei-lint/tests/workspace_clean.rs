//! The linter's own gate on this repository: the whole workspace must lint
//! clean with the default configuration. This is the test-suite twin of the
//! CI `lint` job — it keeps `cargo test --workspace` and the blocking CI
//! lane enforcing the same contract.

use std::path::Path;

use fei_lint::{find_workspace_root, run, LintConfig};

#[test]
fn the_workspace_lints_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    let report = run(&LintConfig::for_root(root))
        .expect("invariant: the workspace that built this test is readable");
    assert!(
        report.files_scanned >= 95,
        "suspiciously few files scanned ({}) — walker broke?",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace invariant violations:\n{}",
        report.render_human()
    );
}
