//! End-to-end proof that the baseline is a one-way ratchet. Against a
//! scratch tree: pin today's findings, pass with the baseline, fail when
//! a NEW violation appears, refuse to `--write-baseline` over it, and
//! shrink cleanly once the findings are fixed.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BAD_CODEC: &str = "\
pub fn frame_len(payload: &[u8]) -> u32 {
    payload.len() as u32
}
";

const WORSE_CODEC: &str = "\
pub fn frame_len(payload: &[u8]) -> u32 {
    payload.len() as u32
}

pub fn client_count(clients: usize) -> u8 {
    clients as u8
}
";

const FIXED_CODEC: &str = "\
pub fn frame_len(payload: &[u8]) -> u32 {
    u32::try_from(payload.len()).expect(\"invariant: frames are capped below u32::MAX\")
}
";

/// Builds a fresh scratch workspace holding one codec file.
fn scratch_tree(name: &str, codec_source: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("invariant: scratch tree is removable");
    }
    let src = root.join("crates/fei-net/src");
    fs::create_dir_all(&src).expect("invariant: scratch tree is creatable");
    fs::write(src.join("codec.rs"), codec_source).expect("invariant: scratch tree is writable");
    root
}

fn fei_lint(root: &Path, extra: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_fei-lint"));
    cmd.arg("--root").arg(root).args(extra);
    cmd.output()
        .expect("invariant: the fei-lint binary was built alongside this test")
}

#[test]
fn the_baseline_ratchet_fails_new_findings_and_only_shrinks() {
    let root = scratch_tree("ratchet", BAD_CODEC);
    let baseline = root.join("lint-baseline.json");
    let baseline_str = baseline.to_str().expect("invariant: tmpdir path is UTF-8");

    // Without a baseline the tree fails: one truncating cast.
    let plain = fei_lint(&root, &[]);
    assert_eq!(plain.status.code(), Some(1), "{plain:?}");

    // Pin the finding; the run now passes and reports the suppression.
    let write = fei_lint(&root, &["--write-baseline", baseline_str]);
    assert_eq!(write.status.code(), Some(0), "{write:?}");
    let pinned = fei_lint(&root, &["--baseline", baseline_str]);
    assert_eq!(pinned.status.code(), Some(0), "{pinned:?}");
    let stdout = String::from_utf8_lossy(&pinned.stdout);
    assert!(stdout.contains("1 pinned finding(s)"), "{stdout}");

    // A NEW violation beyond the baseline fails the run again.
    fs::write(root.join("crates/fei-net/src/codec.rs"), WORSE_CODEC)
        .expect("invariant: scratch tree is writable");
    let regressed = fei_lint(&root, &["--baseline", baseline_str]);
    assert_eq!(
        regressed.status.code(),
        Some(1),
        "a new finding must fail even with the old one pinned: {regressed:?}"
    );
    let stdout = String::from_utf8_lossy(&regressed.stdout);
    assert!(stdout.contains("clients as u8"), "{stdout}");

    // The ratchet refuses to pave over the regression.
    let grow = fei_lint(&root, &["--write-baseline", baseline_str]);
    assert_eq!(grow.status.code(), Some(2), "{grow:?}");
    let stderr = String::from_utf8_lossy(&grow.stderr);
    assert!(stderr.contains("refusing to grow"), "{stderr}");

    // Fixing everything lets the baseline shrink to empty…
    fs::write(root.join("crates/fei-net/src/codec.rs"), FIXED_CODEC)
        .expect("invariant: scratch tree is writable");
    let shrink = fei_lint(&root, &["--write-baseline", baseline_str]);
    assert_eq!(shrink.status.code(), Some(0), "{shrink:?}");
    let text = fs::read_to_string(&baseline).expect("invariant: the baseline was just written");
    assert!(text.contains("\"total\": 0"), "{text}");

    // …and the clean tree passes against the shrunk baseline.
    let clean = fei_lint(&root, &["--baseline", baseline_str]);
    assert_eq!(clean.status.code(), Some(0), "{clean:?}");
}
