//! Fixture-driven coverage for every lint rule: each rule has a known-good
//! tree that must lint clean and a known-bad tree that must produce
//! violations of that rule and only that rule. The fixture trees mirror the
//! workspace layout (`crates/<name>/src/*.rs`) so crate-scoped rules see
//! realistic paths, and the CLI can be pointed at them with `--root`.

use std::path::PathBuf;
use std::process::Command;

use fei_lint::{run, LintConfig, Report, RuleId};

fn fixture_root(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rel)
}

fn lint_fixture(rel: &str) -> Report {
    let config = LintConfig::for_root(fixture_root(rel));
    run(&config).expect("invariant: fixture trees ship with the crate and are readable")
}

/// (fixture dir, the one rule its bad tree violates)
const CASES: [(&str, RuleId); 10] = [
    ("det_map_iter", RuleId::DetMapIter),
    ("det_wallclock", RuleId::DetWallclock),
    ("det_entropy", RuleId::DetEntropy),
    ("no_panic", RuleId::NoPanic),
    ("float_eq", RuleId::FloatEq),
    ("ledger_discipline", RuleId::LedgerDiscipline),
    ("journal_discipline", RuleId::JournalDiscipline),
    ("wire_schema", RuleId::WireSchema),
    ("enum_billing", RuleId::EnumBilling),
    ("truncating_cast", RuleId::TruncatingCast),
];

#[test]
fn every_good_fixture_is_clean() {
    for (dir, rule) in CASES {
        let report = lint_fixture(&format!("{dir}/good"));
        assert!(
            report.is_clean(),
            "good fixture for {} not clean:\n{}",
            rule.name(),
            report.render_human()
        );
        assert!(
            report.files_scanned > 0,
            "good fixture for {dir} not scanned"
        );
    }
}

#[test]
fn every_bad_fixture_fails_with_exactly_its_rule() {
    for (dir, rule) in CASES {
        let report = lint_fixture(&format!("{dir}/bad"));
        assert!(
            !report.is_clean(),
            "bad fixture for {} unexpectedly clean",
            rule.name()
        );
        assert!(
            report.count_for(rule) > 0,
            "bad fixture for {} produced no {} violations:\n{}",
            rule.name(),
            rule.name(),
            report.render_human()
        );
        for v in &report.violations {
            assert_eq!(
                v.rule,
                rule.name(),
                "bad fixture for {} tripped a different rule:\n{}",
                rule.name(),
                report.render_human()
            );
        }
    }
}

#[test]
fn allow_directive_suppresses_exactly_its_rule() {
    let report = lint_fixture("allow_scoping");
    // Both unwraps carry `allow(no-panic, ...)`; both float comparisons on
    // the covered lines must still fire, and nothing else.
    assert_eq!(
        report.count_for(RuleId::NoPanic),
        0,
        "allow(no-panic) failed to suppress:\n{}",
        report.render_human()
    );
    assert_eq!(
        report.count_for(RuleId::FloatEq),
        2,
        "allow(no-panic) must not suppress float-eq:\n{}",
        report.render_human()
    );
    assert_eq!(
        report.violations.len(),
        2,
        "unexpected extra violations:\n{}",
        report.render_human()
    );
}

#[test]
fn allow_directives_scope_cross_file_rules_to_the_site() {
    let report = lint_fixture("allow_scoping_crossfile");
    // Each file pairs an allowed site with an identical un-annotated one;
    // exactly the un-annotated site must survive for each rule.
    assert_eq!(
        report.count_for(RuleId::TruncatingCast),
        1,
        "one of two identical casts is allowed:\n{}",
        report.render_human()
    );
    assert_eq!(
        report.count_for(RuleId::WireSchema),
        1,
        "one of two untested tags is allowed:\n{}",
        report.render_human()
    );
    assert_eq!(
        report.count_for(RuleId::JournalDiscipline),
        1,
        "one of two unjournalled phase writes is allowed:\n{}",
        report.render_human()
    );
    assert_eq!(
        report.violations.len(),
        3,
        "unexpected extra violations:\n{}",
        report.render_human()
    );
    // The survivors are the sites without a directive, not the annotated
    // twins.
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "wire-schema" && v.message.contains("TAG_TRACE")),
        "wire-schema survivor should be TAG_TRACE:\n{}",
        report.render_human()
    );
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.rule == "journal-discipline" && v.message.contains("`force_open`")),
        "journal survivor should be force_open:\n{}",
        report.render_human()
    );
}

#[test]
fn cli_exits_nonzero_on_bad_fixtures_and_zero_on_good() {
    let bin = env!("CARGO_BIN_EXE_fei-lint");
    for (dir, rule) in CASES {
        let bad = Command::new(bin)
            .args(["--root"])
            .arg(fixture_root(&format!("{dir}/bad")))
            .output()
            .expect("invariant: the fei-lint binary was built alongside this test");
        assert_eq!(
            bad.status.code(),
            Some(1),
            "bad fixture for {} should exit 1",
            rule.name()
        );
        let good = Command::new(bin)
            .args(["--root"])
            .arg(fixture_root(&format!("{dir}/good")))
            .output()
            .expect("invariant: the fei-lint binary was built alongside this test");
        assert_eq!(
            good.status.code(),
            Some(0),
            "good fixture for {} should exit 0: {}",
            rule.name(),
            String::from_utf8_lossy(&good.stdout)
        );
    }
}

#[test]
fn cli_json_reports_per_rule_counts() {
    let bin = env!("CARGO_BIN_EXE_fei-lint");
    let out = Command::new(bin)
        .args(["--json", "--root"])
        .arg(fixture_root("float_eq/bad"))
        .output()
        .expect("invariant: the fei-lint binary was built alongside this test");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"violations_total\": 7"), "{json}");
    assert!(json.contains("\"float-eq\": {\"violations\": 7}"), "{json}");
    assert!(json.contains("\"no-panic\": {\"violations\": 0}"), "{json}");
    assert!(json.contains("\"rule\": \"float-eq\""), "{json}");
}

#[test]
fn only_and_skip_narrow_the_rule_set() {
    let bin = env!("CARGO_BIN_EXE_fei-lint");
    // Skipping the only violated rule turns a bad fixture clean.
    let skipped = Command::new(bin)
        .args(["--skip", "float-eq", "--root"])
        .arg(fixture_root("float_eq/bad"))
        .output()
        .expect("invariant: the fei-lint binary was built alongside this test");
    assert_eq!(skipped.status.code(), Some(0));
    // Running only an unrelated rule does the same.
    let only = Command::new(bin)
        .args(["--only", "no-panic", "--root"])
        .arg(fixture_root("float_eq/bad"))
        .output()
        .expect("invariant: the fei-lint binary was built alongside this test");
    assert_eq!(only.status.code(), Some(0));
}
