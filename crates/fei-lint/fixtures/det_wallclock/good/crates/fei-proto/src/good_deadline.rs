//! Known-good: deadlines measured on the driver's logical tick, never the
//! OS clock.
pub struct RoundDeadline {
    opened_tick: u64,
    budget_ticks: u64,
}

impl RoundDeadline {
    pub fn open(now: u64, budget_ticks: u64) -> Self {
        Self {
            opened_tick: now,
            budget_ticks,
        }
    }

    pub fn expired(&self, now: u64) -> bool {
        now.saturating_sub(self.opened_tick) >= self.budget_ticks
    }
}
