//! Known-good: a logical clock advanced by the simulation, never the OS.
pub struct LogicalClock {
    now_ms: u64,
}

impl LogicalClock {
    pub fn advance(&mut self, dt_ms: u64) {
        self.now_ms += dt_ms;
    }

    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }
}
