//! Known-bad: wall-clock round deadlines. Heartbeat expiry would depend
//! on host load instead of the simulated tick, so replays diverge.
use std::time::Instant;

pub struct RoundDeadline {
    opened: Instant,
}

impl RoundDeadline {
    pub fn open() -> Self {
        Self {
            opened: Instant::now(),
        }
    }

    pub fn expired(&self, budget_ms: u128) -> bool {
        self.opened.elapsed().as_millis() > budget_ms
    }
}
