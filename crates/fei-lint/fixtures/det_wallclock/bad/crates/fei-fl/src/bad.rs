//! Known-bad: wall-clock time in a deterministic crate. Replays diverge
//! under host load, breaking the serial/threaded bit-identity contract.
use std::time::{Instant, SystemTime};

pub fn round_started() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}
