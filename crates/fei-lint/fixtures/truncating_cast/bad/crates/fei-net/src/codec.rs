//! Known-bad: bare narrowing casts in the codec path truncate silently —
//! the length field wraps once a payload crosses 4 GiB, and the client
//! count wraps past 255.
pub fn frame_len(payload: &[u8]) -> u32 {
    payload.len() as u32
}

pub fn client_count(clients: usize) -> u8 {
    clients as u8
}
