//! Known-good: every narrowing at the wire boundary is checked, widening
//! uses `From`, and pointer-width casts (which never narrow on our
//! targets) stay out of scope.
pub fn frame_len(payload: &[u8]) -> u32 {
    u32::try_from(payload.len()).expect("invariant: frames are capped far below u32::MAX")
}

pub fn widen(byte: u8) -> u64 {
    u64::from(byte)
}

pub fn index_of(offset: u32) -> usize {
    offset as usize
}
