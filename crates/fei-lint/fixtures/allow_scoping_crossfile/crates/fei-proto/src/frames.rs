//! Two tags with encode and decode arms but no test naming either; the
//! directive must suppress only `TAG_DBG`, leaving `TAG_TRACE` flagged.
// fei-lint: allow(wire-schema, reason = "debug-only tag, deliberately untested")
pub const TAG_DBG: u8 = 0x7e;
pub const TAG_TRACE: u8 = 0x7f;

pub enum Frame {
    Dbg,
    Trace,
}

pub fn encode(frame: &Frame) -> u8 {
    match frame {
        Frame::Dbg => TAG_DBG,
        Frame::Trace => TAG_TRACE,
    }
}

pub fn decode(tag: u8) -> Option<Frame> {
    match tag {
        TAG_DBG => Some(Frame::Dbg),
        TAG_TRACE => Some(Frame::Trace),
        _ => None,
    }
}
