//! Two unjournalled phase writes; the directive must suppress only the
//! first — the second still violates write-ahead discipline.
pub struct Coordinator {
    phase: u64,
}

impl Coordinator {
    pub fn force_idle(&mut self) {
        // fei-lint: allow(journal-discipline, reason = "debug reset, never persisted")
        self.phase = 0;
    }

    pub fn force_open(&mut self) {
        self.phase = 1;
    }
}
