//! Two identical narrowing casts; the directive must suppress only the
//! annotated site, not every cast of the same shape.
pub fn checksum_lo(sum: u64) -> u8 {
    // fei-lint: allow(truncating-cast, reason = "low-byte extraction is the point here")
    sum as u8
}

pub fn checksum_hi(sum: u64) -> u8 {
    sum as u8
}
