//! Known-good companion: both ledger buckets are billed from outside the
//! defining file, so the cross-file `enum-billing` rule sees live
//! accounting (construction here, the surfacing match in fei-power).
pub fn bill_round(ledger: &mut super::Ledger, useful_j: f64, wasted_j: f64) {
    ledger.charge(EnergyUse::Useful, useful_j);
    ledger.charge(EnergyUse::Wasted, wasted_j);
}
